"""Structure-of-arrays interval arithmetic for the batched scoring path.

:mod:`repro.intervals` models one Estimated Component as an
:class:`~repro.intervals.Interval` object; pricing a candidate pool that
way allocates three dataclasses per charger before a single score is
computed.  This module is the flat mirror: a pool's worth of intervals is
two parallel ``float64`` arrays (``lo``/``hi``), and every operation is
the *same IEEE-754 double operation* numpy applies elementwise that the
scalar class applies one charger at a time — same order, same
association — so results are bitwise equal to the scalar path, not
merely close.  That equality is load-bearing (the experiment driver and
the property tests assert it) exactly like the engine's backend-equality
contract: the batched path may replace the scalar one anywhere without
changing a single ranked table.

Dataclasses (:class:`~repro.intervals.Interval`,
:class:`~repro.core.scoring.ComponentScores`) are materialised only at
the API boundary — see
:func:`~repro.core.offering.build_table_from_arrays`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .intervals import Interval
from .network.distance_engine import DISTANCE_DECIMALS

__all__ = [
    "IntervalArray",
    "ComponentArrays",
    "quantize",
]


def _as_float_array(values: Sequence[float] | np.ndarray) -> np.ndarray:
    out = np.asarray(values, dtype=np.float64)
    if out.ndim != 1:
        raise ValueError(f"interval arrays must be one-dimensional, got shape {out.shape}")
    return out


def quantize(values: Sequence[float] | np.ndarray) -> np.ndarray:
    """Elementwise engine quantisation: ``round(v, DISTANCE_DECIMALS)``.

    Deliberately *not* ``np.round``: numpy rounds by scale-rint-unscale,
    which is not bitwise-identical to Python's correctly-rounded decimal
    ``round`` on every input, and the engine's bit-comparability contract
    is exact.  The hot paths never call this — engine outputs arrive
    already quantised — so the scalar loop only runs at array-build
    boundaries.
    """
    arr = _as_float_array(values)
    return np.array([round(float(v), DISTANCE_DECIMALS) for v in arr], dtype=np.float64)


@dataclass(frozen=True, slots=True)
class IntervalArray:
    """``n`` closed intervals as parallel ``lo``/``hi`` float64 arrays.

    Mirrors :class:`~repro.intervals.Interval` semantics elementwise,
    including its validation: no NaN endpoints, ``lo <= hi`` everywhere.
    Instances are immutable (arrays are set non-writeable) so a cached
    array can be shared as freely as the frozen scalar dataclass.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = _as_float_array(self.lo)
        hi = _as_float_array(self.hi)
        if lo.shape != hi.shape:
            raise ValueError(f"lo/hi shapes differ: {lo.shape} vs {hi.shape}")
        if np.isnan(lo).any() or np.isnan(hi).any():
            raise ValueError("interval endpoints must not be NaN")
        # Same predicate as Interval.__post_init__, vectorised.  inf > inf
        # is False, so [inf, inf] is as legal here as it is there.
        if (lo > hi).any():
            bad = int(np.argmax(lo > hi))
            raise ValueError(
                f"interval lower bound {lo[bad]} exceeds upper bound {hi[bad]} "
                f"at index {bad}"
            )
        lo.flags.writeable = False
        hi.flags.writeable = False
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # -- construction -------------------------------------------------------

    @classmethod
    def _trusted(cls, lo: np.ndarray, hi: np.ndarray) -> "IntervalArray":
        """Construct without re-validation, for inputs whose invariants
        are already certified (packed from validated ``Interval``
        dataclasses).  Re-running the vectorised checks there is pure
        numpy-dispatch overhead on the per-segment hot path — ~3x the
        cost of the actual scoring arithmetic at benchmark pool sizes.
        """
        instance = object.__new__(cls)
        lo.flags.writeable = False
        hi.flags.writeable = False
        object.__setattr__(instance, "lo", lo)
        object.__setattr__(instance, "hi", hi)
        return instance

    @classmethod
    def from_intervals(cls, intervals: Iterable[Interval]) -> "IntervalArray":
        """Pack scalar intervals into one flat pair of arrays.

        Skips re-validation: every ``Interval`` already proved no-NaN and
        ``lo <= hi`` in its own ``__post_init__``.
        """
        pairs = [(interval.lo, interval.hi) for interval in intervals]
        if not pairs:
            return cls._trusted(
                np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64)
            )
        lo, hi = zip(*pairs)
        return cls._trusted(
            np.array(lo, dtype=np.float64), np.array(hi, dtype=np.float64)
        )

    @classmethod
    def exact(cls, values: Sequence[float] | np.ndarray) -> "IntervalArray":
        """Degenerate intervals ``[v, v]`` — the array form of
        :meth:`Interval.exact`."""
        arr = _as_float_array(values)
        return cls(arr.copy(), arr.copy())

    # -- shape --------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.lo.shape[0])

    def at(self, index: int) -> Interval:
        """Materialise one element as a scalar :class:`Interval` — the
        API-boundary escape hatch."""
        return Interval(float(self.lo[index]), float(self.hi[index]))

    def to_intervals(self) -> list[Interval]:
        """Materialise every element (test/debug helper, not a hot path)."""
        return [Interval(float(l), float(h)) for l, h in zip(self.lo, self.hi)]

    # -- derived quantities --------------------------------------------------

    @property
    def width(self) -> np.ndarray:
        return self.hi - self.lo

    @property
    def midpoint(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0

    @property
    def is_exact(self) -> np.ndarray:
        return self.lo == self.hi

    # -- arithmetic (elementwise, bitwise-equal to Interval ops) -------------

    def add(self, other: "IntervalArray | float") -> "IntervalArray":
        if isinstance(other, IntervalArray):
            return IntervalArray(self.lo + other.lo, self.hi + other.hi)
        return IntervalArray(self.lo + other, self.hi + other)

    def sub(self, other: "IntervalArray | float") -> "IntervalArray":
        if isinstance(other, IntervalArray):
            return IntervalArray(self.lo - other.hi, self.hi - other.lo)
        return IntervalArray(self.lo - other, self.hi - other)

    def mul_scalar(self, factor: float) -> "IntervalArray":
        """``interval * c`` for one scalar ``c`` (sign-aware, like
        :meth:`Interval.__mul__` with a float)."""
        if factor >= 0:
            return IntervalArray(self.lo * factor, self.hi * factor)
        return IntervalArray(self.hi * factor, self.lo * factor)

    def mul(self, other: "IntervalArray") -> "IntervalArray":
        """Elementwise interval product (four-products rule).

        ``np.minimum``/``np.maximum`` resolve a ``-0.0`` vs ``0.0`` tie
        by IEEE sign (minimum prefers ``-0.0``), while Python's builtin
        ``min``/``max`` keep the *first* argument — so the reduction is
        spelled as first-wins ``np.where`` selections to stay bitwise
        equal to ``min(products)``/``max(products)`` in tuple order.
        """
        ll = self.lo * other.lo
        lh = self.lo * other.hi
        hl = self.hi * other.lo
        hh = self.hi * other.hi
        lo, hi = ll, ll
        for p in (lh, hl, hh):
            lo = np.where(p < lo, p, lo)
            hi = np.where(p > hi, p, hi)
        return IntervalArray(lo, hi)

    def negate(self) -> "IntervalArray":
        return IntervalArray(-self.hi, -self.lo)

    def complement_to_one(self) -> "IntervalArray":
        """``1 - self`` — the derouting flip of Eq. 4-5."""
        return IntervalArray(1.0 - self.hi, 1.0 - self.lo)

    def clamp(self, lo: float = 0.0, hi: float = 1.0) -> "IntervalArray":
        """Clip both endpoint arrays into ``[lo, hi]``.

        Spelled as first-wins ``np.where`` selections rather than
        ``np.minimum``/``np.maximum``: the builtins' different ``-0.0``
        tie-breaking (see :meth:`mul`) would otherwise leak through
        ``min(max(x, lo), hi)``.
        """
        if lo > hi:
            raise ValueError("clamp bounds must satisfy lo <= hi")

        def clip(x: np.ndarray) -> np.ndarray:
            raised = np.where(lo > x, lo, x)  # max(x, lo), x wins ties
            return np.where(hi < raised, hi, raised)  # min(., hi), . wins ties

        return IntervalArray(clip(self.lo), clip(self.hi))

    def scaled_by_max(self, maximum: float) -> "IntervalArray":
        """Normalise by the environment maximum (zero interval when the
        maximum is non-positive, mirroring :meth:`Interval.scaled_by_max`)."""
        if maximum <= 0:
            zeros = np.zeros(len(self), dtype=np.float64)
            return IntervalArray(zeros, zeros.copy())
        return IntervalArray(self.lo / maximum, self.hi / maximum)

    def widened(self, factor: float) -> "IntervalArray":
        """Symmetric growth by ``factor`` of each width (forecast-horizon
        degradation, mirroring :meth:`Interval.widened`)."""
        if not math.isfinite(factor):
            raise ValueError("widening factor must be finite")
        if factor < 0:
            raise ValueError("factor must be non-negative")
        margin = (self.hi - self.lo) * factor / 2.0
        return IntervalArray(self.lo - margin, self.hi + margin)

    def hull(self, other: "IntervalArray") -> "IntervalArray":
        """Elementwise smallest interval containing both (first-wins ties,
        matching ``min(self.lo, other.lo)``/``max(self.hi, other.hi)``)."""
        return IntervalArray(
            np.where(other.lo < self.lo, other.lo, self.lo),
            np.where(other.hi > self.hi, other.hi, self.hi),
        )

    def intersects(self, other: "IntervalArray") -> np.ndarray:
        """Boolean mask: elementwise overlap test."""
        return (self.lo <= other.hi) & (other.lo <= self.hi)

    def within_bounds(self, lo: float, hi: float, tol: float = 0.0) -> np.ndarray:
        """Boolean mask of :meth:`Interval.within_bounds` per element."""
        if tol < 0:
            raise ValueError("tol must be non-negative")
        return (self.lo >= lo - tol) & (self.hi <= hi + tol)


@dataclass(frozen=True, slots=True)
class ComponentArrays:
    """A pool's normalised L/A/D component intervals in flat form.

    The array counterpart of ``list[ComponentScores]``: ``charger_ids[i]``
    owns row ``i`` of each component.  Produced by
    :meth:`~repro.core.environment.ChargingEnvironment.score_pool_arrays`
    and consumed by :func:`~repro.core.scoring.sc_score_batch`.
    """

    charger_ids: np.ndarray
    sustainable: IntervalArray
    availability: IntervalArray
    derouting: IntervalArray

    def __post_init__(self) -> None:
        ids = np.asarray(self.charger_ids, dtype=np.int64)
        n = int(ids.shape[0])
        for name in ("sustainable", "availability", "derouting"):
            component: IntervalArray = getattr(self, name)
            if len(component) != n:
                raise ValueError(
                    f"{name} holds {len(component)} intervals for {n} chargers"
                )
            if not component.within_bounds(0.0, 1.0, tol=1e-9).all():
                bad = int(np.argmin(component.within_bounds(0.0, 1.0, tol=1e-9)))
                raise ValueError(
                    f"{name} interval {component.at(bad)} not normalised to [0, 1]"
                )
        ids.flags.writeable = False
        object.__setattr__(self, "charger_ids", ids)

    def __len__(self) -> int:
        return int(self.charger_ids.shape[0])

    @classmethod
    def from_scores(cls, scores: Sequence["object"]) -> "ComponentArrays":
        """Pack ``ComponentScores`` dataclasses (e.g. out of the dynamic
        cache, whose durable representation stays scalar) into flat form.

        Skips the [0, 1] re-validation: every ``ComponentScores`` row
        already proved it in its own ``__post_init__``, and this runs on
        the per-segment refinement hot path.  Typed loosely to avoid a
        circular import with :mod:`repro.core.scoring`; rows must expose
        ``charger_id`` / ``sustainable`` / ``availability`` /
        ``derouting``.
        """
        ids = np.array([s.charger_id for s in scores], dtype=np.int64)
        ids.flags.writeable = False
        instance = object.__new__(cls)
        object.__setattr__(instance, "charger_ids", ids)
        object.__setattr__(
            instance,
            "sustainable",
            IntervalArray.from_intervals(s.sustainable for s in scores),
        )
        object.__setattr__(
            instance,
            "availability",
            IntervalArray.from_intervals(s.availability for s in scores),
        )
        object.__setattr__(
            instance,
            "derouting",
            IntervalArray.from_intervals(s.derouting for s in scores),
        )
        return instance
