"""Process-local metrics registry: counters, gauges, and histograms.

The substrate every tier's accounting flows into (directly via
instrumented call sites, or via the :mod:`.adapters` that mirror the
legacy ``CacheStats``/``EngineStats``/``ApiUsage``/health counters).
Design constraints, in order:

* **cheap on the hot path** — the serving stack is single-threaded per
  process, so instruments are plain attribute updates with no locking;
  a labelled child is resolved once and cached, so steady-state
  ``inc()``/``observe()`` is one dict-free method call;
* **fixed cardinality** — histograms use fixed bucket bounds declared at
  registration; label values are free-form but each family keeps its
  children in one dict, so an experiment can assert exact cardinality;
* **exact export** — snapshots are plain dicts of ints/floats, rendered
  by :mod:`.export` as Prometheus text exposition or canonical JSON with
  no rounding, so reconciliation against the legacy counters can demand
  equality, not approximation.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable, Iterable, Mapping, Sequence

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Where over-limit label values land when a family's cardinality guard
#: trips.  A reserved value (label *names* may not start with ``__``, so
#: no legitimate series can collide with it) that keeps totals exact:
#: the increment still happens, just against the shared bucket.
OVERFLOW_BUCKET = "__other__"

#: The registry-level meta-counter that counts cardinality-guard trips,
#: one per ``labels()`` resolution routed into :data:`OVERFLOW_BUCKET`.
OVERFLOW_COUNTER = "ecocharge_label_overflow_total"

#: Default latency buckets (seconds): 100 us .. 10 s, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(ValueError):
    """Bad metric name, label, bucket layout, or type collision."""


class Counter:
    """Monotonically non-decreasing value (one labelled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a gauge")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Overwrite the absolute total — reserved for mirror adapters
        that bridge a legacy counter (which owns the true count) into
        the registry."""
        if value < 0:
            raise MetricError("a mirrored counter total cannot be negative")
        self.value = value


class Gauge:
    """A value that can go up and down (one labelled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket cumulative histogram (one labelled child).

    ``bounds`` are the *upper* bounds of the finite buckets; an implicit
    ``+Inf`` bucket always exists, so ``counts`` has ``len(bounds) + 1``
    slots and the Prometheus cumulative convention is computed at export.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "exemplars")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        #: Latest exemplar (e.g. a retained trace ID) per bucket index —
        #: the link from a histogram bucket back to a trace that landed
        #: in it.  Last-writer-wins keeps this O(buckets), not O(obs).
        self.exemplars: dict[int, str] = {}

    def observe(self, value: float, exemplar: str | None = None) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                if exemplar is not None:
                    self.exemplars[i] = exemplar
                return
        self.counts[-1] += 1
        if exemplar is not None:
            self.exemplars[len(self.bounds)] = exemplar

    def cumulative(self) -> list[int]:
        """Per-bucket cumulative counts in ``le`` order (ending at +Inf)."""
        out: list[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out


_Instrument = Counter | Gauge | Histogram


class MetricFamily:
    """One named metric with a fixed label schema and typed children."""

    __slots__ = (
        "name",
        "kind",
        "help",
        "label_names",
        "_buckets",
        "_children",
        "_limits",
        "_admitted",
        "_on_overflow",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
        limits: Mapping[str, int] | None = None,
        on_overflow: Callable[[str, str], None] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self._buckets = buckets
        self._children: dict[tuple[str, ...], _Instrument] = {}
        #: Hard cardinality caps per label name (the guard of
        #: ``docs/observability.md``): the first ``limit`` distinct
        #: values seen get their own series, everything after lands in
        #: :data:`OVERFLOW_BUCKET` and counts one guard trip.
        self._limits = dict(limits) if limits else {}
        self._admitted: dict[str, set[str]] = {name: set() for name in self._limits}
        self._on_overflow = on_overflow

    def labels(self, **labels: str) -> Any:
        """The child instrument for one label-value combination.

        Children are created on first use and cached; hot call sites
        should hold the returned child rather than re-resolve labels.
        Guarded labels (see ``max_label_values`` at registration) are
        capped: over-limit values are rewritten to
        :data:`OVERFLOW_BUCKET` *before* the child lookup, so the total
        across all series — overflow included — stays exact.
        """
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise MetricError(
                f"metric '{self.name}' takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        if self._limits:
            key = tuple(
                self._guard(name, str(labels[name])) for name in self.label_names
            )
        else:
            key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def _guard(self, label: str, value: str) -> str:
        """Apply the cardinality cap for one label value."""
        limit = self._limits.get(label)
        if limit is None:
            return value
        admitted = self._admitted[label]
        if value in admitted:
            return value
        if len(admitted) < limit:
            admitted.add(value)
            return value
        if self._on_overflow is not None:
            self._on_overflow(self.name, label)
        return OVERFLOW_BUCKET

    @property
    def buckets(self) -> tuple[float, ...]:
        """Histogram bucket bounds (empty for counters/gauges)."""
        return self._buckets or ()

    def children(self) -> Iterable[tuple[tuple[str, ...], "_Instrument"]]:
        """``(label-value key, instrument)`` pairs in sorted key order —
        the stable iteration the window aggregator snapshots."""
        for key in sorted(self._children):
            yield key, self._children[key]

    def admitted_values(self, label: str) -> frozenset[str]:
        """The distinct values a guarded label has admitted so far (for
        exact-accounting assertions; raises on an unguarded label)."""
        if label not in self._admitted:
            raise MetricError(f"label '{label}' on '{self.name}' has no guard")
        return frozenset(self._admitted[label])

    def _new_child(self) -> _Instrument:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        assert self._buckets is not None
        return Histogram(self._buckets)

    # -- unlabelled conveniences (forward to the empty-label child) ---------

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def set_total(self, value: float) -> None:
        self.labels().set_total(value)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    # -- export -------------------------------------------------------------

    def samples(self) -> list[dict[str, Any]]:
        """Plain-dict samples, label-sorted, for snapshots and exporters."""
        out: list[dict[str, Any]] = []
        for key in sorted(self._children):
            child = self._children[key]
            labels = dict(zip(self.label_names, key))
            if isinstance(child, Histogram):
                buckets: dict[str, int] = {}
                for bound, cum in zip(child.bounds, child.cumulative()):
                    buckets[format_float(bound)] = cum
                buckets["+Inf"] = child.count
                sample: dict[str, Any] = {
                    "labels": labels,
                    "buckets": buckets,
                    "sum": child.sum,
                    "count": child.count,
                }
                if child.exemplars:
                    names = [format_float(b) for b in child.bounds] + ["+Inf"]
                    sample["exemplars"] = {
                        names[i]: child.exemplars[i] for i in sorted(child.exemplars)
                    }
                out.append(sample)
            else:
                out.append({"labels": labels, "value": child.value})
        return out


class MetricsRegistry:
    """All metric families of one telemetry instance."""

    __slots__ = ("_families",)

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def counter(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        max_label_values: Mapping[str, int] | None = None,
    ) -> MetricFamily:
        return self._register(name, "counter", help_text, labels, None, max_label_values)

    def gauge(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        max_label_values: Mapping[str, int] | None = None,
    ) -> MetricFamily:
        return self._register(name, "gauge", help_text, labels, None, max_label_values)

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        max_label_values: Mapping[str, int] | None = None,
    ) -> MetricFamily:
        bounds = tuple(buckets)
        if not bounds:
            raise MetricError(f"histogram '{name}' needs at least one bucket bound")
        if any(not b < c for b, c in zip(bounds, bounds[1:])) or any(
            math.isinf(b) or math.isnan(b) for b in bounds
        ):
            raise MetricError(
                f"histogram '{name}' bounds must be finite and strictly increasing"
            )
        return self._register(name, "histogram", help_text, labels, bounds, max_label_values)

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Sequence[str],
        buckets: tuple[float, ...] | None,
        max_label_values: Mapping[str, int] | None = None,
    ) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise MetricError(f"bad metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise MetricError(f"bad label name {label!r} on metric '{name}'")
        if max_label_values:
            for label, limit in max_label_values.items():
                if label not in label_names:
                    raise MetricError(
                        f"guarded label '{label}' is not in '{name}' schema {label_names}"
                    )
                if limit < 1:
                    raise MetricError(
                        f"cardinality limit for '{label}' on '{name}' must be positive"
                    )
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != label_names:
                raise MetricError(
                    f"metric '{name}' already registered as {existing.kind}"
                    f"{existing.label_names}; cannot re-register as {kind}{label_names}"
                )
            if max_label_values and dict(max_label_values) != existing._limits:
                raise MetricError(
                    f"metric '{name}' already registered with cardinality limits "
                    f"{existing._limits}; cannot re-register with {dict(max_label_values)}"
                )
            return existing
        on_overflow = self._count_overflow if max_label_values else None
        family = MetricFamily(
            name,
            kind,
            help_text,
            label_names,
            buckets,
            limits=max_label_values,
            on_overflow=on_overflow,
        )
        self._families[name] = family
        return family

    def _count_overflow(self, metric: str, label: str) -> None:
        """One cardinality-guard trip: a label value was rewritten to
        :data:`OVERFLOW_BUCKET`.  Counted in a registry-level meta-family
        so overflow is *accounted*, never silent."""
        family = self._families.get(OVERFLOW_COUNTER)
        if family is None:
            family = self._register(
                OVERFLOW_COUNTER,
                "counter",
                "Cardinality-guard trips: label values bucketed into "
                f"'{OVERFLOW_BUCKET}', by family and label.",
                ("label", "metric"),
                None,
            )
        family.labels(metric=metric, label=label).inc()

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def families(self) -> Iterable[MetricFamily]:
        for name in sorted(self._families):
            yield self._families[name]

    def snapshot(self) -> dict[str, Any]:
        """The whole registry as a plain, JSON-serialisable dict."""
        out: dict[str, Any] = {}
        for family in self.families():
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": family.samples(),
            }
        return out

    def sample_value(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> float | None:
        """One counter/gauge sample value (None when absent) — the
        reconciliation helper the adapters' exactness tests use."""
        family = self._families.get(name)
        if family is None:
            return None
        wanted = dict(labels) if labels else {}
        for sample in family.samples():
            if sample["labels"] == wanted and "value" in sample:
                return float(sample["value"])
        return None


def histogram_quantile(
    bounds: Sequence[float], cumulative: Sequence[int], q: float
) -> float:
    """Bucket-interpolated quantile over cumulative histogram counts.

    ``bounds`` are the finite upper bucket bounds and ``cumulative`` the
    ``le``-ordered cumulative counts *including* the trailing ``+Inf``
    entry (``len(bounds) + 1`` values — exactly what
    :meth:`Histogram.cumulative` plus :attr:`Histogram.count` produce).
    Deterministic by construction: the rank is the nearest-rank ceiling
    (``max(1, ceil(q * total))``), located by scanning the cumulative
    counts, then linearly interpolated inside its bucket — so when every
    observation sits exactly on a bucket bound and no bucket holds more
    than one, the result *equals* the nearest-rank percentile (the
    property test against :func:`repro.simulation.percentile`).

    The implicit lower bound of the first bucket is ``0.0`` and a rank
    that lands in the ``+Inf`` bucket returns the last finite bound —
    both Prometheus ``histogram_quantile`` conventions.
    """
    if not 0.0 <= q <= 1.0:
        raise MetricError("q must be in [0, 1]")
    if len(cumulative) != len(bounds) + 1:
        raise MetricError(
            f"cumulative needs {len(bounds) + 1} entries (got {len(cumulative)})"
        )
    if any(b > c for b, c in zip(cumulative, cumulative[1:])):
        raise MetricError("cumulative counts must be non-decreasing")
    total = cumulative[-1]
    if total <= 0:
        return 0.0
    rank = max(1, math.ceil(q * total))
    for i, cum in enumerate(cumulative):
        if cum >= rank:
            if i == len(bounds):
                return bounds[-1]
            lower = bounds[i - 1] if i > 0 else 0.0
            prev = cumulative[i - 1] if i > 0 else 0
            fraction = (rank - prev) / (cum - prev)
            return lower + fraction * (bounds[i] - lower)
    raise MetricError("unreachable: rank exceeds total")  # pragma: no cover


def format_float(value: float) -> str:
    """Canonical number rendering shared by both exporters: integers as
    integers (``3`` not ``3.0``), everything else via ``repr`` (shortest
    round-tripping form)."""
    if value == int(value) and abs(value) < 1e15 and not math.isinf(value):
        return str(int(value))
    return repr(value)
