"""Process-local metrics registry: counters, gauges, and histograms.

The substrate every tier's accounting flows into (directly via
instrumented call sites, or via the :mod:`.adapters` that mirror the
legacy ``CacheStats``/``EngineStats``/``ApiUsage``/health counters).
Design constraints, in order:

* **cheap on the hot path** — the serving stack is single-threaded per
  process, so instruments are plain attribute updates with no locking;
  a labelled child is resolved once and cached, so steady-state
  ``inc()``/``observe()`` is one dict-free method call;
* **fixed cardinality** — histograms use fixed bucket bounds declared at
  registration; label values are free-form but each family keeps its
  children in one dict, so an experiment can assert exact cardinality;
* **exact export** — snapshots are plain dicts of ints/floats, rendered
  by :mod:`.export` as Prometheus text exposition or canonical JSON with
  no rounding, so reconciliation against the legacy counters can demand
  equality, not approximation.
"""

from __future__ import annotations

import math
import re
from typing import Any, Iterable, Mapping, Sequence

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): 100 us .. 10 s, roughly log-spaced.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(ValueError):
    """Bad metric name, label, bucket layout, or type collision."""


class Counter:
    """Monotonically non-decreasing value (one labelled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a gauge")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Overwrite the absolute total — reserved for mirror adapters
        that bridge a legacy counter (which owns the true count) into
        the registry."""
        if value < 0:
            raise MetricError("a mirrored counter total cannot be negative")
        self.value = value


class Gauge:
    """A value that can go up and down (one labelled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket cumulative histogram (one labelled child).

    ``bounds`` are the *upper* bounds of the finite buckets; an implicit
    ``+Inf`` bucket always exists, so ``counts`` has ``len(bounds) + 1``
    slots and the Prometheus cumulative convention is computed at export.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[int]:
        """Per-bucket cumulative counts in ``le`` order (ending at +Inf)."""
        out: list[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out


_Instrument = Counter | Gauge | Histogram


class MetricFamily:
    """One named metric with a fixed label schema and typed children."""

    __slots__ = ("name", "kind", "help", "label_names", "_buckets", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self._buckets = buckets
        self._children: dict[tuple[str, ...], _Instrument] = {}

    def labels(self, **labels: str) -> Any:
        """The child instrument for one label-value combination.

        Children are created on first use and cached; hot call sites
        should hold the returned child rather than re-resolve labels.
        """
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise MetricError(
                f"metric '{self.name}' takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def _new_child(self) -> _Instrument:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        assert self._buckets is not None
        return Histogram(self._buckets)

    # -- unlabelled conveniences (forward to the empty-label child) ---------

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def set_total(self, value: float) -> None:
        self.labels().set_total(value)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    # -- export -------------------------------------------------------------

    def samples(self) -> list[dict[str, Any]]:
        """Plain-dict samples, label-sorted, for snapshots and exporters."""
        out: list[dict[str, Any]] = []
        for key in sorted(self._children):
            child = self._children[key]
            labels = dict(zip(self.label_names, key))
            if isinstance(child, Histogram):
                buckets: dict[str, int] = {}
                for bound, cum in zip(child.bounds, child.cumulative()):
                    buckets[format_float(bound)] = cum
                buckets["+Inf"] = child.count
                out.append(
                    {
                        "labels": labels,
                        "buckets": buckets,
                        "sum": child.sum,
                        "count": child.count,
                    }
                )
            else:
                out.append({"labels": labels, "value": child.value})
        return out


class MetricsRegistry:
    """All metric families of one telemetry instance."""

    __slots__ = ("_families",)

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def counter(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "counter", help_text, labels, None)

    def gauge(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "gauge", help_text, labels, None)

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        bounds = tuple(buckets)
        if not bounds:
            raise MetricError(f"histogram '{name}' needs at least one bucket bound")
        if any(not b < c for b, c in zip(bounds, bounds[1:])) or any(
            math.isinf(b) or math.isnan(b) for b in bounds
        ):
            raise MetricError(
                f"histogram '{name}' bounds must be finite and strictly increasing"
            )
        return self._register(name, "histogram", help_text, labels, bounds)

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Sequence[str],
        buckets: tuple[float, ...] | None,
    ) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise MetricError(f"bad metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise MetricError(f"bad label name {label!r} on metric '{name}'")
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != label_names:
                raise MetricError(
                    f"metric '{name}' already registered as {existing.kind}"
                    f"{existing.label_names}; cannot re-register as {kind}{label_names}"
                )
            return existing
        family = MetricFamily(name, kind, help_text, label_names, buckets)
        self._families[name] = family
        return family

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def families(self) -> Iterable[MetricFamily]:
        for name in sorted(self._families):
            yield self._families[name]

    def snapshot(self) -> dict[str, Any]:
        """The whole registry as a plain, JSON-serialisable dict."""
        out: dict[str, Any] = {}
        for family in self.families():
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "samples": family.samples(),
            }
        return out

    def sample_value(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> float | None:
        """One counter/gauge sample value (None when absent) — the
        reconciliation helper the adapters' exactness tests use."""
        family = self._families.get(name)
        if family is None:
            return None
        wanted = dict(labels) if labels else {}
        for sample in family.samples():
            if sample["labels"] == wanted and "value" in sample:
                return float(sample["value"])
        return None


def format_float(value: float) -> str:
    """Canonical number rendering shared by both exporters: integers as
    integers (``3`` not ``3.0``), everything else via ``repr`` (shortest
    round-tripping form)."""
    if value == int(value) and abs(value) < 1e15 and not math.isinf(value):
        return str(int(value))
    return repr(value)
