"""Alert state machine over burn-rate signals.

Each (objective, severity) pair from the :class:`~.slo.SLOEngine` drives
one alert through the Prometheus-style lifecycle:

    inactive → pending → firing → resolved → pending → ...

* **pending** — the burn condition is true but has not yet held for the
  pair's ``for_s``; a single noisy tick never pages.
* **firing** — the condition held continuously for ``for_s``.
* **resolved** — the condition went false while firing; sticky until
  the condition triggers again (so an artifact records that the alert
  *did* fire and *did* clear, not just its final instantaneous state).
* a pending alert whose condition goes false falls back to inactive
  (or to resolved if it had fired before) without ever firing.

Every transition appends to a deterministic log — same clock, same
signals, byte-identical log — and the manager mirrors its state into
the metrics registry (``ecocharge_alert_state`` gauge,
``ecocharge_alert_transitions_total`` counter) so alerts ride the same
Prometheus exposition as everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from .clock import Clock
from .metrics import MetricsRegistry
from .slo import BurnSignal

#: Gauge encoding of alert states (exported per alertname/severity).
STATE_CODES = {"inactive": 0, "pending": 1, "firing": 2, "resolved": 3}


@dataclass(slots=True)
class AlertStatus:
    """Mutable state of one alert between evaluation ticks."""

    name: str
    severity: str
    state: str = "inactive"
    #: When the current pending stretch started (None outside pending).
    pending_since_s: float | None = None
    #: When the alert last entered firing (None if it never fired).
    fired_at_s: float | None = None
    #: Whether the alert has ever fired (drives resolved vs inactive).
    ever_fired: bool = False

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "severity": self.severity,
            "state": self.state,
            "ever_fired": self.ever_fired,
        }


class AlertManager:
    """Walks every alert through the lifecycle, one tick at a time.

    ``update(signals)`` must be called on every evaluation tick (the
    SLO cadence): ``for_s`` maturation is judged on the injected clock,
    and a gap in ticks would let a pending alert mature without the
    condition being re-checked in between.
    """

    def __init__(self, clock: Clock, registry: MetricsRegistry | None = None) -> None:
        self._clock = clock
        self._alerts: dict[str, AlertStatus] = {}
        self.transitions: list[dict[str, Any]] = []
        self._state_family = None
        self._transition_family = None
        if registry is not None:
            self._state_family = registry.gauge(
                "ecocharge_alert_state",
                "Alert lifecycle state (0 inactive, 1 pending, 2 firing, 3 resolved).",
                labels=("alertname", "severity"),
            )
            self._transition_family = registry.counter(
                "ecocharge_alert_transitions_total",
                "Alert state transitions, by alert and target state.",
                labels=("alertname", "to"),
            )

    def update(self, signals: Sequence[BurnSignal]) -> list[dict[str, Any]]:
        """Advance every alert one tick; returns the new transitions."""
        now_s = self._clock.monotonic()
        new: list[dict[str, Any]] = []
        for signal in signals:
            status = self._alerts.get(signal.alert)
            if status is None:
                status = AlertStatus(name=signal.alert, severity=signal.severity)
                self._alerts[signal.alert] = status
            next_state = self._next_state(status, signal, now_s)
            if next_state != status.state:
                entry = {
                    "t": now_s,
                    "alert": status.name,
                    "severity": status.severity,
                    "from": status.state,
                    "to": next_state,
                    "burn_long": signal.burn_long,
                    "burn_short": signal.burn_short,
                }
                self.transitions.append(entry)
                new.append(entry)
                if self._transition_family is not None:
                    self._transition_family.labels(
                        alertname=status.name, to=next_state
                    ).inc()
                status.state = next_state
            if self._state_family is not None:
                self._state_family.labels(
                    alertname=status.name, severity=status.severity
                ).set(STATE_CODES[status.state])
        return new

    def _next_state(
        self, status: AlertStatus, signal: BurnSignal, now_s: float
    ) -> str:
        if signal.active:
            if status.state in ("inactive", "resolved"):
                status.pending_since_s = now_s
                if signal.for_s <= 0:
                    status.fired_at_s = now_s
                    status.ever_fired = True
                    return "firing"
                return "pending"
            if status.state == "pending":
                # Explicit None check: a pending stretch that began at
                # t=0.0 is falsy but perfectly real on a simulated clock.
                since_s = status.pending_since_s
                held_s = now_s - (since_s if since_s is not None else now_s)
                if held_s >= signal.for_s:
                    status.fired_at_s = now_s
                    status.ever_fired = True
                    return "firing"
                return "pending"
            return "firing"
        # Condition false.
        status.pending_since_s = None
        if status.state == "firing":
            return "resolved"
        if status.state == "pending":
            return "resolved" if status.ever_fired else "inactive"
        return status.state

    # -- accessors -----------------------------------------------------------

    def firing(self) -> list[tuple[str, str]]:
        """``(alertname, severity)`` of every currently-firing alert, in
        first-seen order."""
        return [
            (status.name, status.severity)
            for status in self._alerts.values()
            if status.state == "firing"
        ]

    def states(self) -> dict[str, str]:
        return {name: status.state for name, status in self._alerts.items()}

    def statuses(self) -> Iterable[AlertStatus]:
        return self._alerts.values()

    def as_dict(self) -> dict[str, Any]:
        return {
            "states": {
                name: status.as_dict() for name, status in sorted(self._alerts.items())
            },
            "transitions": list(self.transitions),
        }
