"""SLO objectives and multi-window, multi-burn-rate evaluation.

An *SLO* here is a target fraction of good events (availability of
served-fresh answers, requests under a latency bound, zero unsound
tables), and a *burn rate* is how fast the error budget is being spent:

    burn = (bad fraction over a window) / (1 - target)

``burn == 1`` consumes exactly the budget over the SLO period;
``burn == 14.4`` (the SRE-workbook page threshold) exhausts a 30-day
budget in two days.  One window alone either pages too slowly (long
window) or flaps (short window), so each severity evaluates a *pair*:
the alert condition is ``burn(long) >= threshold AND burn(short) >=
threshold`` — the long window proves sustained damage, the short window
proves it is still happening (and lets the alert resolve quickly once
the bleeding stops).

Everything reads through a :class:`~.windows.WindowedAggregator` on the
injected clock, so a seeded storm produces the same burn numbers — and
therefore the same alert transitions (:mod:`.alerts`) — every run.
Burn rates are capped at :data:`BURN_CAP` rather than returned as
``inf`` (a zero-budget objective with any bad event would otherwise
poison the canonical-JSON artifacts, which reject NaN/Inf).

This module is rank-low by design (repro-check R14): objectives over
serving-tier metrics name outcome strings literally instead of
importing ``repro.server``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from .metrics import MetricError
from .windows import WindowedAggregator

#: Finite stand-in for an infinite burn rate (zero-budget SLO violated).
BURN_CAP = 1e6

#: Terminal serving outcomes, mirrored from the scheduler's ``Outcome``
#: enum as literals (importing the server tier here would invert the
#: R14 layering — observability must stay importable from below).
SERVING_OUTCOMES: tuple[str, ...] = (
    "completed",
    "stale",
    "shed-deadline",
    "shed-queue",
    "shed-brownout",
    "rejected-rate",
    "rejected-capacity",
    "failed",
)


@dataclass(frozen=True, slots=True)
class BurnWindowPair:
    """One severity's (long, short) burn-rate windows.

    The canonical SRE-workbook pairs — page at 14.4x over 1h/5m, ticket
    at 6x over 6h/30m — are the defaults; the simulated storm driver
    passes scaled-down pairs so a CI run measured in simulated seconds
    exercises the same machinery.
    """

    severity: str
    long_s: float
    short_s: float
    threshold: float
    #: How long the condition must hold before pending becomes firing.
    for_s: float

    def __post_init__(self) -> None:
        if self.short_s <= 0 or self.long_s < self.short_s:
            raise ValueError("need 0 < short_s <= long_s")
        if self.threshold <= 0:
            raise ValueError("burn threshold must be positive")
        if self.for_s < 0:
            raise ValueError("for_s must be non-negative")


DEFAULT_PAIRS: tuple[BurnWindowPair, ...] = (
    BurnWindowPair(severity="page", long_s=3600.0, short_s=300.0, threshold=14.4, for_s=120.0),
    BurnWindowPair(severity="ticket", long_s=21600.0, short_s=1800.0, threshold=6.0, for_s=900.0),
)


@dataclass(frozen=True, slots=True)
class BurnSignal:
    """One (objective, severity) evaluation at one tick — the alert
    state machine's input."""

    alert: str
    severity: str
    active: bool
    burn_long: float
    burn_short: float
    for_s: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "alert": self.alert,
            "severity": self.severity,
            "active": self.active,
            "burn_long": self.burn_long,
            "burn_short": self.burn_short,
        }


class ServiceLevelObjective:
    """Base: a named target over good/bad event counts per window."""

    def __init__(
        self,
        name: str,
        target: float,
        description: str = "",
        pairs: Sequence[BurnWindowPair] = DEFAULT_PAIRS,
    ) -> None:
        if not 0.0 < target <= 1.0:
            raise ValueError("SLO target must be in (0, 1]")
        if not pairs:
            raise ValueError("an SLO needs at least one burn-window pair")
        self.name = name
        self.target = target
        self.description = description
        self.pairs = tuple(pairs)

    def good_bad(
        self, windows: WindowedAggregator, window_s: float
    ) -> tuple[float, float]:
        raise NotImplementedError

    def burn_rate(self, windows: WindowedAggregator, window_s: float) -> float:
        """Error-budget burn over one trailing window (capped, finite)."""
        good, bad = self.good_bad(windows, window_s)
        total = good + bad
        if total <= 0:
            return 0.0
        budget = 1.0 - self.target
        if budget <= 0.0:
            return BURN_CAP if bad > 0 else 0.0
        return min(BURN_CAP, (bad / total) / budget)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "target": self.target,
            "description": self.description,
            "pairs": [
                {
                    "severity": pair.severity,
                    "long_s": pair.long_s,
                    "short_s": pair.short_s,
                    "threshold": pair.threshold,
                    "for_s": pair.for_s,
                }
                for pair in self.pairs
            ],
        }


class EventRatioSLO(ServiceLevelObjective):
    """Good = selected label sets of one counter; total = a wider set.

    E.g. availability of served-fresh: good is
    ``scheduler_requests_total{outcome="completed"}``, total is the same
    family summed over every terminal outcome.
    """

    def __init__(
        self,
        name: str,
        metric: str,
        good_labels: Sequence[Mapping[str, str]],
        total_labels: Sequence[Mapping[str, str]],
        target: float,
        description: str = "",
        pairs: Sequence[BurnWindowPair] = DEFAULT_PAIRS,
    ) -> None:
        super().__init__(name, target, description, pairs)
        self.metric = metric
        self.good_labels = tuple(dict(labels) for labels in good_labels)
        self.total_labels = tuple(dict(labels) for labels in total_labels)

    def good_bad(
        self, windows: WindowedAggregator, window_s: float
    ) -> tuple[float, float]:
        good = sum(
            windows.counter_delta(self.metric, labels, window_s)
            for labels in self.good_labels
        )
        total = sum(
            windows.counter_delta(self.metric, labels, window_s)
            for labels in self.total_labels
        )
        return good, max(0.0, total - good)


class LatencyBucketSLO(ServiceLevelObjective):
    """Good = observations at-or-under a bucket bound of one histogram.

    ``threshold_s`` must be an exact bucket bound — the cumulative count
    at that bound *is* the good count, no interpolation, no estimation
    error in the SLI itself.
    """

    def __init__(
        self,
        name: str,
        metric: str,
        threshold_s: float,
        target: float,
        labels: Mapping[str, str] | None = None,
        description: str = "",
        pairs: Sequence[BurnWindowPair] = DEFAULT_PAIRS,
    ) -> None:
        super().__init__(name, target, description, pairs)
        self.metric = metric
        self.threshold_s = threshold_s
        self.labels = dict(labels) if labels else None

    def good_bad(
        self, windows: WindowedAggregator, window_s: float
    ) -> tuple[float, float]:
        window = windows.histogram_delta(self.metric, self.labels, window_s)
        try:
            index = window.bounds.index(self.threshold_s)
        except ValueError:
            raise MetricError(
                f"latency SLO '{self.name}': threshold {self.threshold_s} is not "
                f"a bucket bound of '{self.metric}' {window.bounds}"
            ) from None
        good = float(window.cumulative[index])
        return good, max(0.0, float(window.count) - good)


class ZeroEventSLO(ServiceLevelObjective):
    """A forbidden-event objective: the budget is zero, any occurrence
    in the window burns at :data:`BURN_CAP` (interval soundness — one
    unsound table is one too many)."""

    def __init__(
        self,
        name: str,
        metric: str,
        labels: Mapping[str, str] | None = None,
        description: str = "",
        pairs: Sequence[BurnWindowPair] = DEFAULT_PAIRS,
    ) -> None:
        super().__init__(name, 1.0, description, pairs)
        self.metric = metric
        self.labels = dict(labels) if labels else None

    def good_bad(
        self, windows: WindowedAggregator, window_s: float
    ) -> tuple[float, float]:
        bad = windows.counter_delta(self.metric, self.labels, window_s)
        # ``good`` is a synthetic 1 so burn_rate's total is never zero:
        # the objective is about the *presence* of bad events, not a
        # ratio over traffic.
        return 1.0, max(0.0, bad)


class SLOEngine:
    """Evaluates every objective's burn-window pairs at one tick."""

    def __init__(self, windows: WindowedAggregator, objectives: Sequence[ServiceLevelObjective]) -> None:
        if not objectives:
            raise ValueError("the SLO engine needs at least one objective")
        names = [slo.name for slo in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.windows = windows
        self.objectives = tuple(objectives)

    def evaluate(self) -> list[BurnSignal]:
        """Burn signals for every (objective, severity), in declaration
        order — deterministic input order for the alert state machine."""
        signals: list[BurnSignal] = []
        for slo in self.objectives:
            for pair in slo.pairs:
                burn_long = slo.burn_rate(self.windows, pair.long_s)
                burn_short = slo.burn_rate(self.windows, pair.short_s)
                signals.append(
                    BurnSignal(
                        alert=f"{slo.name}:{pair.severity}",
                        severity=pair.severity,
                        active=(
                            burn_long >= pair.threshold
                            and burn_short >= pair.threshold
                        ),
                        burn_long=burn_long,
                        burn_short=burn_short,
                        for_s=pair.for_s,
                    )
                )
        return signals

    def as_dict(self) -> dict[str, Any]:
        return {"objectives": [slo.as_dict() for slo in self.objectives]}


def default_serving_slos(
    availability_target: float = 0.95,
    latency_threshold_s: float = 1.0,
    latency_target: float = 0.95,
    pairs: Sequence[BurnWindowPair] = DEFAULT_PAIRS,
    soundness_pairs: Sequence[BurnWindowPair] | None = None,
) -> list[ServiceLevelObjective]:
    """The serving tier's canonical objectives over its native families:

    * **availability** — fresh completions over all terminal outcomes of
      ``ecocharge_scheduler_requests_total``;
    * **latency** — served answers under ``latency_threshold_s`` per
      ``ecocharge_served_latency_seconds`` buckets;
    * **soundness** — zero ``ecocharge_unsound_tables_total`` events.
    """
    return [
        EventRatioSLO(
            name="serving-availability",
            metric="ecocharge_scheduler_requests_total",
            good_labels=[{"outcome": "completed"}],
            total_labels=[{"outcome": outcome} for outcome in SERVING_OUTCOMES],
            target=availability_target,
            description="fraction of requests served fresh (completed)",
            pairs=pairs,
        ),
        LatencyBucketSLO(
            name="serving-latency",
            metric="ecocharge_served_latency_seconds",
            threshold_s=latency_threshold_s,
            target=latency_target,
            description=f"fraction of served answers under {latency_threshold_s}s",
            pairs=pairs,
        ),
        ZeroEventSLO(
            name="interval-soundness",
            metric="ecocharge_unsound_tables_total",
            description="no served table may carry an unsound interval",
            pairs=soundness_pairs if soundness_pairs is not None else pairs,
        ),
    ]
