"""Span-based tracing with deterministic IDs and an injected clock.

A *span* is one timed unit of work in one tier (``server``, ``gateway``,
``ranker``, ``engine``, ``cache``, ``journal``).  Spans nest: the tracer
keeps a stack, so a ``ranker.segment`` span opened while ``ranker.trip``
is active becomes its child, and the whole trip renders as one tree.

Determinism is non-negotiable here.  The durability tier guarantees
bitwise replay of recovered sessions and the fault injector crashes the
process at fixed points; tracing that used random span IDs or raw wall
clock reads would diverge between a run and its replay.  So:

* span and trace IDs come from sequence counters (``t-0001``,
  ``s-0001``), never from a PRNG;
* a trip's correlation ID is a content hash of the trip itself
  (:func:`trip_correlation_id`), identical across process restarts;
* all timestamps flow through the injected :class:`~.clock.Clock`, so a
  :class:`~.clock.SimulatedClock` makes every duration reproducible.

Profiling hooks: each finished span knows its *self time* (duration
minus direct children) and the tracer can report the top-K hottest span
names (:meth:`Tracer.hot_spans`) aggregated across all finished traces.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from .clock import Clock

if TYPE_CHECKING:
    from .sampling import TailSampler


@dataclass(slots=True)
class SpanEvent:
    """A point-in-time annotation inside a span (e.g. a ladder decision)."""

    name: str
    time_s: float
    attributes: dict[str, Any] = field(default_factory=dict)


@dataclass(slots=True)
class Span:
    """One timed, attributed unit of work; part of exactly one trace."""

    name: str
    tier: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start_s: float
    end_s: float | None = None
    status: str = "ok"
    error: str | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    @property
    def self_time_s(self) -> float:
        """Duration minus time spent in direct children (profiling hook)."""
        return self.duration_s - sum(child.duration_s for child in self.children)

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def tiers(self) -> set[str]:
        return {span.tier for span in self.walk()}

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form for the canonical-JSON snapshot exporter."""
        return {
            "name": self.name,
            "tier": self.tier,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "self_time_s": self.self_time_s,
            "status": self.status,
            "error": self.error,
            "attributes": dict(sorted(self.attributes.items())),
            "events": [
                {
                    "name": event.name,
                    "time_s": event.time_s,
                    "attributes": dict(sorted(event.attributes.items())),
                }
                for event in self.events
            ],
            "children": [child.as_dict() for child in self.children],
        }


class Tracer:
    """Builds span trees from nested ``with span(...)`` blocks.

    Single-threaded by design, like the serving stack it instruments:
    the active-span stack is a plain list and needs no context-var
    machinery.  Finished root spans accumulate in :attr:`traces`,
    bounded by ``max_traces``.  With no ``sampler`` the bound is legacy
    FIFO (oldest dropped first); with a tail sampler installed (see
    :mod:`.sampling`) the sampler decides which finished traces to keep
    and which residents to evict — and may exceed the bound rather than
    evict a must-keep trace.
    """

    def __init__(
        self,
        clock: Clock,
        max_traces: int = 64,
        sampler: "TailSampler | None" = None,
    ) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be positive")
        self._clock = clock
        self._max_traces = max_traces
        self._stack: list[Span] = []
        self._trace_seq = 0
        self._span_seq = 0
        self.sampler = sampler
        self.traces: list[Span] = []

    @property
    def active_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(
        self,
        name: str,
        tier: str,
        trace_id: str | None = None,
        **attributes: Any,
    ) -> Iterator[Span]:
        """Open a span; it closes (and records status) when the block exits.

        ``trace_id`` is honoured only on root spans — nested spans always
        inherit their parent's trace so a trip's correlation ID reaches
        every tier it touches.  Exceptions mark the span ``error`` with
        the exception's type and message, then propagate.
        """
        parent = self.active_span
        if parent is not None:
            resolved_trace = parent.trace_id
        elif trace_id is not None:
            resolved_trace = trace_id
        else:
            self._trace_seq += 1
            resolved_trace = f"t-{self._trace_seq:04d}"
        self._span_seq += 1
        span = Span(
            name=name,
            tier=tier,
            trace_id=resolved_trace,
            span_id=f"s-{self._span_seq:04d}",
            parent_id=parent.span_id if parent is not None else None,
            start_s=self._clock.monotonic(),
            attributes=dict(attributes),
        )
        self._stack.append(span)
        try:
            yield span
        except BaseException as error:
            self.mark_error(error)
            raise
        finally:
            span.end_s = self._clock.monotonic()
            self._stack.pop()
            if parent is not None:
                parent.children.append(span)
            else:
                self.traces.append(span)
                if self.sampler is not None:
                    # Tail-based retention: the sampler keeps, drops, or
                    # evicts now that the trace's outcome is known.
                    self.sampler.admit(self.traces, span, self._max_traces)
                elif len(self.traces) > self._max_traces:
                    del self.traces[0]

    def event(self, name: str, **attributes: Any) -> None:
        """Attach a point-in-time event to the active span (no-op at root)."""
        span = self.active_span
        if span is not None:
            span.events.append(
                SpanEvent(name=name, time_s=self._clock.monotonic(), attributes=dict(attributes))
            )

    def mark_error(self, error: BaseException) -> None:
        """Mark the active span ``error`` without requiring the exception
        to propagate through it — for call sites that handle a failure
        but still want the span to reflect it."""
        span = self.active_span
        if span is not None:
            span.status = "error"
            span.error = f"{type(error).__name__}: {error}"

    def finished_spans(self) -> Iterator[Span]:
        for root in self.traces:
            yield from root.walk()

    def hot_spans(self, k: int = 5) -> list[dict[str, Any]]:
        """Top-``k`` span names by total self time across finished traces."""
        totals: dict[str, dict[str, Any]] = {}
        for span in self.finished_spans():
            entry = totals.setdefault(
                span.name, {"name": span.name, "tier": span.tier, "count": 0, "self_time_s": 0.0}
            )
            entry["count"] += 1
            entry["self_time_s"] += span.self_time_s
        ranked = sorted(totals.values(), key=lambda e: (-e["self_time_s"], e["name"]))
        return ranked[: max(k, 0)]

    def render_trace(self, root: Span) -> str:
        """ASCII tree of one trace, for driver output and debugging."""
        lines = [f"trace {root.trace_id}"]

        def visit(span: Span, prefix: str, is_last: bool) -> None:
            branch = "`-- " if is_last else "|-- "
            status = "" if span.status == "ok" else f" [{span.status}: {span.error}]"
            attrs = ""
            if span.attributes:
                rendered = ", ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
                attrs = f" ({rendered})"
            lines.append(
                f"{prefix}{branch}{span.name} <{span.tier}> "
                f"{span.duration_s * 1e3:.3f}ms{attrs}{status}"
            )
            child_prefix = prefix + ("    " if is_last else "|   ")
            for i, child in enumerate(span.children):
                visit(child, child_prefix, i == len(span.children) - 1)

        visit(root, "", True)
        return "\n".join(lines)


class _NullSpan:
    """The single shared no-op context manager ``NoopTracer`` hands out."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NoopTracer:
    """API-compatible tracer that records nothing and allocates nothing.

    Every method returns a pre-built constant, so with telemetry disabled
    the instrumentation reduces to an attribute lookup and an empty
    ``with`` block — the < 3% overhead budget in the acceptance criteria.
    """

    __slots__ = ()

    traces: Sequence[Span] = ()

    @property
    def active_span(self) -> Span | None:
        return None

    def span(
        self, name: str, tier: str, trace_id: str | None = None, **attributes: Any
    ) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attributes: Any) -> None:
        return None

    def mark_error(self, error: BaseException) -> None:
        return None

    def finished_spans(self) -> Iterator[Span]:
        return iter(())

    def hot_spans(self, k: int = 5) -> list[dict[str, Any]]:
        return []

    def render_trace(self, root: Span) -> str:
        return ""


def trip_correlation_id(trip: Any) -> str:
    """A deterministic correlation ID for one trip.

    Content-hashed (blake2s over origin, destination, length, and
    departure time) rather than sequence-numbered, so the same trip gets
    the same trace ID before a crash and after recovery — the property
    that lets a resumed session's spans join the original trace.  Duck-
    typed on the ``Trip`` surface to keep this package import-free of the
    network tier.
    """
    node_ids = tuple(trip.node_ids)
    payload = (
        f"{node_ids[0] if node_ids else -1}:{node_ids[-1] if node_ids else -1}:"
        f"{len(node_ids)}:{float(trip.departure_time_h).hex()}"
    )
    digest = hashlib.blake2s(payload.encode("utf-8"), digest_size=8).hexdigest()
    return f"trip-{digest}"
