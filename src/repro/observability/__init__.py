"""Unified telemetry for the EcoCharge serving stack.

One substrate for what the five tiers previously accounted separately:

* :mod:`.clock` — the injected :class:`Clock` protocol (real +
  simulated); the only module allowed to call ``time.*`` directly
  (repro-check rule R10 enforces this);
* :mod:`.deadline` — request deadlines and cancellation tokens built on
  the injected clock, polled at checkpoints by every serving tier;
* :mod:`.metrics` — labelled counters/gauges/fixed-bucket histograms in
  a process-local :class:`MetricsRegistry`;
* :mod:`.tracing` — deterministic span trees with trip correlation IDs
  and per-span self-time profiling;
* :mod:`.recorder` — the :class:`Telemetry` facade the instrumented
  tiers hold (or the shared :data:`NOOP_TELEMETRY` when disabled);
* :mod:`.adapters` — mirrors of the legacy ``CacheStats`` /
  ``EngineStats`` / ``ApiUsage`` / health / breaker / journal counters,
  plus exact reconciliation;
* :mod:`.export` — Prometheus text exposition and canonical-JSON
  snapshots, with validators for both;
* :mod:`.windows` — sliding-window aggregation over registry series
  (the rate substrate the SLO engine reads);
* :mod:`.slo` — SLO objectives with multi-window multi-burn-rate
  evaluation (SRE-workbook style);
* :mod:`.alerts` — the pending→firing→resolved alert state machine
  with a deterministic transition log;
* :mod:`.sampling` — tail-based trace sampling (errors/deadline/
  degraded always kept, top-K slowest, hash-sampled rest) + exemplars.

See ``docs/observability.md`` for the metric catalog and span taxonomy.
"""

from .adapters import (
    mirror_all,
    mirror_api_usage,
    mirror_breakers,
    mirror_cache_stats,
    mirror_engine_stats,
    mirror_epoch_stats,
    mirror_health,
    mirror_journal_accounting,
    mirror_scheduler_stats,
    reconcile,
)
from .clock import SYSTEM_CLOCK, Clock, SimulatedClock, SystemClock, iso_utc
from .deadline import (
    NEVER_EXPIRES,
    CancellationToken,
    Deadline,
    DeadlineExpired,
    NeverExpires,
)
from .export import (
    ExpositionError,
    canonical_json,
    json_round_trips,
    parse_prometheus,
    render_json,
    render_prometheus,
)
from .alerts import STATE_CODES, AlertManager, AlertStatus
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    OVERFLOW_BUCKET,
    OVERFLOW_COUNTER,
    MetricError,
    MetricFamily,
    MetricsRegistry,
    histogram_quantile,
)
from .recorder import NOOP_TELEMETRY, TENANT_LABEL_LIMIT, Telemetry
from .sampling import (
    MUST_KEEP_REASONS,
    SamplerStats,
    SamplingPolicy,
    TailSampler,
    collect_exemplars,
    hash_fraction,
    retained_trace_ids,
)
from .slo import (
    BURN_CAP,
    DEFAULT_PAIRS,
    BurnSignal,
    BurnWindowPair,
    EventRatioSLO,
    LatencyBucketSLO,
    ServiceLevelObjective,
    SLOEngine,
    ZeroEventSLO,
    default_serving_slos,
)
from .tracing import NoopTracer, Span, SpanEvent, Tracer, trip_correlation_id
from .windows import HistogramWindow, WindowedAggregator

__all__ = [
    "Clock",
    "SystemClock",
    "SimulatedClock",
    "SYSTEM_CLOCK",
    "iso_utc",
    "CancellationToken",
    "Deadline",
    "DeadlineExpired",
    "NeverExpires",
    "NEVER_EXPIRES",
    "MetricsRegistry",
    "MetricFamily",
    "MetricError",
    "DEFAULT_LATENCY_BUCKETS",
    "OVERFLOW_BUCKET",
    "OVERFLOW_COUNTER",
    "histogram_quantile",
    "TENANT_LABEL_LIMIT",
    "WindowedAggregator",
    "HistogramWindow",
    "SLOEngine",
    "ServiceLevelObjective",
    "EventRatioSLO",
    "LatencyBucketSLO",
    "ZeroEventSLO",
    "BurnSignal",
    "BurnWindowPair",
    "BURN_CAP",
    "DEFAULT_PAIRS",
    "default_serving_slos",
    "AlertManager",
    "AlertStatus",
    "STATE_CODES",
    "TailSampler",
    "SamplingPolicy",
    "SamplerStats",
    "MUST_KEEP_REASONS",
    "hash_fraction",
    "retained_trace_ids",
    "collect_exemplars",
    "Tracer",
    "NoopTracer",
    "Span",
    "SpanEvent",
    "trip_correlation_id",
    "Telemetry",
    "NOOP_TELEMETRY",
    "mirror_all",
    "mirror_cache_stats",
    "mirror_engine_stats",
    "mirror_epoch_stats",
    "mirror_api_usage",
    "mirror_health",
    "mirror_breakers",
    "mirror_journal_accounting",
    "mirror_scheduler_stats",
    "reconcile",
    "render_prometheus",
    "parse_prometheus",
    "render_json",
    "canonical_json",
    "json_round_trips",
    "ExpositionError",
]
