"""Unified telemetry for the EcoCharge serving stack.

One substrate for what the five tiers previously accounted separately:

* :mod:`.clock` — the injected :class:`Clock` protocol (real +
  simulated); the only module allowed to call ``time.*`` directly
  (repro-check rule R10 enforces this);
* :mod:`.deadline` — request deadlines and cancellation tokens built on
  the injected clock, polled at checkpoints by every serving tier;
* :mod:`.metrics` — labelled counters/gauges/fixed-bucket histograms in
  a process-local :class:`MetricsRegistry`;
* :mod:`.tracing` — deterministic span trees with trip correlation IDs
  and per-span self-time profiling;
* :mod:`.recorder` — the :class:`Telemetry` facade the instrumented
  tiers hold (or the shared :data:`NOOP_TELEMETRY` when disabled);
* :mod:`.adapters` — mirrors of the legacy ``CacheStats`` /
  ``EngineStats`` / ``ApiUsage`` / health / breaker / journal counters,
  plus exact reconciliation;
* :mod:`.export` — Prometheus text exposition and canonical-JSON
  snapshots, with validators for both.

See ``docs/observability.md`` for the metric catalog and span taxonomy.
"""

from .adapters import (
    mirror_all,
    mirror_api_usage,
    mirror_breakers,
    mirror_cache_stats,
    mirror_engine_stats,
    mirror_epoch_stats,
    mirror_health,
    mirror_journal_accounting,
    mirror_scheduler_stats,
    reconcile,
)
from .clock import SYSTEM_CLOCK, Clock, SimulatedClock, SystemClock, iso_utc
from .deadline import (
    NEVER_EXPIRES,
    CancellationToken,
    Deadline,
    DeadlineExpired,
    NeverExpires,
)
from .export import (
    ExpositionError,
    canonical_json,
    json_round_trips,
    parse_prometheus,
    render_json,
    render_prometheus,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricError,
    MetricFamily,
    MetricsRegistry,
)
from .recorder import NOOP_TELEMETRY, Telemetry
from .tracing import NoopTracer, Span, SpanEvent, Tracer, trip_correlation_id

__all__ = [
    "Clock",
    "SystemClock",
    "SimulatedClock",
    "SYSTEM_CLOCK",
    "iso_utc",
    "CancellationToken",
    "Deadline",
    "DeadlineExpired",
    "NeverExpires",
    "NEVER_EXPIRES",
    "MetricsRegistry",
    "MetricFamily",
    "MetricError",
    "DEFAULT_LATENCY_BUCKETS",
    "Tracer",
    "NoopTracer",
    "Span",
    "SpanEvent",
    "trip_correlation_id",
    "Telemetry",
    "NOOP_TELEMETRY",
    "mirror_all",
    "mirror_cache_stats",
    "mirror_engine_stats",
    "mirror_epoch_stats",
    "mirror_api_usage",
    "mirror_health",
    "mirror_breakers",
    "mirror_journal_accounting",
    "mirror_scheduler_stats",
    "reconcile",
    "render_prometheus",
    "parse_prometheus",
    "render_json",
    "canonical_json",
    "json_round_trips",
    "ExpositionError",
]
