"""The telemetry facade each tier talks to: clock + registry + tracer.

One :class:`Telemetry` object travels with a ``ChargingEnvironment`` (and
through ``FaultTolerantEnvironment`` to the gateway, ranker, engine,
cache, and journal call sites).  Instrumented code never imports the
registry or tracer directly; it asks the facade, which is either a live
recorder or the shared :data:`NOOP_TELEMETRY` singleton.

The disabled path is the design centre: ``EcoChargeConfig.telemetry``
defaults to ``False``, every hot call site is either a ``with
telemetry.span(...)`` over the no-op tracer (one attribute lookup, one
constant context manager) or guarded by ``if telemetry.enabled``, and the
acceptance criteria hold the disabled stack to < 3% overhead versus the
pre-telemetry baseline.

Native metric families (counted at the instrumented call sites) are
predeclared here so exposition is stable even before first increment;
mirrored families (absolute values bridged from the legacy stats
objects) live in :mod:`.adapters`.
"""

from __future__ import annotations

from typing import Any, ContextManager, Iterator

from .clock import SYSTEM_CLOCK, Clock, SimulatedClock
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricError,
    MetricFamily,
    MetricsRegistry,
)
from .sampling import TailSampler
from .tracing import NoopTracer, Span, Tracer

#: Hard cap on distinct ``tenant`` label values per family — the serving
#: tier is multi-tenant with an unbounded tenant universe, so tenant is
#: the one native label that *must* be guarded (docs/observability.md,
#: repro-check rule R17).  Overflow lands in ``__other__`` with the trip
#: counted in ``ecocharge_label_overflow_total``.
TENANT_LABEL_LIMIT = 8


class Telemetry:
    """Clock, metrics registry, and tracer behind one enabled/disabled flag."""

    __slots__ = ("enabled", "clock", "registry", "tracer")

    def __init__(
        self,
        clock: Clock,
        enabled: bool = True,
        max_traces: int = 64,
        sampler: TailSampler | None = None,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self.registry = MetricsRegistry()
        self.tracer: Tracer | NoopTracer
        if enabled:
            self.tracer = Tracer(clock, max_traces=max_traces, sampler=sampler)
            self._declare_native_families()
        else:
            self.tracer = NoopTracer()

    @classmethod
    def live(cls, max_traces: int = 64) -> "Telemetry":
        """A recorder on the real system clock (production / driver use)."""
        return cls(SYSTEM_CLOCK, enabled=True, max_traces=max_traces)

    @classmethod
    def simulated(
        cls,
        start_s: float = 0.0,
        tick_s: float = 0.001,
        max_traces: int = 64,
        sampler: TailSampler | None = None,
    ) -> "Telemetry":
        """A recorder on a deterministic clock (tests, replay, chaos runs)."""
        return cls(
            SimulatedClock(start_s, tick_s),
            enabled=True,
            max_traces=max_traces,
            sampler=sampler,
        )

    def _declare_native_families(self) -> None:
        reg = self.registry
        reg.counter(
            "ecocharge_trips_total",
            "Continuous-query trips started by run_over_trip.",
        )
        reg.counter(
            "ecocharge_segments_total",
            "Trip segments processed, by final outcome.",
            labels=("outcome",),
        )
        reg.counter(
            "ecocharge_gateway_ladder_total",
            "Degradation-ladder outcomes per gateway fetch, by endpoint and "
            "service level reached.",
            labels=("endpoint", "level"),
        )
        reg.counter(
            "ecocharge_journal_appends_total",
            "Durable-session journal records appended, by record type.",
            labels=("record_type",),
        )
        reg.counter(
            "ecocharge_journal_snapshots_total",
            "Durable-session snapshots written.",
        )
        reg.counter(
            "ecocharge_scheduler_requests_total",
            "Serving-tier requests resolved, by final outcome.",
            labels=("outcome",),
        )
        reg.histogram(
            "ecocharge_scheduler_latency_seconds",
            "Seconds from scheduler submission to resolution.",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        reg.counter(
            "ecocharge_tenant_requests_total",
            "Serving-tier requests resolved, by tenant and final outcome "
            f"(tenant capped at {TENANT_LABEL_LIMIT} distinct values by the "
            "cardinality guard; overflow lands in '__other__').",
            labels=("tenant", "outcome"),
            max_label_values={"tenant": TENANT_LABEL_LIMIT},
        )
        reg.counter(
            "ecocharge_shard_requests_total",
            "Serving-tier requests resolved, by shard and final outcome.",
            labels=("shard", "outcome"),
        )
        reg.histogram(
            "ecocharge_served_latency_seconds",
            "Seconds from submission to a *served* resolution (completed "
            "or stale) — the latency-SLO histogram, with exemplar links "
            "to retained traces.",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        reg.counter(
            "ecocharge_unsound_tables_total",
            "Served offering tables that failed the interval-soundness "
            "audit (the zero-budget SLO; any increment is an incident).",
        )
        reg.histogram(
            "ecocharge_segment_seconds",
            "Wall-clock seconds per ranked trip segment.",
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        reg.histogram(
            "ecocharge_gateway_fetch_seconds",
            "Seconds per gateway fetch (all ladder rungs included).",
            labels=("endpoint",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        reg.histogram(
            "ecocharge_engine_search_seconds",
            "Seconds per distance-engine search on a cache miss.",
            labels=("backend",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        reg.histogram(
            "ecocharge_engine_recustomize_seconds",
            "Seconds per incremental re-customization after a live-graph "
            "epoch fence (the epoch-swap latency of docs/live_graph.md).",
            labels=("backend",),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )

    # -- tracing passthroughs ----------------------------------------------

    def span(
        self, name: str, tier: str, trace_id: str | None = None, **attributes: Any
    ) -> ContextManager[Span | None]:
        return self.tracer.span(name, tier, trace_id=trace_id, **attributes)

    def event(self, name: str, **attributes: Any) -> None:
        self.tracer.event(name, **attributes)

    def mark_error(self, error: BaseException) -> None:
        self.tracer.mark_error(error)

    # -- metrics conveniences ----------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        """Increment a predeclared counter; no-op when disabled.

        An undeclared name raises :class:`MetricError` — every native
        family is declared up front, so an unknown name is a typo, and
        silently dropping the increment would undercount forever.
        """
        if not self.enabled:
            return
        self._family(name).labels(**labels).inc(amount)

    def observe(
        self, name: str, value: float, exemplar: str | None = None, **labels: str
    ) -> None:
        """Observe into a predeclared histogram; no-op when disabled.

        ``exemplar`` (typically a trip correlation ID) links the bucket
        this observation lands in back to a trace — see
        :func:`~.sampling.collect_exemplars`.
        """
        if not self.enabled:
            return
        self._family(name).labels(**labels).observe(value, exemplar=exemplar)

    def _family(self, name: str) -> MetricFamily:
        family = self.registry.get(name)
        if family is None:
            raise MetricError(f"metric '{name}' was never declared on this recorder")
        return family

    def finished_spans(self) -> Iterator[Span]:
        return self.tracer.finished_spans()


#: The shared disabled recorder.  Environments default to this, so the
#: instrumented stack pays only no-op calls until someone installs a live
#: ``Telemetry`` (via ``EcoChargeConfig(telemetry=True)`` or
#: ``set_telemetry``).
NOOP_TELEMETRY = Telemetry(SYSTEM_CLOCK, enabled=False)
