"""Exporters: Prometheus text exposition and canonical-JSON snapshots.

Two formats, one source (:meth:`MetricsRegistry.snapshot`):

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, labelled samples, histogram
  ``_bucket``/``_sum``/``_count`` expansion with cumulative ``le``
  buckets).  :func:`parse_prometheus` is a line-format validator used by
  the driver and CI smoke job: it does not aim to be a full scraper,
  only to reject malformed exposition deterministically.
* :func:`render_json` — the registry snapshot (optionally with the trace
  forest) as *canonical* JSON: sorted keys, minimal separators, no NaN.
  Canonical means byte-stable across runs with identical counters, so
  the smoke job can assert ``loads → dumps`` is the identity.
"""

from __future__ import annotations

import json
import re
from typing import Any

from .metrics import MetricsRegistry, format_float
from .tracing import Span

_EXPOSITION_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_EXPOSITION_NAME})"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_PAIR_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$')
_HELP_RE = re.compile(rf"^# HELP ({_EXPOSITION_NAME}) .*$")
_TYPE_RE = re.compile(rf"^# TYPE ({_EXPOSITION_NAME}) (counter|gauge|histogram|untyped)$")


class ExpositionError(ValueError):
    """A line of Prometheus text exposition failed validation."""


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{_escape_label(value)}"' for name, value in sorted(labels.items()))
    return "{" + body + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    for family in registry.families():
        help_text = family.help.replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {family.name} {help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples():
            labels = dict(sample["labels"])
            if family.kind == "histogram":
                for le, cum in sample["buckets"].items():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = le
                    lines.append(
                        f"{family.name}_bucket{_render_labels(bucket_labels)} {cum}"
                    )
                lines.append(
                    f"{family.name}_sum{_render_labels(labels)} "
                    f"{format_float(sample['sum'])}"
                )
                lines.append(
                    f"{family.name}_count{_render_labels(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{family.name}{_render_labels(labels)} "
                    f"{format_float(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, dict[str, Any]]:
    """Validate exposition text line-by-line; raise :class:`ExpositionError`
    on the first malformed line.

    Returns ``{metric_name: {"type": ..., "help": ..., "samples": n}}`` so
    callers can cross-check against the registry snapshot.  Checks
    enforced: HELP/TYPE header shape, sample-line grammar, parsable
    sample values, label-pair syntax, and that every sample belongs to a
    declared family (modulo histogram suffixes).
    """
    families: dict[str, dict[str, Any]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            help_match = _HELP_RE.match(line)
            type_match = _TYPE_RE.match(line)
            if help_match:
                families.setdefault(
                    help_match.group(1), {"type": None, "help": True, "samples": 0}
                )["help"] = True
            elif type_match:
                families.setdefault(
                    type_match.group(1), {"type": None, "help": False, "samples": 0}
                )["type"] = type_match.group(2)
            else:
                raise ExpositionError(f"line {lineno}: malformed comment: {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ExpositionError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        family = families.get(name) or families.get(base)
        if family is None:
            raise ExpositionError(f"line {lineno}: sample {name!r} has no TYPE header")
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in _split_label_pairs(raw_labels, lineno):
                if not _LABEL_PAIR_RE.match(pair):
                    raise ExpositionError(f"line {lineno}: malformed label pair {pair!r}")
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError as error:
                raise ExpositionError(
                    f"line {lineno}: unparsable value {value!r}"
                ) from error
        family["samples"] += 1
    return families


def _split_label_pairs(raw: str, lineno: int) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    pairs: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for ch in raw:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
        else:
            current.append(ch)
    if in_quotes:
        raise ExpositionError(f"line {lineno}: unterminated label quote in {raw!r}")
    if current:
        pairs.append("".join(current))
    return pairs


def render_json(
    registry: MetricsRegistry,
    traces: list[Span] | None = None,
    extra: dict[str, Any] | None = None,
) -> str:
    """Registry snapshot (plus optional trace forest) as canonical JSON."""
    payload: dict[str, Any] = {"metrics": registry.snapshot()}
    if traces is not None:
        payload["traces"] = [root.as_dict() for root in traces]
    if extra:
        payload.update(extra)
    return canonical_json(payload)


def canonical_json(payload: Any) -> str:
    """Byte-stable JSON: sorted keys, minimal separators, NaN rejected."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def json_round_trips(text: str) -> bool:
    """Does ``text`` survive ``loads → canonical dumps`` byte-identically?"""
    try:
        return canonical_json(json.loads(text)) == text
    except ValueError:
        return False
