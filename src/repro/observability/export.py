"""Exporters: Prometheus text exposition and canonical-JSON snapshots.

Two formats, one source (:meth:`MetricsRegistry.snapshot`):

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, labelled samples, histogram
  ``_bucket``/``_sum``/``_count`` expansion with cumulative ``le``
  buckets).  :func:`parse_prometheus` is a line-format validator used by
  the driver and CI smoke job: it does not aim to be a full scraper,
  only to reject malformed exposition deterministically.
* :func:`render_json` — the registry snapshot (optionally with the trace
  forest) as *canonical* JSON: sorted keys, minimal separators, no NaN.
  Canonical means byte-stable across runs with identical counters, so
  the smoke job can assert ``loads → dumps`` is the identity.
"""

from __future__ import annotations

import json
import re
from typing import Any

from .metrics import MetricsRegistry, format_float
from .tracing import Span

_EXPOSITION_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_NAME_RE = re.compile(rf"^{_EXPOSITION_NAME}$")
_LABEL_PAIR_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\["\\n])*)"$'
)
_HELP_RE = re.compile(rf"^# HELP ({_EXPOSITION_NAME}) .*$")
_TYPE_RE = re.compile(rf"^# TYPE ({_EXPOSITION_NAME}) (counter|gauge|histogram|untyped)$")


class ExpositionError(ValueError):
    """A line of Prometheus text exposition failed validation."""


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def unescape_label(value: str) -> str:
    """Invert :func:`_escape_label` — the decode half of the round-trip
    the escaping tests assert (``\\\\`` → ``\\``, ``\\"`` → ``"``,
    ``\\n`` → newline).  Rejects any other escape sequence."""
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= len(value):
            raise ExpositionError(f"dangling escape at end of label value {value!r}")
        nxt = value[i + 1]
        if nxt == "\\":
            out.append("\\")
        elif nxt == '"':
            out.append('"')
        elif nxt == "n":
            out.append("\n")
        else:
            raise ExpositionError(f"bad escape '\\{nxt}' in label value {value!r}")
        i += 2
    return "".join(out)


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{_escape_label(value)}"' for name, value in sorted(labels.items()))
    return "{" + body + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    for family in registry.families():
        help_text = family.help.replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {family.name} {help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples():
            labels = dict(sample["labels"])
            if family.kind == "histogram":
                for le, cum in sample["buckets"].items():
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = le
                    lines.append(
                        f"{family.name}_bucket{_render_labels(bucket_labels)} {cum}"
                    )
                lines.append(
                    f"{family.name}_sum{_render_labels(labels)} "
                    f"{format_float(sample['sum'])}"
                )
                lines.append(
                    f"{family.name}_count{_render_labels(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{family.name}{_render_labels(labels)} "
                    f"{format_float(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, dict[str, Any]]:
    """Validate exposition text line-by-line; raise :class:`ExpositionError`
    on the first malformed line.

    Returns ``{metric_name: {"type": ..., "help": ..., "samples": n}}`` so
    callers can cross-check against the registry snapshot.  Checks
    enforced: HELP/TYPE header shape, sample-line grammar, parsable
    sample values, label-pair syntax, and that every sample belongs to a
    declared family (modulo histogram suffixes).
    """
    families: dict[str, dict[str, Any]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            help_match = _HELP_RE.match(line)
            type_match = _TYPE_RE.match(line)
            if help_match:
                families.setdefault(
                    help_match.group(1), {"type": None, "help": True, "samples": 0}
                )["help"] = True
            elif type_match:
                families.setdefault(
                    type_match.group(1), {"type": None, "help": False, "samples": 0}
                )["type"] = type_match.group(2)
            else:
                raise ExpositionError(f"line {lineno}: malformed comment: {line!r}")
            continue
        name, _labels, value = parse_sample_line(line, lineno)
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        family = families.get(name) or families.get(base)
        if family is None:
            raise ExpositionError(f"line {lineno}: sample {name!r} has no TYPE header")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError as error:
                raise ExpositionError(
                    f"line {lineno}: unparsable value {value!r}"
                ) from error
        family["samples"] += 1
    return families


def parse_sample_line(line: str, lineno: int = 0) -> tuple[str, dict[str, str], str]:
    """One sample line → ``(name, decoded labels, raw value string)``.

    A real tokenizer, not a regex: the label block ends at the first
    ``}`` *outside* a quoted value, so label values containing ``{``,
    ``}``, ``\\``, ``"`` or ``\\n`` escapes all round-trip (the
    exposition-escaping regression this replaces — the old pattern
    matched the label block with ``[^{}]*`` and rejected any brace
    inside a quoted value).
    """
    brace = line.find("{")
    if brace < 0:
        name, sep, value = line.partition(" ")
        if not sep or not value or " " in value or not _NAME_RE.match(name):
            raise ExpositionError(f"line {lineno}: malformed sample: {line!r}")
        return name, {}, value
    name = line[:brace]
    if not _NAME_RE.match(name):
        raise ExpositionError(f"line {lineno}: malformed sample: {line!r}")
    close = _find_close_brace(line, brace + 1, lineno)
    raw_labels = line[brace + 1 : close]
    rest = line[close + 1 :]
    if not rest.startswith(" "):
        raise ExpositionError(f"line {lineno}: malformed sample: {line!r}")
    value = rest[1:]
    if not value or " " in value:
        raise ExpositionError(f"line {lineno}: malformed sample: {line!r}")
    labels: dict[str, str] = {}
    if raw_labels:
        for pair in _split_label_pairs(raw_labels, lineno):
            match = _LABEL_PAIR_RE.match(pair)
            if not match:
                raise ExpositionError(f"line {lineno}: malformed label pair {pair!r}")
            labels[match.group("name")] = unescape_label(match.group("value"))
    return name, labels, value


def _find_close_brace(line: str, start: int, lineno: int) -> int:
    """Index of the ``}`` that closes a label block opened before
    ``start``, skipping quoted values (where ``}`` is literal)."""
    in_quotes = False
    escaped = False
    for i in range(start, len(line)):
        ch = line[i]
        if escaped:
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == '"':
            in_quotes = not in_quotes
        elif ch == "}" and not in_quotes:
            return i
    raise ExpositionError(f"line {lineno}: unterminated label block: {line!r}")


def _split_label_pairs(raw: str, lineno: int) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    pairs: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for ch in raw:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
        else:
            current.append(ch)
    if in_quotes:
        raise ExpositionError(f"line {lineno}: unterminated label quote in {raw!r}")
    if current:
        pairs.append("".join(current))
    return pairs


def render_json(
    registry: MetricsRegistry,
    traces: list[Span] | None = None,
    extra: dict[str, Any] | None = None,
) -> str:
    """Registry snapshot (plus optional trace forest) as canonical JSON."""
    payload: dict[str, Any] = {"metrics": registry.snapshot()}
    if traces is not None:
        payload["traces"] = [root.as_dict() for root in traces]
    if extra:
        payload.update(extra)
    return canonical_json(payload)


def canonical_json(payload: Any) -> str:
    """Byte-stable JSON: sorted keys, minimal separators, NaN rejected."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def json_round_trips(text: str) -> bool:
    """Does ``text`` survive ``loads → canonical dumps`` byte-identically?"""
    try:
        return canonical_json(json.loads(text)) == text
    except ValueError:
        return False
