"""Tail-based trace sampling: keep the traces that explain the burn.

The tracer's retention ring is bounded (``max_traces``), and head-based
FIFO eviction — drop the oldest — is exactly wrong under overload: a
storm produces so many traces that the anomalous ones (errors, deadline
sheds, degraded serves) are flushed out by the healthy ones that follow.
Tail-based sampling decides *after* a trace finishes, when its outcome
is known:

* **must-keep** — any trace containing an error span, a
  deadline-expired outcome, or a degraded serve (brownout level > 0,
  widened intervals, epoch-degraded, stale) is always retained and is
  *never* evicted, even if that means the ring temporarily exceeds its
  bound during an incident — the invariant the retention tests pin;
* **top-K slowest** — the K slowest traces per time window are kept
  (latency outliers explain p99 burn even when nothing errored);
* **hash-sampled rest** — everything else is kept at ``sample_rate``,
  decided by a deterministic blake2s hash of the trace ID, so two runs
  of the same storm retain the byte-identical trace set (no PRNG, no
  wall clock).

Exemplar support closes the loop: histogram buckets carry the trace ID
of a recent observation (:meth:`~.metrics.Histogram.observe`), and
:func:`collect_exemplars` filters those links down to retained traces,
so a latency bucket in the exposition points at a trace that is
actually still in the ring.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterable

from .metrics import MetricsRegistry
from .tracing import Span

#: Classification reasons that make a trace unevictable.
MUST_KEEP_REASONS = frozenset({"error", "deadline", "degraded"})

#: The root-span attribute the sampler stamps its decision on.
REASON_ATTRIBUTE = "sampling.reason"


@dataclass(frozen=True, slots=True)
class SamplingPolicy:
    """Knobs of the tail sampler (all deterministic)."""

    #: Top-K slowest traces retained per ``slow_window_s`` window.
    slow_k: int = 4
    slow_window_s: float = 60.0
    #: Keep probability for unremarkable traces (hash-derived, seedless).
    sample_rate: float = 0.1

    def __post_init__(self) -> None:
        if self.slow_k < 0:
            raise ValueError("slow_k must be non-negative")
        if self.slow_window_s <= 0:
            raise ValueError("slow_window_s must be positive")
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")


@dataclass(slots=True)
class SamplerStats:
    """Exact retention accounting: every finished root trace is either
    kept (by reason) or dropped, and evictions only ever remove
    previously-kept non-must-keep traces."""

    kept: dict[str, int] = field(default_factory=dict)
    dropped: int = 0
    evicted: int = 0

    def kept_total(self) -> int:
        return sum(self.kept.values())

    def must_keep_total(self) -> int:
        return sum(self.kept.get(reason, 0) for reason in sorted(MUST_KEEP_REASONS))

    def as_dict(self) -> dict[str, Any]:
        return {
            "kept": dict(sorted(self.kept.items())),
            "dropped": self.dropped,
            "evicted": self.evicted,
        }


def hash_fraction(trace_id: str) -> float:
    """A deterministic uniform draw in ``[0, 1)`` from a trace ID —
    blake2s, like :func:`~.tracing.trip_correlation_id`, never a PRNG."""
    digest = hashlib.blake2s(trace_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


class TailSampler:
    """The retention decision the tracer delegates to at root-span exit.

    The tracer appends the finished root to its ring and then calls
    :meth:`admit`; the sampler either blesses it with a keep reason
    (stamped on the root's attributes) or pops it back off, then evicts
    oldest evictable traces while the ring exceeds its bound.  Must-keep
    traces are structurally unevictable: eviction skips them, and when
    only must-keeps remain the ring is allowed to exceed ``max_traces``.
    """

    def __init__(self, policy: SamplingPolicy | None = None) -> None:
        self.policy = policy if policy is not None else SamplingPolicy()
        self.stats = SamplerStats()
        #: Durations of kept top-K traces per slow window, sorted
        #: ascending (index 0 is the eviction candidate).
        self._slow: dict[int, list[float]] = {}

    def admit(self, traces: list[Span], root: Span, max_traces: int) -> str | None:
        """Decide the just-appended ``root``'s fate; returns the keep
        reason or None (dropped)."""
        reason = self._classify(root)
        if reason is None:
            traces.pop()
            self.stats.dropped += 1
            return None
        root.attributes[REASON_ATTRIBUTE] = reason
        self.stats.kept[reason] = self.stats.kept.get(reason, 0) + 1
        self._evict(traces, max_traces)
        return reason

    def _classify(self, root: Span) -> str | None:
        if any(span.status == "error" for span in root.walk()):
            return "error"
        attrs = root.attributes
        if attrs.get("outcome") == "shed-deadline":
            return "deadline"
        if (
            attrs.get("outcome") == "stale"
            or bool(attrs.get("widened"))
            or bool(attrs.get("epoch_degraded"))
            or int(attrs.get("brownout") or 0) > 0
        ):
            return "degraded"
        if self._is_slow(root):
            return "slow"
        if hash_fraction(root.trace_id) < self.policy.sample_rate:
            return "sampled"
        return None

    def _is_slow(self, root: Span) -> bool:
        if self.policy.slow_k == 0:
            return False
        end_s = root.end_s if root.end_s is not None else root.start_s
        window = int(end_s // self.policy.slow_window_s)
        kept = self._slow.setdefault(window, [])
        duration = root.duration_s
        if len(kept) < self.policy.slow_k:
            kept.append(duration)
            kept.sort()
            return True
        if duration > kept[0]:
            # The displaced duration's trace stays in the ring but loses
            # its top-K seat — it becomes an ordinary eviction candidate.
            kept[0] = duration
            kept.sort()
            return True
        return False

    def _evict(self, traces: list[Span], max_traces: int) -> None:
        while len(traces) > max_traces:
            victim_index = None
            for i, trace in enumerate(traces):
                if trace.attributes.get(REASON_ATTRIBUTE) not in MUST_KEEP_REASONS:
                    victim_index = i
                    break
            if victim_index is None:
                # Only must-keep traces remain: the ring may exceed its
                # bound rather than lose the evidence.
                return
            del traces[victim_index]
            self.stats.evicted += 1


def retained_trace_ids(traces: Iterable[Span]) -> set[str]:
    """The distinct trace IDs currently retained in a tracer's ring."""
    return {trace.trace_id for trace in traces}


def collect_exemplars(
    registry: MetricsRegistry, retained: set[str]
) -> list[dict[str, Any]]:
    """Histogram-bucket → trace links restricted to retained traces.

    Each entry is ``{metric, labels, le, trace_id}``; buckets whose
    exemplar trace was dropped or evicted are omitted — an exemplar must
    point at a trace an operator can still open.
    """
    out: list[dict[str, Any]] = []
    for family in registry.families():
        if family.kind != "histogram":
            continue
        for sample in family.samples():
            for le, trace_id in sample.get("exemplars", {}).items():
                if trace_id in retained:
                    out.append(
                        {
                            "metric": family.name,
                            "labels": dict(sample["labels"]),
                            "le": le,
                            "trace_id": trace_id,
                        }
                    )
    return out
