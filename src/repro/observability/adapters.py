"""Mirror the legacy per-tier stats objects into the metrics registry.

Each tier already keeps its own exact accounting — ``CacheStats`` on the
dynamic cache, ``EngineStats`` on the distance engine, ``ApiUsage`` on
the raw providers, ``HealthRegistry`` + breaker states on the gateway,
``JournalCacheAccounting`` on a durable session.  Those objects stay the
source of truth (their semantics and the identities the resilience and
durability tests assert are untouched); these adapters *copy* their
absolute values into registry families on demand.

Mirrors are written with ``set_total`` / ``set``: the legacy counter
owns the count, the registry sample is a projection of it at mirror
time.  That is also what makes :func:`reconcile` meaningful — it
re-reads both sides and demands exact equality, so a drifted mirror (or
a double-counted resume) is a hard failure, not a rounding story.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from .metrics import MetricsRegistry

if TYPE_CHECKING:
    from ..core.caching import CacheStats
    from ..durability.accounting import JournalCacheAccounting
    from ..network.distance_engine import EngineStats
    from ..network.epochs import EpochStats, GraphEpochManager
    from ..resilience.health import HealthRegistry
    from ..server.api import ApiUsage
    from ..server.scheduling.scheduler import SchedulerStats

_CACHE_FIELDS = ("hits", "misses", "expirations", "out_of_range", "epoch_invalidations")
_ENGINE_FIELDS = (
    "searches",
    "cache_hits",
    "cache_misses",
    "pair_hits",
    "pair_misses",
    "customisations",
    "customisation_hits",
    "evictions",
    "ch_builds",
    "epoch_fences",
    "epoch_invalidations",
)
_API_FIELDS = ("weather_calls", "busy_calls", "traffic_calls", "catalog_calls")
_JOURNAL_FIELDS = (
    "hits",
    "misses",
    "expirations",
    "out_of_range",
    "epoch_invalidations",
    "stores",
)
_SCHEDULER_FIELDS = (
    "submitted",
    "completed",
    "served_stale",
    "sheds_deadline",
    "sheds_queue",
    "sheds_brownout",
    "rejected_rate",
    "rejected_capacity",
    "failed",
    "widened",
    "epoch_degraded",
    "stale_epoch_rejections",
)
_EPOCH_FIELDS = (
    "epochs",
    "weight_epochs",
    "noop_epochs",
    "incidents_applied",
    "closures_applied",
    "reopenings_applied",
)


def mirror_cache_stats(registry: MetricsRegistry, stats: "CacheStats") -> None:
    """``DynamicCache`` lookup accounting → ``ecocharge_cache_events``."""
    family = registry.counter(
        "ecocharge_cache_events",
        "Dynamic-cache lookup outcomes, mirrored from CacheStats.",
        labels=("event",),
    )
    for name in _CACHE_FIELDS:
        family.labels(event=name).set_total(float(getattr(stats, name)))
    registry.gauge(
        "ecocharge_cache_hit_ratio",
        "Dynamic-cache hit ratio, mirrored from CacheStats.",
    ).set(stats.hit_rate)


def mirror_engine_stats(registry: MetricsRegistry, stats: "EngineStats") -> None:
    """``DistanceEngine`` accounting → ``ecocharge_engine_events``."""
    family = registry.counter(
        "ecocharge_engine_events",
        "Distance-engine cache and search accounting, mirrored from EngineStats.",
        labels=("event",),
    )
    for name in _ENGINE_FIELDS:
        family.labels(event=name).set_total(float(getattr(stats, name)))
    registry.gauge(
        "ecocharge_engine_hit_ratio",
        "Distance-engine search-cache hit ratio, mirrored from EngineStats.",
    ).set(stats.hit_rate)


def mirror_api_usage(registry: MetricsRegistry, usage: "ApiUsage") -> None:
    """Provider call counters → ``ecocharge_api_calls``."""
    family = registry.counter(
        "ecocharge_api_calls",
        "Upstream provider calls delivered, mirrored from ApiUsage.",
        labels=("endpoint",),
    )
    for name in _API_FIELDS:
        endpoint = name.removesuffix("_calls")
        family.labels(endpoint=endpoint).set_total(float(getattr(usage, name)))


def mirror_health(registry: MetricsRegistry, health: "HealthRegistry") -> None:
    """Gateway ladder/upstream health counters → ``ecocharge_endpoint_health``."""
    family = registry.counter(
        "ecocharge_endpoint_health",
        "Per-endpoint resilience counters, mirrored from HealthRegistry.",
        labels=("endpoint", "field"),
    )
    availability = registry.gauge(
        "ecocharge_endpoint_availability_ratio",
        "Fraction of logical calls answered without degradation.",
        labels=("endpoint",),
    )
    for endpoint, counters in health.as_dict().items():
        for field_name, value in counters.items():
            family.labels(endpoint=endpoint, field=field_name).set_total(float(value))
        availability.labels(endpoint=endpoint).set(
            health.for_endpoint(endpoint).availability_ratio
        )


def mirror_breakers(registry: MetricsRegistry, states: Mapping[str, str]) -> None:
    """Breaker states → ``ecocharge_breaker_state`` (0 closed / 1 half-open /
    2 open), plus the state string as a label for readability."""
    codes = {"closed": 0.0, "half_open": 1.0, "half-open": 1.0, "open": 2.0}
    family = registry.gauge(
        "ecocharge_breaker_state",
        "Circuit-breaker state per endpoint (0=closed, 1=half-open, 2=open).",
        labels=("endpoint", "state"),
    )
    for endpoint, state in sorted(states.items()):
        family.labels(endpoint=endpoint, state=state).set(codes.get(state, -1.0))


def mirror_journal_accounting(
    registry: MetricsRegistry, accounting: "JournalCacheAccounting"
) -> None:
    """Durable-session journaled cache totals → ``ecocharge_journal_cache_events``."""
    family = registry.counter(
        "ecocharge_journal_cache_events",
        "Journaled cache-event totals for the durable session, mirrored "
        "from JournalCacheAccounting.",
        labels=("event",),
    )
    for name in _JOURNAL_FIELDS:
        family.labels(event=name).set_total(float(getattr(accounting, name)))


def mirror_epoch_stats(
    registry: MetricsRegistry, epochs: "GraphEpochManager"
) -> None:
    """Live-graph epoch accounting → ``ecocharge_epoch_events`` plus the
    ``ecocharge_epoch_current`` / ``ecocharge_weights_version`` gauges."""
    family = registry.counter(
        "ecocharge_epoch_events",
        "Live-graph epoch and incident accounting, mirrored from EpochStats.",
        labels=("event",),
    )
    for name in _EPOCH_FIELDS:
        family.labels(event=name).set_total(float(getattr(epochs.stats, name)))
    registry.gauge(
        "ecocharge_epoch_current",
        "The live graph's current epoch.",
    ).set(float(epochs.epoch))
    registry.gauge(
        "ecocharge_weights_version",
        "The live graph's current weights version (bumps only on real changes).",
    ).set(float(epochs.weights_version))


def mirror_scheduler_stats(registry: MetricsRegistry, stats: "SchedulerStats") -> None:
    """Serving-tier scheduler accounting → ``ecocharge_scheduler_events``.

    The scheduler's *native* families (``..._requests_total``,
    ``..._latency_seconds``) are incremented live under the scheduler
    lock; this mirror carries the exact terminal accounting so
    :func:`reconcile` can demand the two views agree to the request.
    """
    family = registry.counter(
        "ecocharge_scheduler_events",
        "Serving-tier request accounting, mirrored from SchedulerStats.",
        labels=("event",),
    )
    for name in _SCHEDULER_FIELDS:
        family.labels(event=name).set_total(float(getattr(stats, name)))


def mirror_all(
    registry: MetricsRegistry,
    cache_stats: "CacheStats | None" = None,
    engine_stats: "EngineStats | None" = None,
    api_usage: "ApiUsage | None" = None,
    health: "HealthRegistry | None" = None,
    breaker_states: Mapping[str, str] | None = None,
    journal_accounting: "JournalCacheAccounting | None" = None,
    scheduler_stats: "SchedulerStats | None" = None,
    epochs: "GraphEpochManager | None" = None,
) -> None:
    """Mirror every provided stats object in one call."""
    if cache_stats is not None:
        mirror_cache_stats(registry, cache_stats)
    if engine_stats is not None:
        mirror_engine_stats(registry, engine_stats)
    if api_usage is not None:
        mirror_api_usage(registry, api_usage)
    if health is not None:
        mirror_health(registry, health)
    if breaker_states is not None:
        mirror_breakers(registry, breaker_states)
    if journal_accounting is not None:
        mirror_journal_accounting(registry, journal_accounting)
    if scheduler_stats is not None:
        mirror_scheduler_stats(registry, scheduler_stats)
    if epochs is not None:
        mirror_epoch_stats(registry, epochs)


def reconcile(
    registry: MetricsRegistry,
    cache_stats: "CacheStats | None" = None,
    engine_stats: "EngineStats | None" = None,
    api_usage: "ApiUsage | None" = None,
    journal_accounting: "JournalCacheAccounting | None" = None,
    scheduler_stats: "SchedulerStats | None" = None,
    epochs: "GraphEpochManager | None" = None,
) -> list[str]:
    """Exact-equality check of mirrored samples against the live objects.

    Returns a list of human-readable mismatch descriptions; empty means
    the registry snapshot reconciles exactly.  Run *after*
    :func:`mirror_all` — an unmirrored family reports as missing, which
    is itself a mismatch.
    """
    problems: list[str] = []

    def check(metric: str, labels: dict[str, str], expected: float) -> None:
        actual = registry.sample_value(metric, labels)
        if actual is None:
            problems.append(f"{metric}{labels}: missing from registry")
        elif actual != expected:
            problems.append(f"{metric}{labels}: registry={actual} legacy={expected}")

    if cache_stats is not None:
        for name in _CACHE_FIELDS:
            check("ecocharge_cache_events", {"event": name}, float(getattr(cache_stats, name)))
    if engine_stats is not None:
        for name in _ENGINE_FIELDS:
            check("ecocharge_engine_events", {"event": name}, float(getattr(engine_stats, name)))
    if api_usage is not None:
        for name in _API_FIELDS:
            check(
                "ecocharge_api_calls",
                {"endpoint": name.removesuffix("_calls")},
                float(getattr(api_usage, name)),
            )
    if journal_accounting is not None:
        for name in _JOURNAL_FIELDS:
            check(
                "ecocharge_journal_cache_events",
                {"event": name},
                float(getattr(journal_accounting, name)),
            )
    if scheduler_stats is not None:
        for name in _SCHEDULER_FIELDS:
            check(
                "ecocharge_scheduler_events",
                {"event": name},
                float(getattr(scheduler_stats, name)),
            )
    if epochs is not None:
        for name in _EPOCH_FIELDS:
            check(
                "ecocharge_epoch_events",
                {"event": name},
                float(getattr(epochs.stats, name)),
            )
        check("ecocharge_epoch_current", {}, float(epochs.epoch))
        check("ecocharge_weights_version", {}, float(epochs.weights_version))
    return problems
