"""Deadline propagation primitives for the concurrent serving tier.

A request admitted by the scheduler carries a :class:`Deadline` — an
absolute monotonic instant derived from the injected
:class:`~repro.observability.clock.Clock` — and every tier the request
flows through (gateway → ranker → engine) polls it at a *checkpoint*
before starting the next unit of work.  Work whose deadline has passed
is shed where it stands instead of finishing a result nobody will read:
the engine refuses to open a new shortest-path search, the ranking loop
refuses to start the next segment, the gateway refuses to descend the
degradation ladder.

The module lives in the observability foundation (layer rank 0, next to
the clock it is built on) so that network, core, resilience, and server
can all import it without bending the layer DAG (repro-check rule R14).
Lower tiers never *construct* deadlines — they only honour a
:class:`CancellationToken` handed down from the scheduler — so the
budget policy stays a serving-tier concern.

:class:`DeadlineExpired` is deliberately **not** an
:class:`~repro.resilience.errors.UpstreamError`: the degradation ladder
must never absorb it (retrying or serving stale cannot buy time back),
and the ranking loop must not record it as a failed segment — the only
valid handler is the scheduler, which turns it into a shed response.
"""

from __future__ import annotations

import math
from typing import Protocol, runtime_checkable

from .clock import Clock


class DeadlineExpired(RuntimeError):
    """Raised at a checkpoint once the request's deadline has passed.

    ``where`` names the checkpoint that shed the work (``"dispatch"``,
    ``"segment"``, ``"pool"``, ``"gateway"``, ``"engine-search"``), so a
    shed request's trace shows exactly how deep it got.
    """

    def __init__(self, where: str, overrun_s: float) -> None:
        super().__init__(
            f"deadline expired at checkpoint '{where}' ({overrun_s:.4f}s past due)"
        )
        self.where = where
        self.overrun_s = overrun_s


@runtime_checkable
class CancellationToken(Protocol):
    """What the lower tiers see of a deadline: a poll point.

    ``checkpoint`` returns normally while work may continue and raises
    :class:`DeadlineExpired` once it may not.  Implementations must be
    cheap (one clock read) and thread-safe — a token is polled from
    whichever worker thread carries the request.
    """

    def checkpoint(self, where: str) -> None:
        """Raise :class:`DeadlineExpired` if the budget is exhausted."""
        ...


class Deadline:
    """An absolute due-instant on an injected clock.

    Built once at admission from a relative budget; every later poll is
    a single ``monotonic()`` read against the precomputed due instant,
    so checkpoints cost nothing measurable on the hot path.  A
    ``budget_s`` of ``math.inf`` never expires (the scheduler's
    configuration escape hatch for offline/batch use).
    """

    __slots__ = ("_clock", "issued_s", "due_s")

    def __init__(
        self, clock: Clock, budget_s: float, issued_s: float | None = None
    ) -> None:
        if budget_s <= 0:
            raise ValueError("deadline budget must be positive")
        self._clock = clock
        self.issued_s = issued_s if issued_s is not None else clock.monotonic()
        self.due_s = self.issued_s + budget_s

    @property
    def budget_s(self) -> float:
        return self.due_s - self.issued_s

    def remaining_s(self) -> float:
        """Seconds of budget left (negative once expired)."""
        if math.isinf(self.due_s):
            return math.inf
        return self.due_s - self._clock.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining_s() < 0.0

    def checkpoint(self, where: str) -> None:
        """Raise :class:`DeadlineExpired` once the budget is exhausted."""
        remaining = self.remaining_s()
        if remaining < 0.0:
            raise DeadlineExpired(where, -remaining)


class NeverExpires:
    """The no-op token installed when no deadline is in force.

    Keeps every checkpoint site unconditional (no ``if token is not
    None`` branches on hot paths) — polling this token is one attribute
    lookup and an empty method body.
    """

    __slots__ = ()

    def checkpoint(self, where: str) -> None:
        return None


#: Shared no-deadline token; environments and engines default to this.
NEVER_EXPIRES = NeverExpires()
