"""Injected time sources — the only sanctioned way to read a clock.

Every tier of the serving stack that needs time (span timestamps, bench
histories, latency stopwatches, mode simulations) receives a
:class:`Clock` instead of calling :func:`time.time` or
:func:`time.perf_counter` directly.  ``repro-check`` rule R10
(clock-bypass) enforces this: raw ``time.*`` reads are allowed only
inside this package, where the two real implementations live.

Why injection matters here specifically: the durability tier guarantees
*bitwise* replay of a recovered session, and the fault injector kills
processes at deterministic points.  Telemetry that read the wall clock
directly would make traces (and any artefact that embeds them)
unreproducible; with a :class:`SimulatedClock` the whole observability
layer is a deterministic function of the workload.

``now()`` is wall time (seconds since the Unix epoch, UTC) for
timestamps that outlive the process; ``monotonic()`` is a high-resolution
monotonic reading for durations.  The two must never be mixed: a duration
is a difference of ``monotonic()`` readings, a timestamp is one ``now()``
reading.
"""

from __future__ import annotations

import time
from datetime import datetime, timezone
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """A pair of time sources: wall timestamps and monotonic durations."""

    def now(self) -> float:
        """Seconds since the Unix epoch (UTC wall time)."""
        ...

    def monotonic(self) -> float:
        """Monotonic high-resolution seconds, for measuring durations."""
        ...


class SystemClock:
    """The real clocks (the only raw ``time.*`` call sites in the repo)."""

    def now(self) -> float:
        return time.time()

    def monotonic(self) -> float:
        return time.perf_counter()


class SimulatedClock:
    """A deterministic clock driven by the test (or simulation) harness.

    ``tick_s`` auto-advances the clock by a fixed amount on every
    ``monotonic()`` reading, so span durations are deterministic and
    non-zero without the harness having to interleave ``advance`` calls
    with the code under test.
    """

    def __init__(self, start_s: float = 0.0, tick_s: float = 0.0) -> None:
        if tick_s < 0:
            raise ValueError("tick_s must be non-negative")
        self._now_s = start_s
        self._tick_s = tick_s

    def now(self) -> float:
        return self._now_s

    def monotonic(self) -> float:
        reading = self._now_s
        self._now_s += self._tick_s
        return reading

    def advance(self, seconds: float) -> None:
        """Move simulated time forward by ``seconds``."""
        if seconds < 0:
            raise ValueError("a clock never runs backwards")
        self._now_s += seconds


#: The process-wide real clock, for call sites without a better-scoped
#: injected instance (CLI demos, benchmark drivers).
SYSTEM_CLOCK = SystemClock()


def iso_utc(timestamp_s: float) -> str:
    """``timestamp_s`` (epoch seconds) as an ISO-8601 UTC string.

    Millisecond precision: enough to order bench-history entries, short
    enough to stay readable in committed JSON reports.
    """
    moment = datetime.fromtimestamp(timestamp_s, tz=timezone.utc)
    return moment.strftime("%Y-%m-%dT%H:%M:%S.") + f"{moment.microsecond // 1000:03d}Z"
