"""Sliding-window aggregation over the metrics registry.

The SLO engine (:mod:`.slo`) needs *rates over windows* — "what
fraction of requests failed in the last 5 minutes" — while the registry
only holds monotone totals.  This module bridges the two: a
:class:`WindowedAggregator` samples the registry on a fixed cadence
into a time-indexed ring of snapshots, and a window delta is just
``value(now) - value(now - window)`` looked up by binary search.

Design constraints, matching the rest of the observability tier:

* **injected clock** — every timestamp comes from the aggregator's
  :class:`~.clock.Clock`, so a :class:`~.clock.SimulatedClock` makes
  every window delta (and therefore every burn rate and alert
  transition downstream) bit-reproducible;
* **bounded memory** — samples older than the horizon are pruned, but
  the newest sample at-or-before the horizon boundary is always kept so
  the widest window can still subtract a baseline;
* **zero before birth** — a lookup before the first sample reads 0.0.
  Counters start at zero, so an aggregator created together with its
  registry (the supported pattern) sees exact deltas from t=0.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any

from .clock import Clock
from .metrics import Histogram, MetricsRegistry


@dataclass(frozen=True, slots=True)
class HistogramWindow:
    """A histogram's delta over one window: cumulative bucket counts
    (``le`` order, ``+Inf`` last), sum, and count — the shape
    :func:`~.metrics.histogram_quantile` consumes directly."""

    bounds: tuple[float, ...]
    cumulative: tuple[int, ...]
    sum: float
    count: int


class WindowedAggregator:
    """Periodic registry snapshots + window-delta lookups.

    Call :meth:`sample` on a fixed cadence (the SLO evaluation tick);
    ``counter_delta``/``histogram_delta`` then answer "how much did this
    series grow over the trailing ``window_s`` seconds".  Deltas are
    exact differences of sampled totals — no decay, no approximation —
    so two runs with the same clock and the same traffic produce
    byte-identical window readings.
    """

    def __init__(
        self, registry: MetricsRegistry, clock: Clock, horizon_s: float = 3600.0
    ) -> None:
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        self._registry = registry
        self._clock = clock
        self._horizon_s = horizon_s
        self._times: list[float] = []
        self._snapshots: list[dict[tuple[str, tuple[str, ...]], Any]] = []

    def __len__(self) -> int:
        return len(self._times)

    def sample(self) -> float:
        """Record one snapshot of every registry series; returns its
        timestamp.  Monotonic sampling is enforced — the ring is ordered
        for binary search."""
        now_s = self._clock.monotonic()
        if self._times and now_s < self._times[-1]:
            raise ValueError("aggregator samples must be taken in clock order")
        snapshot: dict[tuple[str, tuple[str, ...]], Any] = {}
        for family in self._registry.families():
            for key, child in family.children():
                series = (family.name, key)
                if isinstance(child, Histogram):
                    snapshot[series] = (
                        tuple(child.cumulative()),
                        child.sum,
                        child.count,
                    )
                else:
                    snapshot[series] = child.value
        self._times.append(now_s)
        self._snapshots.append(snapshot)
        self._prune(now_s)
        return now_s

    def _prune(self, now_s: float) -> None:
        cutoff = now_s - self._horizon_s
        # Keep the newest sample at-or-before the cutoff: it is the
        # baseline for a full-horizon window.
        drop = 0
        while drop + 1 < len(self._times) and self._times[drop + 1] <= cutoff:
            drop += 1
        if drop:
            del self._times[:drop]
            del self._snapshots[:drop]

    def _series_key(self, name: str, labels: dict[str, str] | None) -> tuple:
        family = self._registry.get(name)
        if family is None:
            raise ValueError(f"metric '{name}' is not registered")
        wanted = labels or {}
        key = tuple(str(wanted.get(label, "")) for label in family.label_names)
        return (name, key)

    def _value_at(self, series: tuple, at_s: float) -> Any:
        """The series value from the newest sample taken at-or-before
        ``at_s`` (None when no sample that old exists — i.e. zero)."""
        idx = bisect_right(self._times, at_s) - 1
        if idx < 0:
            return None
        return self._snapshots[idx].get(series)

    def counter_delta(
        self, name: str, labels: dict[str, str] | None, window_s: float
    ) -> float:
        """Growth of one counter/gauge series over the trailing window,
        ending at the latest sample."""
        if not self._times:
            return 0.0
        series = self._series_key(name, labels)
        now_s = self._times[-1]
        current = self._snapshots[-1].get(series)
        past = self._value_at(series, now_s - window_s)
        return float(current or 0.0) - float(past or 0.0)

    def histogram_delta(
        self, name: str, labels: dict[str, str] | None, window_s: float
    ) -> HistogramWindow:
        """A histogram series' bucket/sum/count delta over the trailing
        window, ending at the latest sample."""
        family = self._registry.get(name)
        if family is None or family.kind != "histogram":
            raise ValueError(f"metric '{name}' is not a registered histogram")
        bounds = family.buckets
        series = self._series_key(name, labels)
        if not self._times:
            return HistogramWindow(bounds, (0,) * (len(bounds) + 1), 0.0, 0)
        now_s = self._times[-1]
        current = self._snapshots[-1].get(series) or (
            (0,) * (len(bounds) + 1),
            0.0,
            0,
        )
        past = self._value_at(series, now_s - window_s) or (
            (0,) * (len(bounds) + 1),
            0.0,
            0,
        )
        cumulative = tuple(c - p for c, p in zip(current[0], past[0]))
        return HistogramWindow(
            bounds=bounds,
            cumulative=cumulative,
            sum=current[1] - past[1],
            count=current[2] - past[2],
        )
