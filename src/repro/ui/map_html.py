"""Static map writer — the Folium/Leaflet substitute.

The paper's client renders Offering Tables on an interactive Leaflet map.
Offline we emit a self-contained HTML file with an inline SVG map: the
road network as line work, the trip as a highlighted polyline, chargers as
rank-coloured markers with hover tooltips.  No external assets, opens in
any browser.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Sequence

from ..core.offering import OfferingTable
from ..network.graph import RoadNetwork
from ..network.path import Trip
from ..spatial.bbox import BoundingBox
from ..spatial.geometry import Point

_SVG_SIZE = 900.0
_MARGIN = 30.0

_RANK_COLOURS = ("#1a9850", "#66bd63", "#a6d96a", "#fdae61", "#f46d43")
_PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
 body {{ font-family: system-ui, sans-serif; margin: 1rem; background: #fafafa; }}
 svg {{ border: 1px solid #ccc; background: #fff; }}
 .road {{ stroke: #d0d0d0; stroke-width: 1; }}
 .trip {{ stroke: #2166ac; stroke-width: 3; fill: none; }}
 .charger:hover {{ stroke: #000; stroke-width: 2; }}
 figcaption {{ color: #555; margin-top: .5rem; }}
</style>
</head>
<body>
<h1>{title}</h1>
<figure>
<svg viewBox="0 0 {size} {size}" width="{size}" height="{size}">
{content}
</svg>
<figcaption>{caption}</figcaption>
</figure>
</body>
</html>
"""


class _Projector:
    """Maps plane-km coordinates into the SVG viewport (y flipped)."""

    def __init__(self, bounds: BoundingBox):
        span = max(bounds.width, bounds.height, 1e-9)
        self._scale = (_SVG_SIZE - 2 * _MARGIN) / span
        self._bounds = bounds

    def __call__(self, point: Point) -> tuple[float, float]:
        x = _MARGIN + (point.x - self._bounds.min_x) * self._scale
        y = _SVG_SIZE - _MARGIN - (point.y - self._bounds.min_y) * self._scale
        return (round(x, 2), round(y, 2))


def _network_svg(network: RoadNetwork, project: _Projector) -> list[str]:
    parts = []
    drawn: set[tuple[int, int]] = set()
    for edge in network.edges():
        key = (min(edge.source, edge.target), max(edge.source, edge.target))
        if key in drawn:
            continue
        drawn.add(key)
        x1, y1 = project(network.node(edge.source).point)
        x2, y2 = project(network.node(edge.target).point)
        parts.append(f'<line class="road" x1="{x1}" y1="{y1}" x2="{x2}" y2="{y2}"/>')
    return parts


def _trip_svg(trip: Trip, project: _Projector) -> str:
    coords = " ".join(f"{x},{y}" for x, y in (project(p) for p in trip.points))
    return f'<polyline class="trip" points="{coords}"/>'


def _charger_svg(table: OfferingTable, project: _Projector) -> list[str]:
    parts = []
    for entry in table:
        x, y = project(entry.charger.point)
        colour = _RANK_COLOURS[min(entry.rank - 1, len(_RANK_COLOURS) - 1)]
        tooltip = html.escape(
            f"#{entry.rank} charger {entry.charger_id} | rate {entry.charger.rate_kw} kW | "
            f"SC [{entry.score.sc_min:.3f}, {entry.score.sc_max:.3f}]"
        )
        parts.append(
            f'<circle class="charger" cx="{x}" cy="{y}" r="7" fill="{colour}">'
            f"<title>{tooltip}</title></circle>"
        )
        parts.append(
            f'<text x="{x + 9}" y="{y + 4}" font-size="11">{entry.rank}</text>'
        )
    return parts


def render_offering_map(
    network: RoadNetwork,
    trip: Trip,
    tables: Sequence[OfferingTable],
    title: str = "EcoCharge Offering",
) -> str:
    """Render the trip and the union of offering entries as an HTML page."""
    bounds = network.bounds().expanded(1.0)
    project = _Projector(bounds)
    content: list[str] = []
    content.extend(_network_svg(network, project))
    content.append(_trip_svg(trip, project))
    seen: set[int] = set()
    for table in tables:
        fresh = [e for e in table if e.charger_id not in seen]
        seen.update(e.charger_id for e in fresh)
        content.extend(_charger_svg(table, project))
    caption = (
        f"Trip of {trip.length_km:.1f} km across {len(tables)} segment(s); "
        f"{len(seen)} distinct offered chargers. Marker colour encodes rank "
        f"(green = best)."
    )
    return _PAGE_TEMPLATE.format(
        title=html.escape(title),
        size=int(_SVG_SIZE),
        content="\n".join(content),
        caption=caption,
    )


def write_offering_map(
    path: str | Path,
    network: RoadNetwork,
    trip: Trip,
    tables: Sequence[OfferingTable],
    title: str = "EcoCharge Offering",
) -> Path:
    """Write the map page to ``path`` and return it."""
    destination = Path(path)
    destination.write_text(render_offering_map(network, trip, tables, title))
    return destination
