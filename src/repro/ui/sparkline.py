"""Terminal sparklines and bar charts for experiment output.

Pure-text rendering so the figure drivers can show *shapes* inline —
useful because the reproduction's claims are about shapes, not absolute
numbers.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline: each value mapped to an eighth-block glyph.

    Constant series render as mid-height; empty input yields an empty
    string.
    """
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi - lo < 1e-12:
        return _BLOCKS[3] * len(values)
    span = hi - lo
    return "".join(
        _BLOCKS[min(len(_BLOCKS) - 1, int((v - lo) / span * len(_BLOCKS)))]
        for v in values
    )


def bar_chart(
    rows: Mapping[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label, scaled to the maximum."""
    if not rows:
        return ""
    if width < 1:
        raise ValueError("width must be positive")
    peak = max(rows.values())
    label_width = max(len(label) for label in rows)
    lines = []
    for label, value in rows.items():
        if value < 0:
            raise ValueError("bar_chart values must be non-negative")
        filled = 0 if peak <= 0 else round(value / peak * width)
        lines.append(
            f"{label.ljust(label_width)}  {'█' * filled}{'·' * (width - filled)} "
            f"{value:g}{unit}"
        )
    return "\n".join(lines)


def series_table(
    series: Mapping[str, Sequence[float]],
    value_format: str = "{:.1f}",
) -> str:
    """Compact multi-series view: label, sparkline, first -> last values."""
    if not series:
        return ""
    label_width = max(len(label) for label in series)
    lines = []
    for label, values in series.items():
        if not values:
            lines.append(f"{label.ljust(label_width)}  (empty)")
            continue
        first = value_format.format(values[0])
        last = value_format.format(values[-1])
        lines.append(
            f"{label.ljust(label_width)}  {sparkline(values)}  {first} → {last}"
        )
    return "\n".join(lines)
