"""Plain-text rendering of Offering Tables.

The terminal counterpart of the mobile GUI's table view (Figure 1):
columns for rank, charger, rate, and the three EC intervals, formatted for
fixed-width display in examples and experiment logs.
"""

from __future__ import annotations

from typing import Sequence

from ..core.intervals import Interval
from ..core.offering import OfferingTable


def _fmt_interval(interval: Interval, digits: int = 2) -> str:
    if interval.is_exact:
        return f"{interval.lo:.{digits}f}"
    return f"[{interval.lo:.{digits}f}, {interval.hi:.{digits}f}]"


def _fmt_clock(time_h: float) -> str:
    day, rem = divmod(time_h, 24.0)
    hours = int(rem)
    minutes = int(round((rem - hours) * 60))
    if minutes == 60:
        hours, minutes = hours + 1, 0
    prefix = f"d{int(day)} " if day >= 1 else ""
    return f"{prefix}{hours:02d}:{minutes:02d}"


def render_offering_table(table: OfferingTable, title: str | None = None) -> str:
    """One Offering Table as an aligned text block."""
    header = title if title is not None else (
        f"Offering Table — segment {table.segment_index}"
        + (" (adapted)" if table.is_adapted else "")
    )
    columns = ["#", "charger", "rate kW", "ETA", "L", "A", "D", "SC_min", "SC_max"]
    rows: list[list[str]] = [columns]
    for entry in table:
        rows.append(
            [
                str(entry.rank),
                f"b{entry.charger_id}",
                f"{entry.charger.rate_kw:g}",
                _fmt_clock(entry.eta_h),
                _fmt_interval(entry.sustainable),
                _fmt_interval(entry.availability),
                _fmt_interval(entry.derouting),
                f"{entry.score.sc_min:.3f}",
                f"{entry.score.sc_max:.3f}",
            ]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(columns))]
    lines = [header, "-" * (sum(widths) + 2 * (len(columns) - 1))]
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_run_summary(tables: Sequence[OfferingTable]) -> str:
    """Compact per-segment summary: best charger and its score band."""
    lines = ["segment  best      SC_min  SC_max  source"]
    for table in tables:
        best = table.best
        if best is None:
            lines.append(f"{table.segment_index:>7}  (empty)")
            continue
        source = f"adapted from {table.adapted_from}" if table.is_adapted else "computed"
        lines.append(
            f"{table.segment_index:>7}  b{best.charger_id:<7} "
            f"{best.score.sc_min:>6.3f}  {best.score.sc_max:>6.3f}  {source}"
        )
    return "\n".join(lines)
