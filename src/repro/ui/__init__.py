"""User-facing rendering: static HTML maps and text Offering Tables."""

from .map_html import render_offering_map, write_offering_map
from .sparkline import bar_chart, series_table, sparkline
from .table_render import render_offering_table, render_run_summary

__all__ = [
    "bar_chart",
    "render_offering_map",
    "render_offering_table",
    "render_run_summary",
    "series_table",
    "sparkline",
    "write_offering_map",
]
