"""Simulation event log.

The trace-driven simulator (Section V-A: "real and synthetic datasets are
fed into our simulator") records everything that happens to every vehicle
as typed events, so tests and experiments can assert on the sequence —
when offers were generated, where the vehicle derouted, what a session
delivered — without coupling to the simulator's internals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class EventKind(enum.Enum):
    """What can happen to a vehicle during a simulation run."""

    DEPARTED = "departed"
    OFFER_GENERATED = "offer_generated"
    DEROUTE_STARTED = "deroute_started"
    WAITING_FOR_PLUG = "waiting_for_plug"
    CHARGING_STARTED = "charging_started"
    CHARGING_FINISHED = "charging_finished"
    RESUMED_TRIP = "resumed_trip"
    ARRIVED = "arrived"
    BATTERY_EMPTY = "battery_empty"


@dataclass(frozen=True, slots=True)
class SimulationEvent:
    """One timestamped occurrence for one vehicle."""

    time_h: float
    vehicle_id: int
    kind: EventKind
    detail: dict = field(default_factory=dict)


class EventLog:
    """Append-only, time-ordered event store with typed queries."""

    def __init__(self) -> None:
        self._events: list[SimulationEvent] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SimulationEvent]:
        return iter(self._events)

    def record(self, time_h: float, vehicle_id: int, kind: EventKind, **detail) -> None:
        """Append an event; raises if it would break time ordering."""
        if self._events and time_h < self._events[-1].time_h - 1e-9:
            raise ValueError(
                f"event at {time_h} h would break time ordering "
                f"(last was {self._events[-1].time_h} h)"
            )
        self._events.append(SimulationEvent(time_h, vehicle_id, kind, detail))

    def of_kind(self, kind: EventKind) -> list[SimulationEvent]:
        """All events of ``kind`` in time order."""
        return [e for e in self._events if e.kind is kind]

    def for_vehicle(self, vehicle_id: int) -> list[SimulationEvent]:
        """All events of one vehicle in time order."""
        return [e for e in self._events if e.vehicle_id == vehicle_id]

    def count(self, kind: EventKind) -> int:
        """How many events of ``kind`` were recorded."""
        return sum(1 for e in self._events if e.kind is kind)
