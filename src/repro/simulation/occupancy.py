"""Physical plug occupancy during simulation.

Availability estimates (the ``A`` component) are *forecasts*; when a fleet
simulation actually sends several vehicles to the same site, the plugs are
a hard constraint.  This tracker owns who occupies which plug so the
simulator can queue arrivals — making the availability objective's value
visible: plans that ignore ``A`` produce measurable waiting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chargers.charger import Charger


@dataclass(slots=True)
class OccupancyStats:
    plug_ins: int = 0
    rejections: int = 0

    @property
    def rejection_rate(self) -> float:
        attempts = self.plug_ins + self.rejections
        return self.rejections / attempts if attempts else 0.0


class ChargerOccupancy:
    """Who is plugged in where, with per-site capacity enforcement."""

    def __init__(self) -> None:
        self._sessions: dict[int, set[int]] = {}
        self.stats = OccupancyStats()

    def occupancy(self, charger_id: int) -> int:
        """How many vehicles are plugged in at ``charger_id``."""
        return len(self._sessions.get(charger_id, ()))

    def has_free_plug(self, charger: Charger) -> bool:
        """True when the site has at least one unoccupied plug."""
        return self.occupancy(charger.charger_id) < charger.plugs

    def try_plug_in(self, charger: Charger, vehicle_id: int) -> bool:
        """Occupy a plug; False when the site is full."""
        sessions = self._sessions.setdefault(charger.charger_id, set())
        if vehicle_id in sessions:
            raise ValueError(
                f"vehicle {vehicle_id} is already plugged in at charger "
                f"{charger.charger_id}"
            )
        if len(sessions) >= charger.plugs:
            self.stats.rejections += 1
            return False
        sessions.add(vehicle_id)
        self.stats.plug_ins += 1
        return True

    def unplug(self, charger_id: int, vehicle_id: int) -> None:
        """Release the plug held by ``vehicle_id`` (ValueError if none)."""
        sessions = self._sessions.get(charger_id)
        if not sessions or vehicle_id not in sessions:
            raise ValueError(
                f"vehicle {vehicle_id} is not plugged in at charger {charger_id}"
            )
        sessions.discard(vehicle_id)

    def total_occupied(self) -> int:
        """Occupied plugs across all sites."""
        return sum(len(s) for s in self._sessions.values())
