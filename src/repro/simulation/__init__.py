"""Trace-driven fleet simulation: the paper's evaluation vehicle loop."""

from .events import EventKind, EventLog, SimulationEvent
from .occupancy import ChargerOccupancy, OccupancyStats
from .scenarios import (
    SCENARIOS,
    SHOPPING_TRIP,
    TAXI_IDLE,
    WAITING_PARENT,
    ChaosReport,
    ChaosSpec,
    CrashChaosReport,
    CrashChaosSpec,
    Scenario,
    run_chaos,
    run_crash_chaos,
    run_scenario,
    scenario_comparison,
)
from .fleet import (
    FleetReport,
    FleetSimulation,
    SimulationConfig,
    VehicleOutcome,
    VehiclePhase,
)
from .load import LoadProfile, LoadReport, percentile, run_load, run_load_threaded

__all__ = [
    "ChaosReport",
    "ChaosSpec",
    "ChargerOccupancy",
    "CrashChaosReport",
    "CrashChaosSpec",
    "EventKind",
    "EventLog",
    "FleetReport",
    "FleetSimulation",
    "LoadProfile",
    "LoadReport",
    "OccupancyStats",
    "SCENARIOS",
    "SHOPPING_TRIP",
    "Scenario",
    "SimulationConfig",
    "SimulationEvent",
    "TAXI_IDLE",
    "VehicleOutcome",
    "VehiclePhase",
    "WAITING_PARENT",
    "percentile",
    "run_chaos",
    "run_crash_chaos",
    "run_load",
    "run_load_threaded",
    "run_scenario",
    "scenario_comparison",
]
