"""The paper's three motivating scenarios, as runnable simulations.

Section I motivates renewable hoarding with: (i) electric taxis idling
between fares, (ii) parents waiting during children's activities, and
(iii) shoppers parked for an errand.  Each builder configures a
:class:`~repro.simulation.fleet.FleetSimulation` with that scenario's
fingerprint — idle-window length, battery state, time of day, and fleet
size — over any workload, so the scenarios can be compared on equal
ground.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from ..chargers.charger import Vehicle
from ..core.ecocharge import EcoChargeConfig
from ..network.path import Trip
from ..trajectories.datasets import Workload
from .fleet import FleetReport, FleetSimulation, SimulationConfig


@dataclass(frozen=True, slots=True)
class Scenario:
    """A named hoarding scenario: how vehicles behave and when."""

    name: str
    description: str
    idle_duration_h: float
    departure_h: float
    initial_soc: float
    fleet_size: int
    charge_below_soc: float

    def build(self, workload: Workload, ecocharge: EcoChargeConfig | None = None) -> FleetSimulation:
        """A fleet simulation realising this scenario on ``workload``.

        Trips are re-timed to the scenario's departure window (spread a
        few minutes apart) and the fleet gets scenario-specific batteries.
        """
        ecocharge = ecocharge if ecocharge is not None else EcoChargeConfig(
            k=3, radius_km=20.0
        )
        config = SimulationConfig(
            idle_duration_h=self.idle_duration_h,
            charge_below_soc=self.charge_below_soc,
            ecocharge=ecocharge,
        )
        base_trips = workload.trips[: self.fleet_size]
        trips = [
            Trip(trip.network, trip.node_ids, self.departure_h + 0.05 * i)
            for i, trip in enumerate(base_trips)
        ]
        vehicles = [
            Vehicle(vehicle_id=i, state_of_charge=self.initial_soc)
            for i in range(len(trips))
        ]
        return FleetSimulation(workload.environment, trips, config, vehicles)


#: Scenario (i): taxis idle ~45 min between fare clusters, keep batteries
#: topped up opportunistically all day.
TAXI_IDLE = Scenario(
    name="taxi-idle",
    description="Electric taxis hoarding between fares (paper scenario i)",
    idle_duration_h=0.75,
    departure_h=11.0,
    initial_soc=0.45,
    fleet_size=6,
    charge_below_soc=0.6,
)

#: Scenario (ii): the after-school wait is a fixed ~1.5 h window in the
#: afternoon; batteries are half full after the day's errands.
WAITING_PARENT = Scenario(
    name="waiting-parent",
    description="Parents waiting during after-school activities (scenario ii)",
    idle_duration_h=1.5,
    departure_h=15.0,
    initial_soc=0.5,
    fleet_size=4,
    charge_below_soc=0.6,
)

#: Scenario (iii): a ~1 h shopping errand around midday — the solar peak,
#: which is exactly why hoarding there is attractive.
SHOPPING_TRIP = Scenario(
    name="shopping-trip",
    description="Charging during a midday shopping errand (scenario iii)",
    idle_duration_h=1.0,
    departure_h=12.5,
    initial_soc=0.45,
    fleet_size=4,
    charge_below_soc=0.55,
)

SCENARIOS: dict[str, Scenario] = {
    s.name: s for s in (TAXI_IDLE, WAITING_PARENT, SHOPPING_TRIP)
}


def run_scenario(
    scenario: Scenario,
    workload: Workload,
    ecocharge: EcoChargeConfig | None = None,
) -> FleetReport:
    """Build and run one scenario end to end."""
    return scenario.build(workload, ecocharge).run()


def scenario_comparison(
    workload: Workload,
    scenarios: dict[str, Scenario] | None = None,
) -> dict[str, FleetReport]:
    """Run every scenario on the same workload for side-by-side stats."""
    scenarios = scenarios if scenarios is not None else SCENARIOS
    return {name: run_scenario(s, workload) for name, s in scenarios.items()}
