"""The paper's three motivating scenarios, as runnable simulations.

Section I motivates renewable hoarding with: (i) electric taxis idling
between fares, (ii) parents waiting during children's activities, and
(iii) shoppers parked for an errand.  Each builder configures a
:class:`~repro.simulation.fleet.FleetSimulation` with that scenario's
fingerprint — idle-window length, battery state, time of day, and fleet
size — over any workload, so the scenarios can be compared on equal
ground.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

from ..chargers.charger import Vehicle
from ..core.ecocharge import EcoChargeConfig
from ..network.path import Trip
from ..resilience.faults import OutageWindow
from ..trajectories.datasets import Workload
from .fleet import FleetReport, FleetSimulation, SimulationConfig


@dataclass(frozen=True, slots=True)
class Scenario:
    """A named hoarding scenario: how vehicles behave and when."""

    name: str
    description: str
    idle_duration_h: float
    departure_h: float
    initial_soc: float
    fleet_size: int
    charge_below_soc: float

    def build(self, workload: Workload, ecocharge: EcoChargeConfig | None = None) -> FleetSimulation:
        """A fleet simulation realising this scenario on ``workload``.

        Trips are re-timed to the scenario's departure window (spread a
        few minutes apart) and the fleet gets scenario-specific batteries.
        """
        ecocharge = ecocharge if ecocharge is not None else EcoChargeConfig(
            k=3, radius_km=20.0
        )
        config = SimulationConfig(
            idle_duration_h=self.idle_duration_h,
            charge_below_soc=self.charge_below_soc,
            ecocharge=ecocharge,
        )
        base_trips = workload.trips[: self.fleet_size]
        trips = [
            Trip(trip.network, trip.node_ids, self.departure_h + 0.05 * i)
            for i, trip in enumerate(base_trips)
        ]
        vehicles = [
            Vehicle(vehicle_id=i, state_of_charge=self.initial_soc)
            for i in range(len(trips))
        ]
        return FleetSimulation(workload.environment, trips, config, vehicles)


#: Scenario (i): taxis idle ~45 min between fare clusters, keep batteries
#: topped up opportunistically all day.
TAXI_IDLE = Scenario(
    name="taxi-idle",
    description="Electric taxis hoarding between fares (paper scenario i)",
    idle_duration_h=0.75,
    departure_h=11.0,
    initial_soc=0.45,
    fleet_size=6,
    charge_below_soc=0.6,
)

#: Scenario (ii): the after-school wait is a fixed ~1.5 h window in the
#: afternoon; batteries are half full after the day's errands.
WAITING_PARENT = Scenario(
    name="waiting-parent",
    description="Parents waiting during after-school activities (scenario ii)",
    idle_duration_h=1.5,
    departure_h=15.0,
    initial_soc=0.5,
    fleet_size=4,
    charge_below_soc=0.6,
)

#: Scenario (iii): a ~1 h shopping errand around midday — the solar peak,
#: which is exactly why hoarding there is attractive.
SHOPPING_TRIP = Scenario(
    name="shopping-trip",
    description="Charging during a midday shopping errand (scenario iii)",
    idle_duration_h=1.0,
    departure_h=12.5,
    initial_soc=0.45,
    fleet_size=4,
    charge_below_soc=0.55,
)

SCENARIOS: dict[str, Scenario] = {
    s.name: s for s in (TAXI_IDLE, WAITING_PARENT, SHOPPING_TRIP)
}


def run_scenario(
    scenario: Scenario,
    workload: Workload,
    ecocharge: EcoChargeConfig | None = None,
) -> FleetReport:
    """Build and run one scenario end to end."""
    return scenario.build(workload, ecocharge).run()


def scenario_comparison(
    workload: Workload,
    scenarios: dict[str, Scenario] | None = None,
) -> dict[str, FleetReport]:
    """Run every scenario on the same workload for side-by-side stats."""
    scenarios = scenarios if scenarios is not None else SCENARIOS
    return {name: run_scenario(s, workload) for name, s in scenarios.items()}


# ---------------------------------------------------------------------------
# Chaos scenario: the serving stack under provider faults
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ChaosSpec:
    """A fault-injection scenario for the EIS serving stack.

    ``error_rate`` is the per-call transient failure probability of every
    upstream endpoint; the weather endpoint additionally suffers a hard
    outage window (forecasts are the component most exposed to provider
    downtime in practice).  The point of the scenario is the paper's
    serving story under stress: every trip must still receive a complete
    CkNN-EC answer — with honestly wider intervals — and zero unhandled
    exceptions.
    """

    name: str = "provider-chaos"
    description: str = "EIS serving a fleet through faulty providers"
    error_rate: float = 0.25
    latency_spike_rate: float = 0.05
    weather_outage: "OutageWindow | None" = None
    seed: int = 0
    fleet_size: int = 3
    k: int = 3
    radius_km: float = 15.0


@dataclass(frozen=True, slots=True)
class ChaosReport:
    """What happened when the fleet was served through faults."""

    scenario: str
    trips_ranked: int
    tables_produced: int
    failed_segments: int
    snapshots_served: int
    degraded_snapshots: int
    faults_injected: int
    degraded_served: int
    breaker_openings: dict[str, int]
    accounting_ok: bool

    @property
    def completed_cleanly(self) -> bool:
        """Every segment of every trip got an Offering Table."""
        return self.failed_segments == 0


def run_chaos(workload: Workload, spec: ChaosSpec | None = None) -> ChaosReport:
    """Serve a fleet centrally (Mode 2) while providers misbehave.

    Each trip gets a full :func:`~repro.core.ranking.run_over_trip` pass
    plus one region snapshot per produced table, so all four endpoints
    (weather, busy, traffic, catalog) see traffic under the configured
    fault regime.  The report reconciles health counters against
    ``ApiUsage`` — every upstream call is accounted for.
    """
    from ..resilience import FaultInjector, FaultProfile
    from ..server.eis import EcoChargeInformationServer

    spec = spec if spec is not None else ChaosSpec()
    profile = FaultProfile(
        error_rate=spec.error_rate, latency_spike_rate=spec.latency_spike_rate
    )
    profiles = {}
    if spec.weather_outage is not None:
        profiles["weather"] = replace(profile, outages=(spec.weather_outage,))
    injector = FaultInjector(seed=spec.seed, profiles=profiles, default=profile)
    server = EcoChargeInformationServer(workload.environment, injector=injector)
    config = EcoChargeConfig(k=spec.k, radius_km=spec.radius_km)

    trips = workload.trips[: spec.fleet_size]
    tables = 0
    failed = 0
    snapshots = 0
    degraded_snapshots = 0
    for trip in trips:
        run = server.rank_trip(trip, config)
        tables += len(run.tables)
        failed += len(run.failed_segments)
        for table in run.tables:
            snapshot = server.region_snapshot(
                table.origin,
                spec.radius_km,
                eta_h=table.generated_at_h,
                now_h=trip.departure_time_h,
            )
            snapshots += 1
            if snapshot.is_degraded:
                degraded_snapshots += 1
    return ChaosReport(
        scenario=spec.name,
        trips_ranked=len(trips),
        tables_produced=tables,
        failed_segments=failed,
        snapshots_served=snapshots,
        degraded_snapshots=degraded_snapshots,
        faults_injected=server.gateway.injector.total_injected,
        degraded_served=server.health.total_degraded,
        breaker_openings={
            name: endpoint.breaker.times_opened
            for name, endpoint in sorted(server.gateway.endpoints.items())
        },
        accounting_ok=server.gateway.accounting_ok(),
    )


# ---------------------------------------------------------------------------
# Crash chaos: the durability tier under deterministic process death
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CrashChaosSpec:
    """A crash-injection scenario for durable continuous queries.

    For every trip and every named crash point, a durable session is
    opened and driven until the planned :class:`SessionCrash` fires; a
    *fresh* server (simulating the restarted process) then resumes the
    session from its snapshot + journal tail and finishes the trip.  The
    scenario's invariant is the durability tier's core guarantee: the
    recovered run's Offering Tables must be **bitwise identical** to an
    uninterrupted baseline, torn journal lines must be detected and
    discarded (never replayed), and journal/cache accounting must
    reconcile after recovery.
    """

    name: str = "crash-chaos"
    description: str = "Durable sessions surviving deterministic crashes"
    crash_points: tuple[str, ...] = (
        "segment-start",
        "mid-segment",
        "mid-journal-append",
        "post-snapshot",
    )
    at_occurrence: int = 2
    fleet_size: int = 2
    k: int = 3
    radius_km: float = 15.0
    snapshot_every: int = 2
    engine: str | None = None
    seed: int = 0


@dataclass(frozen=True, slots=True)
class CrashChaosReport:
    """What happened when durable sessions were killed and revived."""

    scenario: str
    trips: int
    sessions_crashed: int
    sessions_recovered: int
    crashes_not_reached: int
    snapshots_loaded: int
    records_replayed: int
    torn_lines_discarded: int
    replay_divergences: int
    accounting_failures: int

    @property
    def replay_identical(self) -> bool:
        """Every recovered run matched its uninterrupted baseline bitwise."""
        return self.replay_divergences == 0

    @property
    def completed_cleanly(self) -> bool:
        return self.replay_identical and self.accounting_failures == 0


def run_crash_chaos(
    workload: Workload,
    spec: CrashChaosSpec | None = None,
    root: "Path | str | None" = None,
) -> CrashChaosReport:
    """Kill durable sessions at every planned crash point; verify replay.

    Bitwise equality is checked on the *encoded* tables (canonical JSON
    with hex floats), so even a sign-of-zero difference between the
    recovered and the uninterrupted run counts as divergence.
    """
    import tempfile

    from ..core.ecocharge import EcoChargeConfig
    from ..durability import DurabilityConfig, OfferingTableCodec, canonical_dumps
    from ..resilience import CrashPoint, FaultInjector, SessionCrash
    from ..server.eis import EcoChargeInformationServer
    from ..server.sessions import DurableSessionService

    spec = spec if spec is not None else CrashChaosSpec()
    root = Path(root) if root is not None else Path(tempfile.mkdtemp(prefix="crash-chaos-"))
    config = EcoChargeConfig(k=spec.k, radius_km=spec.radius_km, engine=spec.engine)
    durability = DurabilityConfig(snapshot_every=spec.snapshot_every, fsync=False)
    trips = workload.trips[: spec.fleet_size]

    def encoded_tables(run) -> list[str]:
        return [canonical_dumps(OfferingTableCodec.encode(t)) for t in run.tables]

    # Uninterrupted baselines, one fault-free server per trip so cache
    # state never leaks between runs.
    baselines = []
    for trip in trips:
        server = EcoChargeInformationServer(workload.environment)
        baselines.append(encoded_tables(server.rank_trip(trip, config)))

    crashed = recovered = not_reached = 0
    snapshots_loaded = records_replayed = torn_discarded = 0
    divergences = accounting_failures = 0
    for trip_index, trip in enumerate(trips):
        for point in spec.crash_points:
            session_id = f"trip{trip_index}-{point}"
            injector = FaultInjector(
                seed=spec.seed,
                crash_plan=[CrashPoint(point, at_occurrence=spec.at_occurrence)],
            )
            server = EcoChargeInformationServer(workload.environment, injector=injector)
            service = DurableSessionService(server, root, durability)
            session = service.open(session_id, trip, config)
            try:
                session.run()
            except SessionCrash:
                crashed += 1
            else:
                # The trip was too short for this occurrence; still a
                # valid durable run, but nothing to recover.
                not_reached += 1
                service.close(session)
                continue
            # The restarted process: fresh server, no crash plan.
            server2 = EcoChargeInformationServer(workload.environment)
            service2 = DurableSessionService(server2, root, durability)
            resumed = service2.resume(session_id)
            info = resumed.recovery
            run = resumed.run()
            recovered += 1
            snapshots_loaded += int(info.snapshot_loaded)
            records_replayed += info.journal_records_replayed
            torn_discarded += info.torn_lines_discarded
            if encoded_tables(run) != baselines[trip_index]:
                divergences += 1
            if not (info.accounting_ok and resumed.accounting_ok()):
                accounting_failures += 1
            service2.close(resumed)
    return CrashChaosReport(
        scenario=spec.name,
        trips=len(trips),
        sessions_crashed=crashed,
        sessions_recovered=recovered,
        crashes_not_reached=not_reached,
        snapshots_loaded=snapshots_loaded,
        records_replayed=records_replayed,
        torn_lines_discarded=torn_discarded,
        replay_divergences=divergences,
        accounting_failures=accounting_failures,
    )


# ---------------------------------------------------------------------------
# Incident chaos: the serving tier riding live-graph epoch bumps
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class IncidentChaosSpec:
    """A seeded incident-storm scenario for the live-graph subsystem.

    A :class:`~repro.resilience.IncidentChaos` plan drives epoch bumps
    (congestion multipliers, closures, reopenings, and scheduled no-op
    bumps) into a :class:`~repro.network.epochs.GraphEpochManager` shared
    by every scheduler shard, while duplicate request waves push the
    shards past their serve-stale brownout threshold so cached answers
    from *previous* epochs get served through the epoch-degraded path.
    The run proves, per engine backend:

    * **interval soundness** — every epoch-degraded table's derouting
      interval contains the fresh-epoch recompute's interval;
    * **no stale serve labelled fresh** — every served table *not*
      flagged degraded/widened is bitwise identical to a fresh oracle
      recompute on the live graph;
    * **no-op bumps are free** — an epoch bump that changes no weight
      yields bitwise-identical tables and zero cache invalidations;
    * **backend agreement** — after the full storm, both backends produce
      bitwise-identical Offering Tables on the final epoch;
    * **exact accounting** — scheduler and epoch stats reconcile exactly
      against the metrics registry.
    """

    name: str = "incident-chaos"
    description: str = "Epoch-fenced serving through a seeded incident storm"
    batches: int = 6
    batch_size: int = 2
    noop_every: int = 3
    fleet_size: int = 2
    #: Same-trip copies per wave; sized to push the shard queue past the
    #: serve-stale threshold so old-epoch cache entries actually serve.
    duplicates: int = 6
    k: int = 3
    radius_km: float = 15.0
    backends: tuple[str, ...] = ("dijkstra", "ch")
    seed: int = 0
    #: Containment slack absorbing the engine's 1e-9 distance quantisation.
    containment_slack: float = 1e-8

    def __post_init__(self) -> None:
        if self.batches < 1:
            raise ValueError("batches must be positive")
        if self.fleet_size < 1:
            raise ValueError("fleet_size must be positive")
        if self.duplicates < 1:
            raise ValueError("duplicates must be positive")
        if not self.backends:
            raise ValueError("at least one backend is required")


@dataclass(frozen=True, slots=True)
class IncidentChaosReport:
    """What happened when the live graph moved under the serving tier."""

    scenario: str
    backends: tuple[str, ...]
    epochs_applied: int
    weight_epochs: int
    noop_epochs: int
    incidents_applied: int
    served: int
    epoch_degraded_served: int
    stale_epoch_rejections: int
    containment_checks: int
    containment_violations: int
    fresh_checks: int
    fresh_divergences: int
    noop_proofs: int
    noop_divergences: int
    noop_cache_invalidations: int
    backend_divergences: int
    reconciliation: tuple[str, ...]
    accounting_failures: int
    #: Slowest post-fence CH re-customization sweep observed across the
    #: storm (seconds; None when no backend ran a sweep).
    epoch_swap_s: float | None = None

    @property
    def sound(self) -> bool:
        """100% interval soundness and zero fresh-labelled stale serves."""
        return self.containment_violations == 0 and self.fresh_divergences == 0

    @property
    def completed_cleanly(self) -> bool:
        return (
            self.sound
            and self.noop_divergences == 0
            and self.noop_cache_invalidations == 0
            and self.backend_divergences == 0
            and self.accounting_failures == 0
            and not self.reconciliation
        )

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "backends": list(self.backends),
            "epochs_applied": self.epochs_applied,
            "weight_epochs": self.weight_epochs,
            "noop_epochs": self.noop_epochs,
            "incidents_applied": self.incidents_applied,
            "served": self.served,
            "epoch_degraded_served": self.epoch_degraded_served,
            "stale_epoch_rejections": self.stale_epoch_rejections,
            "containment_checks": self.containment_checks,
            "containment_violations": self.containment_violations,
            "fresh_checks": self.fresh_checks,
            "fresh_divergences": self.fresh_divergences,
            "noop_proofs": self.noop_proofs,
            "noop_divergences": self.noop_divergences,
            "noop_cache_invalidations": self.noop_cache_invalidations,
            "backend_divergences": self.backend_divergences,
            "reconciliation": list(self.reconciliation),
            "accounting_failures": self.accounting_failures,
            "epoch_swap_s": self.epoch_swap_s,
            "sound": self.sound,
            "completed_cleanly": self.completed_cleanly,
        }


def _drive_incident_storm(workload: Workload, spec: IncidentChaosSpec, backend: str) -> dict:
    """One backend's pass through the storm; see :class:`IncidentChaosSpec`.

    Returns the raw evidence: violation counters, epoch/scheduler stats,
    and the bitwise-encoded final-epoch tables for cross-backend
    comparison.  Fresh oracle recomputes always use a *new* environment
    (same construction seed, so deterministic) — a reused oracle would
    answer from its own dynamic cache and prove nothing.
    """
    from ..core.environment import ChargingEnvironment
    from ..durability import OfferingTableCodec, canonical_dumps
    from ..network.epochs import GraphEpochManager
    from ..observability import (
        mirror_epoch_stats,
        mirror_scheduler_stats,
        reconcile,
    )
    from ..observability.recorder import Telemetry
    from ..resilience import FaultInjector, IncidentChaos
    from ..server.eis import EcoChargeInformationServer
    from ..server.scheduling import Outcome, SchedulerConfig, ShardedScheduler

    network, registry, seed = workload.network, workload.registry, spec.seed
    config = EcoChargeConfig(k=spec.k, radius_km=spec.radius_km, engine=backend)
    manager = GraphEpochManager(network)
    telemetry = Telemetry.simulated(tick_s=0.0)
    injector = FaultInjector(
        seed=spec.seed,
        incidents=IncidentChaos(
            seed=spec.seed,
            batches=spec.batches,
            batch_size=spec.batch_size,
            noop_every=spec.noop_every,
        ),
    )
    def shard_environment() -> ChargingEnvironment:
        # Live telemetry on the shard environments so CH re-customization
        # sweeps report their latency (the epoch-swap measurement);
        # deterministic mode is single-threaded, so one shared registry
        # stays single-writer.
        env = ChargingEnvironment(network, registry, seed=seed)
        env.set_telemetry(telemetry)
        return env

    scheduler = ShardedScheduler(
        shard_environment,
        SchedulerConfig(
            shards=2,
            queue_capacity=8,
            max_inflight=256,
            tenant_rate_per_s=1e6,
            tenant_burst=1e6,
            deadline_budget_s=3600.0,
            response_ttl_h=24.0,
            max_stale_h=24.0,
            serve_stale_at=0.5,
            widen_at=0.95,
            shed_refresh_at=0.99,
        ),
        config,
        clock=telemetry.clock,
        telemetry=telemetry,
        injector=injector,
        epochs=manager,
    )
    trips = list(workload.trips[: spec.fleet_size])
    trip_index = {id(trip): i for i, trip in enumerate(trips)}

    def encode(tables) -> list[str]:
        return [canonical_dumps(OfferingTableCodec.encode(t)) for t in tables]

    def fresh_rank(trip) -> tuple:
        """Fresh-truth tables on the live graph: new environment, cold
        caches, current epoch."""
        env = ChargingEnvironment(network, registry, seed=seed)
        env.set_epochs(manager)
        return tuple(EcoChargeInformationServer(env).rank_trip(trip, config).tables)

    # Fresh tables memoised per (weights version, trip): sound because the
    # weights version is exactly what the fresh truth depends on.
    fresh_memo: dict[tuple[int, int], tuple] = {}

    def fresh(index: int) -> tuple:
        key = (manager.weights_version, index)
        if key not in fresh_memo:
            fresh_memo[key] = fresh_rank(trips[index])
        return fresh_memo[key]

    containment_checks = containment_violations = 0
    fresh_checks = fresh_divergences = 0
    noop_proofs = noop_divergences = noop_cache_invalidations = 0
    served = 0
    slack = spec.containment_slack

    def check_containment(response) -> None:
        """Widened derouting must contain the fresh-epoch interval, per
        charger present in both tables (Lemma: widened ⊇ true)."""
        nonlocal containment_checks, containment_violations
        fresh_tables = {t.segment_index: t for t in fresh(trip_index[id(response.request.trip)])}
        for table in response.tables:
            baseline = fresh_tables.get(table.segment_index)
            if baseline is None:
                continue
            for entry in table.entries:
                truth = baseline.get(entry.charger_id)
                if truth is None:
                    continue
                containment_checks += 1
                widened = entry.derouting
                if not truth.derouting.within_bounds(widened.lo, widened.hi, tol=slack):
                    containment_violations += 1

    def check_fresh(response) -> None:
        """A serve not flagged widened/degraded claims to be the fresh
        truth — hold it to bitwise equality with a cold recompute."""
        nonlocal fresh_checks, fresh_divergences
        fresh_checks += 1
        if encode(response.tables) != encode(fresh(trip_index[id(response.request.trip)])):
            fresh_divergences += 1

    while True:
        batch = injector.next_incidents(network)
        if batch is None:
            break
        noop_round = len(batch) == 0
        drops_before = 0
        if noop_round:
            # Scheduled no-op bump: prove it costs nothing.  Fresh truth
            # is recomputed from scratch on both sides of the bump (the
            # memo is deliberately bypassed), and — because fencing is
            # lazy, at lookup time — the invalidation delta is measured
            # across the whole wave that serves *after* the bump.
            noop_proofs += 1
            before = [encode(fresh_rank(trip)) for trip in trips]
            drops_before = scheduler.epoch_cache_invalidations()
            transition = manager.apply(())
            after = [encode(fresh_rank(trip)) for trip in trips]
            if before != after:
                noop_divergences += 1
        else:
            transition = manager.apply(batch)
        # After a weight-changing bump the shard's dynamic cache is fenced
        # at first lookup, so the first unwidened COMPLETED serve per trip
        # is a cold compute on the live graph and must be bitwise-fresh.
        # Warm-path serves legitimately adapt from the trip cache (same
        # weights, not bitwise) and are exempt.
        fresh_eligible = set(range(len(trips))) if not transition.is_noop else set()
        for i, trip in enumerate(trips):
            for copy in range(spec.duplicates):
                scheduler.submit(tenant=f"tenant-{i}", trip=trip)
            scheduler.drain()
            for response in scheduler.drain_responses():
                if not response.outcome.is_served:
                    continue
                served += 1
                if response.epoch_degraded:
                    check_containment(response)
                elif (
                    not response.widened
                    and response.outcome is Outcome.COMPLETED
                    and i in fresh_eligible
                ):
                    check_fresh(response)
                    fresh_eligible.discard(i)
        if noop_round:
            noop_cache_invalidations += (
                scheduler.epoch_cache_invalidations() - drops_before
            )

    mirror_scheduler_stats(telemetry.registry, scheduler.stats)
    mirror_epoch_stats(telemetry.registry, manager)
    problems = reconcile(
        telemetry.registry, scheduler_stats=scheduler.stats, epochs=manager
    )
    final_tables = [encode(fresh_rank(trip)) for trip in trips]
    # Epoch-swap latency: the slowest post-fence re-customization sweep
    # any shard engine paid (CH backend; None when no sweep ran).
    swap_samples = [
        shard.environment.engine.last_recustomize_s
        for shard in scheduler.shards
        if shard.environment.engine.last_recustomize_s is not None
    ]
    return {
        "backend": backend,
        "epoch_stats": manager.stats.as_dict(),
        "served": served,
        "epoch_degraded": scheduler.stats.epoch_degraded,
        "stale_epoch_rejections": scheduler.stats.stale_epoch_rejections,
        "containment_checks": containment_checks,
        "containment_violations": containment_violations,
        "fresh_checks": fresh_checks,
        "fresh_divergences": fresh_divergences,
        "noop_proofs": noop_proofs,
        "noop_divergences": noop_divergences,
        "noop_cache_invalidations": noop_cache_invalidations,
        "reconciliation": problems,
        "accounting_ok": scheduler.accounting_ok(),
        "final_tables": final_tables,
        "epoch_swap_s": max(swap_samples) if swap_samples else None,
    }


def run_incident_chaos(
    workload: Workload, spec: IncidentChaosSpec | None = None
) -> IncidentChaosReport:
    """Run the seeded incident storm on every backend and fold the proof.

    Each backend replays the *same* storm (the incident stream is seeded
    and the network is shared read-only — every backend gets its own
    epoch manager, so factor state never leaks between passes), which is
    what makes the final-epoch bitwise cross-backend comparison
    meaningful.
    """
    spec = spec if spec is not None else IncidentChaosSpec()
    runs = [_drive_incident_storm(workload, spec, backend) for backend in spec.backends]

    backend_divergences = 0
    reference = runs[0]
    for run in runs[1:]:
        if run["final_tables"] != reference["final_tables"]:
            backend_divergences += 1
        if run["epoch_stats"] != reference["epoch_stats"]:
            backend_divergences += 1

    problems: list[str] = []
    for run in runs:
        problems.extend(f"{run['backend']}: {p}" for p in run["reconciliation"])
    epoch_stats = reference["epoch_stats"]
    return IncidentChaosReport(
        scenario=spec.name,
        backends=spec.backends,
        epochs_applied=epoch_stats["epochs"],
        weight_epochs=epoch_stats["weight_epochs"],
        noop_epochs=epoch_stats["noop_epochs"],
        incidents_applied=epoch_stats["incidents_applied"],
        served=sum(run["served"] for run in runs),
        epoch_degraded_served=sum(run["epoch_degraded"] for run in runs),
        stale_epoch_rejections=sum(run["stale_epoch_rejections"] for run in runs),
        containment_checks=sum(run["containment_checks"] for run in runs),
        containment_violations=sum(run["containment_violations"] for run in runs),
        fresh_checks=sum(run["fresh_checks"] for run in runs),
        fresh_divergences=sum(run["fresh_divergences"] for run in runs),
        noop_proofs=sum(run["noop_proofs"] for run in runs),
        noop_divergences=sum(run["noop_divergences"] for run in runs),
        noop_cache_invalidations=sum(
            run["noop_cache_invalidations"] for run in runs
        ),
        backend_divergences=backend_divergences,
        reconciliation=tuple(problems),
        accounting_failures=sum(0 if run["accounting_ok"] else 1 for run in runs),
        epoch_swap_s=max(
            (run["epoch_swap_s"] for run in runs if run["epoch_swap_s"] is not None),
            default=None,
        ),
    )
