"""The paper's three motivating scenarios, as runnable simulations.

Section I motivates renewable hoarding with: (i) electric taxis idling
between fares, (ii) parents waiting during children's activities, and
(iii) shoppers parked for an errand.  Each builder configures a
:class:`~repro.simulation.fleet.FleetSimulation` with that scenario's
fingerprint — idle-window length, battery state, time of day, and fleet
size — over any workload, so the scenarios can be compared on equal
ground.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

from ..chargers.charger import Vehicle
from ..core.ecocharge import EcoChargeConfig
from ..network.path import Trip
from ..resilience.faults import OutageWindow
from ..trajectories.datasets import Workload
from .fleet import FleetReport, FleetSimulation, SimulationConfig


@dataclass(frozen=True, slots=True)
class Scenario:
    """A named hoarding scenario: how vehicles behave and when."""

    name: str
    description: str
    idle_duration_h: float
    departure_h: float
    initial_soc: float
    fleet_size: int
    charge_below_soc: float

    def build(self, workload: Workload, ecocharge: EcoChargeConfig | None = None) -> FleetSimulation:
        """A fleet simulation realising this scenario on ``workload``.

        Trips are re-timed to the scenario's departure window (spread a
        few minutes apart) and the fleet gets scenario-specific batteries.
        """
        ecocharge = ecocharge if ecocharge is not None else EcoChargeConfig(
            k=3, radius_km=20.0
        )
        config = SimulationConfig(
            idle_duration_h=self.idle_duration_h,
            charge_below_soc=self.charge_below_soc,
            ecocharge=ecocharge,
        )
        base_trips = workload.trips[: self.fleet_size]
        trips = [
            Trip(trip.network, trip.node_ids, self.departure_h + 0.05 * i)
            for i, trip in enumerate(base_trips)
        ]
        vehicles = [
            Vehicle(vehicle_id=i, state_of_charge=self.initial_soc)
            for i in range(len(trips))
        ]
        return FleetSimulation(workload.environment, trips, config, vehicles)


#: Scenario (i): taxis idle ~45 min between fare clusters, keep batteries
#: topped up opportunistically all day.
TAXI_IDLE = Scenario(
    name="taxi-idle",
    description="Electric taxis hoarding between fares (paper scenario i)",
    idle_duration_h=0.75,
    departure_h=11.0,
    initial_soc=0.45,
    fleet_size=6,
    charge_below_soc=0.6,
)

#: Scenario (ii): the after-school wait is a fixed ~1.5 h window in the
#: afternoon; batteries are half full after the day's errands.
WAITING_PARENT = Scenario(
    name="waiting-parent",
    description="Parents waiting during after-school activities (scenario ii)",
    idle_duration_h=1.5,
    departure_h=15.0,
    initial_soc=0.5,
    fleet_size=4,
    charge_below_soc=0.6,
)

#: Scenario (iii): a ~1 h shopping errand around midday — the solar peak,
#: which is exactly why hoarding there is attractive.
SHOPPING_TRIP = Scenario(
    name="shopping-trip",
    description="Charging during a midday shopping errand (scenario iii)",
    idle_duration_h=1.0,
    departure_h=12.5,
    initial_soc=0.45,
    fleet_size=4,
    charge_below_soc=0.55,
)

SCENARIOS: dict[str, Scenario] = {
    s.name: s for s in (TAXI_IDLE, WAITING_PARENT, SHOPPING_TRIP)
}


def run_scenario(
    scenario: Scenario,
    workload: Workload,
    ecocharge: EcoChargeConfig | None = None,
) -> FleetReport:
    """Build and run one scenario end to end."""
    return scenario.build(workload, ecocharge).run()


def scenario_comparison(
    workload: Workload,
    scenarios: dict[str, Scenario] | None = None,
) -> dict[str, FleetReport]:
    """Run every scenario on the same workload for side-by-side stats."""
    scenarios = scenarios if scenarios is not None else SCENARIOS
    return {name: run_scenario(s, workload) for name, s in scenarios.items()}


# ---------------------------------------------------------------------------
# Chaos scenario: the serving stack under provider faults
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ChaosSpec:
    """A fault-injection scenario for the EIS serving stack.

    ``error_rate`` is the per-call transient failure probability of every
    upstream endpoint; the weather endpoint additionally suffers a hard
    outage window (forecasts are the component most exposed to provider
    downtime in practice).  The point of the scenario is the paper's
    serving story under stress: every trip must still receive a complete
    CkNN-EC answer — with honestly wider intervals — and zero unhandled
    exceptions.
    """

    name: str = "provider-chaos"
    description: str = "EIS serving a fleet through faulty providers"
    error_rate: float = 0.25
    latency_spike_rate: float = 0.05
    weather_outage: "OutageWindow | None" = None
    seed: int = 0
    fleet_size: int = 3
    k: int = 3
    radius_km: float = 15.0


@dataclass(frozen=True, slots=True)
class ChaosReport:
    """What happened when the fleet was served through faults."""

    scenario: str
    trips_ranked: int
    tables_produced: int
    failed_segments: int
    snapshots_served: int
    degraded_snapshots: int
    faults_injected: int
    degraded_served: int
    breaker_openings: dict[str, int]
    accounting_ok: bool

    @property
    def completed_cleanly(self) -> bool:
        """Every segment of every trip got an Offering Table."""
        return self.failed_segments == 0


def run_chaos(workload: Workload, spec: ChaosSpec | None = None) -> ChaosReport:
    """Serve a fleet centrally (Mode 2) while providers misbehave.

    Each trip gets a full :func:`~repro.core.ranking.run_over_trip` pass
    plus one region snapshot per produced table, so all four endpoints
    (weather, busy, traffic, catalog) see traffic under the configured
    fault regime.  The report reconciles health counters against
    ``ApiUsage`` — every upstream call is accounted for.
    """
    from ..resilience import FaultInjector, FaultProfile
    from ..server.eis import EcoChargeInformationServer

    spec = spec if spec is not None else ChaosSpec()
    profile = FaultProfile(
        error_rate=spec.error_rate, latency_spike_rate=spec.latency_spike_rate
    )
    profiles = {}
    if spec.weather_outage is not None:
        profiles["weather"] = replace(profile, outages=(spec.weather_outage,))
    injector = FaultInjector(seed=spec.seed, profiles=profiles, default=profile)
    server = EcoChargeInformationServer(workload.environment, injector=injector)
    config = EcoChargeConfig(k=spec.k, radius_km=spec.radius_km)

    trips = workload.trips[: spec.fleet_size]
    tables = 0
    failed = 0
    snapshots = 0
    degraded_snapshots = 0
    for trip in trips:
        run = server.rank_trip(trip, config)
        tables += len(run.tables)
        failed += len(run.failed_segments)
        for table in run.tables:
            snapshot = server.region_snapshot(
                table.origin,
                spec.radius_km,
                eta_h=table.generated_at_h,
                now_h=trip.departure_time_h,
            )
            snapshots += 1
            if snapshot.is_degraded:
                degraded_snapshots += 1
    return ChaosReport(
        scenario=spec.name,
        trips_ranked=len(trips),
        tables_produced=tables,
        failed_segments=failed,
        snapshots_served=snapshots,
        degraded_snapshots=degraded_snapshots,
        faults_injected=server.gateway.injector.total_injected,
        degraded_served=server.health.total_degraded,
        breaker_openings={
            name: endpoint.breaker.times_opened
            for name, endpoint in sorted(server.gateway.endpoints.items())
        },
        accounting_ok=server.gateway.accounting_ok(),
    )


# ---------------------------------------------------------------------------
# Crash chaos: the durability tier under deterministic process death
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CrashChaosSpec:
    """A crash-injection scenario for durable continuous queries.

    For every trip and every named crash point, a durable session is
    opened and driven until the planned :class:`SessionCrash` fires; a
    *fresh* server (simulating the restarted process) then resumes the
    session from its snapshot + journal tail and finishes the trip.  The
    scenario's invariant is the durability tier's core guarantee: the
    recovered run's Offering Tables must be **bitwise identical** to an
    uninterrupted baseline, torn journal lines must be detected and
    discarded (never replayed), and journal/cache accounting must
    reconcile after recovery.
    """

    name: str = "crash-chaos"
    description: str = "Durable sessions surviving deterministic crashes"
    crash_points: tuple[str, ...] = (
        "segment-start",
        "mid-segment",
        "mid-journal-append",
        "post-snapshot",
    )
    at_occurrence: int = 2
    fleet_size: int = 2
    k: int = 3
    radius_km: float = 15.0
    snapshot_every: int = 2
    engine: str | None = None
    seed: int = 0


@dataclass(frozen=True, slots=True)
class CrashChaosReport:
    """What happened when durable sessions were killed and revived."""

    scenario: str
    trips: int
    sessions_crashed: int
    sessions_recovered: int
    crashes_not_reached: int
    snapshots_loaded: int
    records_replayed: int
    torn_lines_discarded: int
    replay_divergences: int
    accounting_failures: int

    @property
    def replay_identical(self) -> bool:
        """Every recovered run matched its uninterrupted baseline bitwise."""
        return self.replay_divergences == 0

    @property
    def completed_cleanly(self) -> bool:
        return self.replay_identical and self.accounting_failures == 0


def run_crash_chaos(
    workload: Workload,
    spec: CrashChaosSpec | None = None,
    root: "Path | str | None" = None,
) -> CrashChaosReport:
    """Kill durable sessions at every planned crash point; verify replay.

    Bitwise equality is checked on the *encoded* tables (canonical JSON
    with hex floats), so even a sign-of-zero difference between the
    recovered and the uninterrupted run counts as divergence.
    """
    import tempfile

    from ..core.ecocharge import EcoChargeConfig
    from ..durability import DurabilityConfig, OfferingTableCodec, canonical_dumps
    from ..resilience import CrashPoint, FaultInjector, SessionCrash
    from ..server.eis import EcoChargeInformationServer
    from ..server.sessions import DurableSessionService

    spec = spec if spec is not None else CrashChaosSpec()
    root = Path(root) if root is not None else Path(tempfile.mkdtemp(prefix="crash-chaos-"))
    config = EcoChargeConfig(k=spec.k, radius_km=spec.radius_km, engine=spec.engine)
    durability = DurabilityConfig(snapshot_every=spec.snapshot_every, fsync=False)
    trips = workload.trips[: spec.fleet_size]

    def encoded_tables(run) -> list[str]:
        return [canonical_dumps(OfferingTableCodec.encode(t)) for t in run.tables]

    # Uninterrupted baselines, one fault-free server per trip so cache
    # state never leaks between runs.
    baselines = []
    for trip in trips:
        server = EcoChargeInformationServer(workload.environment)
        baselines.append(encoded_tables(server.rank_trip(trip, config)))

    crashed = recovered = not_reached = 0
    snapshots_loaded = records_replayed = torn_discarded = 0
    divergences = accounting_failures = 0
    for trip_index, trip in enumerate(trips):
        for point in spec.crash_points:
            session_id = f"trip{trip_index}-{point}"
            injector = FaultInjector(
                seed=spec.seed,
                crash_plan=[CrashPoint(point, at_occurrence=spec.at_occurrence)],
            )
            server = EcoChargeInformationServer(workload.environment, injector=injector)
            service = DurableSessionService(server, root, durability)
            session = service.open(session_id, trip, config)
            try:
                session.run()
            except SessionCrash:
                crashed += 1
            else:
                # The trip was too short for this occurrence; still a
                # valid durable run, but nothing to recover.
                not_reached += 1
                service.close(session)
                continue
            # The restarted process: fresh server, no crash plan.
            server2 = EcoChargeInformationServer(workload.environment)
            service2 = DurableSessionService(server2, root, durability)
            resumed = service2.resume(session_id)
            info = resumed.recovery
            run = resumed.run()
            recovered += 1
            snapshots_loaded += int(info.snapshot_loaded)
            records_replayed += info.journal_records_replayed
            torn_discarded += info.torn_lines_discarded
            if encoded_tables(run) != baselines[trip_index]:
                divergences += 1
            if not (info.accounting_ok and resumed.accounting_ok()):
                accounting_failures += 1
            service2.close(resumed)
    return CrashChaosReport(
        scenario=spec.name,
        trips=len(trips),
        sessions_crashed=crashed,
        sessions_recovered=recovered,
        crashes_not_reached=not_reached,
        snapshots_loaded=snapshots_loaded,
        records_replayed=records_replayed,
        torn_lines_discarded=torn_discarded,
        replay_divergences=divergences,
        accounting_failures=accounting_failures,
    )
