"""Trace-driven fleet simulator.

Drives a set of vehicles through their scheduled trips in fixed time
steps, with the full EcoCharge loop in each vehicle: periodic Offering
Table regeneration (the paper's "continuously recomputes the path using a
~3-5 minutes window"), deroute decisions when the battery needs clean
energy, charging sessions against ground-truth solar, and trip resumption
— emitting a typed event log and an aggregate report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..chargers.charger import Charger, Vehicle
from ..chargers.session import ChargingSessionSimulator
from ..core.ecocharge import EcoChargeConfig, EcoChargeRanker
from ..core.environment import ChargingEnvironment
from ..network.graph import EdgeWeight
from ..network.path import Trip
from ..network.shortest_path import NoPathError, dijkstra
from .events import EventKind, EventLog
from .occupancy import ChargerOccupancy


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Fleet-simulation knobs.

    ``replan_interval_h`` is the paper's recomputation window (default
    4 minutes, inside the quoted 3-5 range); a vehicle deroutes when its
    state of charge falls below ``charge_below_soc`` and the best offer's
    pessimistic score clears ``min_offer_score``.
    """

    step_h: float = 1.0 / 60.0
    replan_interval_h: float = 4.0 / 60.0
    charge_below_soc: float = 0.5
    min_offer_score: float = 0.3
    idle_duration_h: float = 1.0
    max_sim_hours: float = 12.0
    ecocharge: EcoChargeConfig = field(default_factory=EcoChargeConfig)

    def __post_init__(self) -> None:
        if self.step_h <= 0 or self.replan_interval_h <= 0:
            raise ValueError("time steps must be positive")
        if not 0.0 <= self.charge_below_soc <= 1.0:
            raise ValueError("charge_below_soc must be in [0, 1]")
        if self.idle_duration_h <= 0:
            raise ValueError("idle duration must be positive")
        if self.max_sim_hours <= 0:
            raise ValueError("max_sim_hours must be positive")


class VehiclePhase(enum.Enum):
    """Lifecycle state of one simulated vehicle."""

    WAITING = "waiting"  # before departure
    DRIVING = "driving"
    DEROUTING = "derouting"
    QUEUED = "queued"  # at a full charger, waiting for a plug
    CHARGING = "charging"
    RETURNING = "returning"
    ARRIVED = "arrived"
    STRANDED = "stranded"


@dataclass
class _VehicleState:
    vehicle: Vehicle
    trip: Trip
    ranker: EcoChargeRanker
    phase: VehiclePhase = VehiclePhase.WAITING
    node_path: tuple[int, ...] = ()
    path_index: int = 0
    edge_progress_km: float = 0.0
    soc_kwh: float = 0.0
    next_replan_h: float = 0.0
    charge_until_h: float = 0.0
    target_charger: Charger | None = None
    clean_kwh: float = 0.0
    drive_kwh: float = 0.0
    has_charged: bool = False

    @property
    def current_node(self) -> int:
        return self.node_path[self.path_index]

    @property
    def at_path_end(self) -> bool:
        return self.path_index >= len(self.node_path) - 1


@dataclass(frozen=True, slots=True)
class VehicleOutcome:
    vehicle_id: int
    phase: VehiclePhase
    final_soc: float
    clean_kwh: float
    drive_kwh: float
    offers_generated: int


@dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of one simulation run."""

    outcomes: tuple[VehicleOutcome, ...]
    events: EventLog
    simulated_until_h: float

    @property
    def arrived(self) -> int:
        return sum(1 for o in self.outcomes if o.phase is VehiclePhase.ARRIVED)

    @property
    def total_clean_kwh(self) -> float:
        return sum(o.clean_kwh for o in self.outcomes)

    @property
    def total_drive_kwh(self) -> float:
        return sum(o.drive_kwh for o in self.outcomes)


class FleetSimulation:
    """Step-based simulation of EcoCharge-equipped vehicles."""

    def __init__(
        self,
        environment: ChargingEnvironment,
        trips: list[Trip],
        config: SimulationConfig | None = None,
        vehicles: list[Vehicle] | None = None,
    ):
        if not trips:
            raise ValueError("simulation needs at least one trip")
        self._env = environment
        self.config = config if config is not None else SimulationConfig()
        if vehicles is None:
            vehicles = [
                Vehicle(vehicle_id=i, state_of_charge=0.45) for i in range(len(trips))
            ]
        if len(vehicles) != len(trips):
            raise ValueError("one vehicle per trip required")
        self.events = EventLog()
        self.occupancy = ChargerOccupancy()
        self._session = ChargingSessionSimulator(environment.sustainable)
        self._states = [
            _VehicleState(
                vehicle=vehicle,
                trip=trip,
                ranker=EcoChargeRanker(environment, self.config.ecocharge),
                node_path=trip.node_ids,
                soc_kwh=vehicle.battery_kwh * vehicle.state_of_charge,
                next_replan_h=trip.departure_time_h,
            )
            for vehicle, trip in zip(vehicles, trips)
        ]

    # -- main loop -----------------------------------------------------------

    def run(self) -> FleetReport:
        """Advance all vehicles to completion (or the simulation horizon)."""
        start = min(s.trip.departure_time_h for s in self._states)
        clock = start
        horizon = start + self.config.max_sim_hours
        while clock < horizon and any(
            s.phase not in (VehiclePhase.ARRIVED, VehiclePhase.STRANDED)
            for s in self._states
        ):
            for state in self._states:
                self._step_vehicle(state, clock)
            clock += self.config.step_h
        outcomes = tuple(
            VehicleOutcome(
                vehicle_id=s.vehicle.vehicle_id,
                phase=s.phase,
                final_soc=s.soc_kwh / s.vehicle.battery_kwh,
                clean_kwh=s.clean_kwh,
                drive_kwh=s.drive_kwh,
                offers_generated=len(
                    [e for e in self.events.for_vehicle(s.vehicle.vehicle_id)
                     if e.kind is EventKind.OFFER_GENERATED]
                ),
            )
            for s in self._states
        )
        return FleetReport(outcomes=outcomes, events=self.events, simulated_until_h=clock)

    # -- per-vehicle transitions ----------------------------------------------

    def _step_vehicle(self, state: _VehicleState, clock: float) -> None:
        if state.phase is VehiclePhase.WAITING:
            if clock >= state.trip.departure_time_h:
                state.phase = VehiclePhase.DRIVING
                self.events.record(clock, state.vehicle.vehicle_id, EventKind.DEPARTED)
            return
        if state.phase in (VehiclePhase.ARRIVED, VehiclePhase.STRANDED):
            return
        if state.phase is VehiclePhase.CHARGING:
            if clock >= state.charge_until_h:
                self._finish_charging(state, clock)
            return
        if state.phase is VehiclePhase.QUEUED:
            self._try_start_charging(state, clock)
            return
        # DRIVING / DEROUTING / RETURNING all advance along the node path.
        if state.phase is VehiclePhase.DRIVING and clock >= state.next_replan_h:
            self._replan(state, clock)
        self._advance(state, clock)

    def _advance(self, state: _VehicleState, clock: float) -> None:
        """Move along the current node path for one time step."""
        remaining_h = self.config.step_h
        network = self._env.network
        while remaining_h > 1e-12 and not state.at_path_end:
            edge = network.edge(
                state.node_path[state.path_index], state.node_path[state.path_index + 1]
            )
            speed = edge.speed_kmh / self._env.traffic.multiplier(edge, clock)
            left_km = edge.length_km - state.edge_progress_km
            step_km = min(left_km, speed * remaining_h)
            energy = step_km * state.vehicle.consumption_kwh_per_km
            if energy > state.soc_kwh:
                state.phase = VehiclePhase.STRANDED
                self.events.record(
                    clock, state.vehicle.vehicle_id, EventKind.BATTERY_EMPTY,
                    node=state.current_node,
                )
                return
            state.soc_kwh -= energy
            state.drive_kwh += energy
            state.edge_progress_km += step_km
            remaining_h -= step_km / speed if speed > 0 else remaining_h
            if state.edge_progress_km >= edge.length_km - 1e-9:
                state.path_index += 1
                state.edge_progress_km = 0.0
        if state.at_path_end:
            self._reached_path_end(state, clock)

    def _reached_path_end(self, state: _VehicleState, clock: float) -> None:
        if state.phase is VehiclePhase.DEROUTING:
            self._try_start_charging(state, clock, arriving=True)
            return
        # DRIVING or RETURNING reaching the path end means the destination.
        if state.phase is not VehiclePhase.ARRIVED:
            state.phase = VehiclePhase.ARRIVED
            self.events.record(clock, state.vehicle.vehicle_id, EventKind.ARRIVED)

    def _try_start_charging(
        self, state: _VehicleState, clock: float, arriving: bool = False
    ) -> None:
        """Plug in if a plug is free; otherwise queue at the site.

        Queued vehicles retry every step — availability forecasts reduce
        how often this happens, but physics decides when it does.
        """
        charger = state.target_charger
        assert charger is not None
        if self.occupancy.try_plug_in(charger, state.vehicle.vehicle_id):
            state.phase = VehiclePhase.CHARGING
            state.charge_until_h = clock + self.config.idle_duration_h
            self.events.record(
                clock, state.vehicle.vehicle_id, EventKind.CHARGING_STARTED,
                charger_id=charger.charger_id,
            )
            return
        if arriving or state.phase is not VehiclePhase.QUEUED:
            state.phase = VehiclePhase.QUEUED
            self.events.record(
                clock, state.vehicle.vehicle_id, EventKind.WAITING_FOR_PLUG,
                charger_id=charger.charger_id,
                occupancy=self.occupancy.occupancy(charger.charger_id),
            )

    def _replan(self, state: _VehicleState, clock: float) -> None:
        """Periodic Offering-Table regeneration and deroute decision."""
        state.next_replan_h = clock + self.config.replan_interval_h
        remaining = state.node_path[state.path_index:]
        if len(remaining) < 2:
            return
        trip_now = Trip(self._env.network, remaining, departure_time_h=clock)
        segment = trip_now.segments(self.config.ecocharge.segment_km)[0]
        table = state.ranker.rank_segment(trip_now, segment, eta_h=clock, now_h=clock)
        self.events.record(
            clock, state.vehicle.vehicle_id, EventKind.OFFER_GENERATED,
            segment=segment.index, size=len(table), adapted=table.is_adapted,
        )
        soc = state.soc_kwh / state.vehicle.battery_kwh
        best = table.best
        should_charge = (
            not state.has_charged
            and soc < self.config.charge_below_soc
            and best is not None
            and best.score.pessimistic >= self.config.min_offer_score
        )
        if should_charge:
            self._start_deroute(state, best.charger, clock)

    def _start_deroute(self, state: _VehicleState, charger: Charger, clock: float) -> None:
        try:
            to_charger = dijkstra(
                self._env.network, state.current_node, charger.node_id,
                EdgeWeight.DISTANCE_KM,
            )
        except NoPathError:
            return  # unreachable offer; keep driving
        state.phase = VehiclePhase.DEROUTING
        state.target_charger = charger
        state.node_path = to_charger.nodes
        state.path_index = 0
        state.edge_progress_km = 0.0
        self.events.record(
            clock, state.vehicle.vehicle_id, EventKind.DEROUTE_STARTED,
            charger_id=charger.charger_id, distance_km=to_charger.cost,
        )

    def _finish_charging(self, state: _VehicleState, clock: float) -> None:
        charger = state.target_charger
        assert charger is not None
        self.occupancy.unplug(charger.charger_id, state.vehicle.vehicle_id)
        vehicle = state.vehicle
        # Reconstruct a vehicle reflecting the current SoC for the session.
        from dataclasses import replace

        current = replace(
            vehicle, state_of_charge=min(1.0, state.soc_kwh / vehicle.battery_kwh)
        )
        result = self._session.simulate(
            charger, current, start_h=state.charge_until_h - self.config.idle_duration_h,
            duration_h=self.config.idle_duration_h,
        )
        state.soc_kwh = min(vehicle.battery_kwh, state.soc_kwh + result.energy_kwh)
        state.clean_kwh += result.energy_kwh
        state.has_charged = True
        self.events.record(
            clock, vehicle.vehicle_id, EventKind.CHARGING_FINISHED,
            charger_id=charger.charger_id, energy_kwh=result.energy_kwh,
        )
        # Resume: route from the charger to the original destination.
        try:
            back = dijkstra(
                self._env.network, charger.node_id, state.trip.destination,
                EdgeWeight.DISTANCE_KM,
            )
        except NoPathError:
            state.phase = VehiclePhase.STRANDED
            return
        state.phase = VehiclePhase.RETURNING
        state.node_path = back.nodes
        state.path_index = 0
        state.edge_progress_km = 0.0
        state.target_charger = None
        if len(back.nodes) < 2:
            self._reached_path_end(state, clock)
            return
        self.events.record(
            clock, vehicle.vehicle_id, EventKind.RESUMED_TRIP,
            distance_km=back.cost,
        )
