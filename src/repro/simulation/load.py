"""Load generator: drive the sharded scheduler with a synthetic tenant mix.

Feeds a :class:`~repro.server.scheduling.ShardedScheduler` a seeded
arrival process over real fleet trips and reports what came back —
latency percentiles, throughput, shed/brownout composition, and an
exact reconciliation of the scheduler's accounting against the metrics
registry.

Two modes, matching the scheduler's:

* :func:`run_load` — deterministic.  The scheduler runs on a
  ``SimulatedClock``; arrivals are exponential inter-arrival gaps whose
  rate is scaled by the fault injector's ``burst_factor`` (so an
  :class:`~repro.resilience.OverloadChaos` burst window compresses
  arrivals), and service is a fixed-cadence tick that executes one
  request per shard — when the burst outruns the service cadence the
  queues fill, brownout engages, and the run replays identically for a
  given seed.
* :func:`run_load_threaded` — wall-clock.  Workers are real threads;
  arrivals are submitted back-to-back and the report measures actual
  contended throughput (the shards=1 vs shards=N scaling headline).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..observability import mirror_scheduler_stats, reconcile
from ..observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    histogram_quantile,
)
from ..server.scheduling import Outcome, Priority, RankResponse, ShardedScheduler

if TYPE_CHECKING:
    from ..network.path import Trip


@dataclass(frozen=True, slots=True)
class LoadProfile:
    """Shape of one synthetic load run (all randomness is seeded)."""

    #: Total requests submitted.
    requests: int = 64
    #: Base arrival rate; the injector's burst window multiplies it.
    arrival_rate_per_s: float = 8.0
    #: Deterministic-mode service cadence: every ``service_interval_s``
    #: of simulated time, each shard executes one queued request.
    service_interval_s: float = 0.15
    #: Distinct tenants (round-robined through the token buckets).
    tenants: int = 4
    #: Fraction of arrivals submitted as REFRESH priority.
    refresh_fraction: float = 0.4
    #: Fraction submitted as BACKGROUND (the rest are INTERACTIVE).
    background_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be positive")
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival_rate_per_s must be positive")
        if self.service_interval_s <= 0:
            raise ValueError("service_interval_s must be positive")
        if self.tenants < 1:
            raise ValueError("tenants must be positive")
        if not 0.0 <= self.refresh_fraction + self.background_fraction <= 1.0:
            raise ValueError("priority fractions must sum to at most 1")


@dataclass(frozen=True)
class LoadReport:
    """Everything a load run measured, ready for the experiment tables."""

    requests: int
    elapsed_s: float
    outcomes: dict[str, int]
    p50_latency_s: float
    p99_latency_s: float
    served_per_s: float
    widened: int
    peak_depths: tuple[int, ...]
    peak_inflight: int
    overload_events: dict[str, int]
    accounting_exact: bool
    reconciliation: tuple[str, ...]
    #: Every resolved response, in resolution order — for invariant
    #: assertions (deadline honesty, interval soundness); deliberately
    #: excluded from :meth:`as_dict` so reports stay JSON-sized.
    responses: tuple[RankResponse, ...] = ()

    @property
    def served(self) -> int:
        return self.outcomes.get("completed", 0) + self.outcomes.get("stale", 0)

    @property
    def shed(self) -> int:
        return sum(
            count
            for name, count in self.outcomes.items()
            if name.startswith("shed-") or name.startswith("rejected-")
        )

    def as_dict(self) -> dict:
        """JSON-ready projection (omits the raw response objects)."""
        return {
            "requests": self.requests,
            "elapsed_s": round(self.elapsed_s, 6),
            "outcomes": dict(sorted(self.outcomes.items())),
            "served": self.served,
            "shed": self.shed,
            "p50_latency_s": round(self.p50_latency_s, 6),
            "p99_latency_s": round(self.p99_latency_s, 6),
            "served_per_s": round(self.served_per_s, 3),
            "widened": self.widened,
            "peak_depths": list(self.peak_depths),
            "peak_inflight": self.peak_inflight,
            "overload_events": dict(sorted(self.overload_events.items())),
            "accounting_exact": self.accounting_exact,
            "reconciliation": list(self.reconciliation),
        }


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic; no interpolation).

    The exact-rank reference the bucket-interpolated
    :func:`repro.observability.histogram_quantile` is property-tested
    against; load reports now flow through the histogram path (one
    percentile implementation serving-wide), while this stays the
    raw-sample oracle for tests and ad-hoc analysis.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _latency_quantiles(served_latencies: Sequence[float]) -> tuple[float, float]:
    """(p50, p99) of served latencies via the shared histogram-quantile
    path — the same math an operator's dashboard would run over the
    ``ecocharge_scheduler_latency_seconds`` buckets."""
    histogram = Histogram(DEFAULT_LATENCY_BUCKETS)
    for latency_s in served_latencies:
        histogram.observe(latency_s)
    cumulative = histogram.cumulative()
    return (
        histogram_quantile(histogram.bounds, cumulative, 0.5),
        histogram_quantile(histogram.bounds, cumulative, 0.99),
    )


def _priority_for(rng: random.Random, profile: LoadProfile) -> Priority:
    draw = rng.random()
    if draw < profile.background_fraction:
        return Priority.BACKGROUND
    if draw < profile.background_fraction + profile.refresh_fraction:
        return Priority.REFRESH
    return Priority.INTERACTIVE


def _submit_one(
    scheduler: ShardedScheduler,
    trips: Sequence["Trip"],
    rng: random.Random,
    profile: LoadProfile,
) -> None:
    scheduler.submit(
        tenant=f"tenant-{rng.randrange(profile.tenants)}",
        trip=trips[rng.randrange(len(trips))],
        priority=_priority_for(rng, profile),
    )


def run_load(
    scheduler: ShardedScheduler,
    trips: Sequence["Trip"],
    profile: LoadProfile | None = None,
) -> LoadReport:
    """Deterministic load run on the scheduler's ``SimulatedClock``.

    The injector's burst window divides the inter-arrival gaps, so a
    ``burst_multiplier`` of 4 really does deliver 4x the arrivals per
    service tick — the overload the chaos tests assert the tier
    survives.  After the last arrival the service tick keeps running
    (simulated time keeps passing, so queued-too-long requests still
    expire honestly) until every queue is empty.
    """
    profile = profile if profile is not None else LoadProfile()
    if not trips:
        raise ValueError("load generation needs at least one trip")
    clock = scheduler.clock
    advance = getattr(clock, "advance", None)
    if advance is None:
        raise ValueError(
            "run_load needs an advanceable (simulated) clock; "
            "use run_load_threaded for wall-clock runs"
        )
    rng = random.Random(profile.seed)
    injector = scheduler.injector
    start_s = clock.monotonic()
    next_service_s = start_s + profile.service_interval_s

    def service_until(now_s: float) -> None:
        nonlocal next_service_s
        while next_service_s <= now_s:
            for shard_id in range(len(scheduler.shards)):
                scheduler.run_one(shard_id)
            next_service_s += profile.service_interval_s

    for _ in range(profile.requests):
        now_s = clock.monotonic()
        rate = profile.arrival_rate_per_s
        if injector is not None:
            rate *= injector.burst_factor(now_s - start_s)
        gap_s = rng.expovariate(rate)
        advance(gap_s)
        service_until(clock.monotonic())
        _submit_one(scheduler, trips, rng, profile)
    # Tail drain: keep the service cadence (and simulated time) honest
    # until every queue is empty.
    while scheduler.pending:
        advance(profile.service_interval_s)
        service_until(clock.monotonic())
    elapsed_s = clock.monotonic() - start_s
    return _report(scheduler, scheduler.drain_responses(), elapsed_s)


def run_load_threaded(
    scheduler: ShardedScheduler,
    trips: Sequence["Trip"],
    profile: LoadProfile | None = None,
) -> LoadReport:
    """Wall-clock load run with one real worker thread per shard.

    Arrivals are submitted back-to-back (the admission gate, not the
    generator, decides what the tier accepts); ``stop(drain=True)``
    guarantees every admitted request resolves before the report is
    taken.  The burst/slow/stuck chaos hooks still apply — only the
    simulated-time delays become modelling no-ops on a system clock.
    """
    profile = profile if profile is not None else LoadProfile()
    if not trips:
        raise ValueError("load generation needs at least one trip")
    rng = random.Random(profile.seed)
    clock = scheduler.clock
    start_s = clock.monotonic()
    scheduler.start()
    try:
        for _ in range(profile.requests):
            _submit_one(scheduler, trips, rng, profile)
    finally:
        scheduler.stop(drain=True)
    elapsed_s = clock.monotonic() - start_s
    return _report(scheduler, scheduler.drain_responses(), elapsed_s)


def _report(
    scheduler: ShardedScheduler,
    responses: list[RankResponse],
    elapsed_s: float,
) -> LoadReport:
    outcomes: dict[str, int] = {}
    served_latencies: list[float] = []
    for response in responses:
        outcomes[response.outcome.value] = outcomes.get(response.outcome.value, 0) + 1
        if response.outcome.is_served:
            served_latencies.append(response.latency_s)
    served = sum(1 for r in responses if r.outcome.is_served)
    registry = scheduler.telemetry.registry
    mirror_scheduler_stats(registry, scheduler.stats)
    problems = list(reconcile(registry, scheduler_stats=scheduler.stats))
    # The native per-outcome counter must agree with the exact stats too
    # (when telemetry is live): one increment per resolution, no drift.
    if scheduler.telemetry.enabled:
        for outcome in Outcome:
            native = registry.sample_value(
                "ecocharge_scheduler_requests_total", {"outcome": outcome.value}
            )
            expected = float(outcomes.get(outcome.value, 0))
            if (native or 0.0) != expected:
                problems.append(
                    f"ecocharge_scheduler_requests_total{{outcome={outcome.value}}}: "
                    f"native={native} responses={expected}"
                )
    p50_latency_s, p99_latency_s = _latency_quantiles(served_latencies)
    return LoadReport(
        requests=scheduler.stats.submitted,
        elapsed_s=elapsed_s,
        outcomes=outcomes,
        p50_latency_s=p50_latency_s,
        p99_latency_s=p99_latency_s,
        served_per_s=served / elapsed_s if elapsed_s > 0 else 0.0,
        widened=scheduler.stats.widened,
        peak_depths=scheduler.peak_depths(),
        peak_inflight=scheduler.admission.limiter.peak_inflight,
        overload_events=dict(scheduler.injector.overload_events)
        if scheduler.injector is not None
        else {},
        accounting_exact=scheduler.accounting_ok(),
        reconciliation=tuple(problems),
        responses=tuple(responses),
    )
