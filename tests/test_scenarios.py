"""Scenario-builder tests (the paper's three motivating settings)."""

import pytest

from repro.core.ecocharge import EcoChargeConfig
from repro.simulation.events import EventKind
from repro.simulation.fleet import VehiclePhase
from repro.simulation.scenarios import (
    SCENARIOS,
    SHOPPING_TRIP,
    TAXI_IDLE,
    WAITING_PARENT,
    IncidentChaosSpec,
    run_incident_chaos,
    run_scenario,
    scenario_comparison,
)
from repro.trajectories.datasets import load_workload


@pytest.fixture(scope="module")
def workload():
    return load_workload("oldenburg", scale=0.25)


class TestScenarioDefinitions:
    def test_all_three_present(self):
        assert set(SCENARIOS) == {"taxi-idle", "waiting-parent", "shopping-trip"}

    def test_scenarios_differ_in_idle_window(self):
        windows = {s.idle_duration_h for s in SCENARIOS.values()}
        assert len(windows) == 3

    def test_daytime_departures(self):
        """Hoarding scenarios happen in daylight (solar must be live)."""
        for scenario in SCENARIOS.values():
            assert 6.0 < scenario.departure_h % 24 < 20.0


class TestScenarioRuns:
    def test_taxi_idle_runs(self, workload):
        report = run_scenario(
            TAXI_IDLE, workload, EcoChargeConfig(k=3, radius_km=15.0)
        )
        assert len(report.outcomes) == TAXI_IDLE.fleet_size
        assert report.arrived >= TAXI_IDLE.fleet_size - 1

    def test_low_soc_fleets_charge(self, workload):
        report = run_scenario(
            SHOPPING_TRIP, workload, EcoChargeConfig(k=3, radius_km=15.0)
        )
        assert report.events.count(EventKind.CHARGING_FINISHED) >= 1
        assert report.total_clean_kwh > 0.0

    def test_departure_times_match_scenario(self, workload):
        sim = WAITING_PARENT.build(workload, EcoChargeConfig(k=3, radius_km=15.0))
        report = sim.run()
        departures = [e.time_h for e in report.events.of_kind(EventKind.DEPARTED)]
        assert min(departures) >= WAITING_PARENT.departure_h - 1e-6
        assert max(departures) <= WAITING_PARENT.departure_h + 0.05 * (
            WAITING_PARENT.fleet_size
        )

    def test_fleet_size_respected(self, workload):
        sim = WAITING_PARENT.build(workload)
        assert len(sim._states) == min(
            WAITING_PARENT.fleet_size, len(workload.trips)
        )

    def test_comparison_runs_all(self, workload):
        reports = scenario_comparison(workload)
        assert set(reports) == set(SCENARIOS)
        for report in reports.values():
            assert all(
                o.phase in (VehiclePhase.ARRIVED, VehiclePhase.STRANDED)
                for o in report.outcomes
            )

    def test_longer_idle_hoards_no_less(self, workload):
        """Same fleet and time of day, longer idle window -> at least as
        much clean energy (sessions can only extend)."""
        from dataclasses import replace

        short = replace(SHOPPING_TRIP, idle_duration_h=0.5)
        long = replace(SHOPPING_TRIP, idle_duration_h=2.0)
        config = EcoChargeConfig(k=3, radius_km=15.0)
        short_kwh = run_scenario(short, workload, config).total_clean_kwh
        long_kwh = run_scenario(long, workload, config).total_clean_kwh
        assert long_kwh >= short_kwh - 1e-6


class TestIncidentChaos:
    """Smoke the live-graph storm: soundness, free no-ops, agreement."""

    def test_storm_is_sound_and_reconciled(self, workload):
        spec = IncidentChaosSpec(
            batches=4, batch_size=1, noop_every=2, fleet_size=1,
            duplicates=4, k=3, seed=1,
        )
        report = run_incident_chaos(workload, spec)
        assert report.served > 0
        assert report.sound and report.completed_cleanly
        assert report.containment_violations == 0
        assert report.fresh_checks >= 1 and report.fresh_divergences == 0
        assert report.noop_proofs >= 1
        assert report.noop_cache_invalidations == 0
        assert report.backend_divergences == 0
        assert report.reconciliation == () or not report.reconciliation
        assert report.as_dict()["scenario"] == spec.name

    def test_spec_validation(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            IncidentChaosSpec(batches=0)
