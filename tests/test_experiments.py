"""Experiment harness tests: metrics, comparison protocol, figure drivers.

Figure drivers run on a heavily scaled-down workload (scale=0.1, one
dataset, one repetition) — the full-scale numbers live in EXPERIMENTS.md;
these tests assert the *machinery* and the expected qualitative shape.
"""

import math

import pytest

from repro.core.scoring import Weights
from repro.experiments.harness import (
    HarnessConfig,
    compare_methods,
    default_rankers,
    ecocharge_factory,
)
from repro.experiments.metrics import (
    MeanStd,
    Stopwatch,
    component_contributions,
    sc_percent,
    true_sc_of_selection,
)
from repro.experiments.report import format_ablation_table, format_results_table
from repro.core.environment import TrueComponents
from repro.trajectories.datasets import load_workload


@pytest.fixture(scope="module")
def tiny_workload():
    return load_workload("oldenburg", scale=0.2)


@pytest.fixture(scope="module")
def tiny_config():
    return HarnessConfig(trips_per_dataset=2, repetitions=1)


class TestMeanStd:
    def test_basic(self):
        ms = MeanStd.of([1.0, 2.0, 3.0])
        assert ms.mean == 2.0
        assert ms.std == pytest.approx(1.0)
        assert ms.count == 3

    def test_single_value(self):
        ms = MeanStd.of([5.0])
        assert ms.std == 0.0

    def test_empty(self):
        ms = MeanStd.of([])
        assert math.isnan(ms.mean) and ms.count == 0

    def test_str(self):
        assert "n=2" in str(MeanStd.of([1.0, 3.0]))


class TestStopwatch:
    def test_laps_accumulate(self):
        watch = Stopwatch()
        for __ in range(3):
            with watch.lap():
                pass
        assert len(watch.laps_ms) == 3
        assert watch.total_ms >= 0.0
        assert watch.summary().count == 3


class TestSelectionMetrics:
    TRUTHS = {
        1: TrueComponents(1, sustainable=0.9, availability=0.8, derouting=0.1),
        2: TrueComponents(2, sustainable=0.3, availability=0.4, derouting=0.7),
    }

    def test_true_sc_of_selection(self):
        sc = true_sc_of_selection(self.TRUTHS, [1], Weights.equal())
        assert sc == pytest.approx((0.9 + 0.8 + 0.9) / 3)

    def test_mean_over_selection(self):
        both = true_sc_of_selection(self.TRUTHS, [1, 2], Weights.equal())
        only1 = true_sc_of_selection(self.TRUTHS, [1], Weights.equal())
        only2 = true_sc_of_selection(self.TRUTHS, [2], Weights.equal())
        assert both == pytest.approx((only1 + only2) / 2)

    def test_empty_selection(self):
        assert true_sc_of_selection(self.TRUTHS, [], Weights.equal()) == 0.0

    def test_sc_percent(self):
        assert sc_percent(0.5, 1.0) == 50.0
        assert sc_percent(0.0, 0.0) == 0.0
        assert sc_percent(1.0, 0.0) == math.inf

    def test_contributions_sum_to_one(self):
        shares = component_contributions(self.TRUTHS, [1, 2])
        assert sum(shares) == pytest.approx(1.0)

    def test_contributions_empty(self):
        assert component_contributions(self.TRUTHS, []) == (0.0, 0.0, 0.0)

    def test_contributions_reflect_dominant_term(self):
        truths = {1: TrueComponents(1, sustainable=1.0, availability=0.0, derouting=1.0)}
        shares = component_contributions(truths, [1])
        assert shares[0] == pytest.approx(1.0)


class TestCompareMethods:
    def test_brute_force_is_reference(self, tiny_workload, tiny_config):
        factories = default_rankers(k=3, weights=Weights.equal(), radius_km=20.0)
        results = compare_methods(tiny_workload, factories, tiny_config)
        by_name = {r.method: r for r in results}
        assert by_name["brute-force"].sc_pct.mean == pytest.approx(100.0)

    def test_expected_quality_ordering(self, tiny_workload, tiny_config):
        """The paper's Figure-6 shape: brute >= ecocharge > quadtree > random."""
        factories = default_rankers(k=3, weights=Weights.equal(), radius_km=20.0)
        results = compare_methods(tiny_workload, factories, tiny_config)
        by_name = {r.method: r.sc_pct.mean for r in results}
        assert by_name["ecocharge"] > by_name["random"]
        assert by_name["index-quadtree"] > by_name["random"]
        assert by_name["brute-force"] >= by_name["ecocharge"] - 5.0

    def test_random_is_fastest(self, tiny_workload, tiny_config):
        factories = default_rankers(k=3, weights=Weights.equal(), radius_km=20.0)
        results = compare_methods(tiny_workload, factories, tiny_config)
        by_name = {r.method: r.ft_ms.mean for r in results}
        assert by_name["random"] < by_name["brute-force"]

    def test_unknown_reference_rejected(self, tiny_workload, tiny_config):
        factories = default_rankers(k=3, weights=Weights.equal())
        with pytest.raises(ValueError):
            compare_methods(tiny_workload, factories, tiny_config, reference="nope")

    def test_sample_counts(self, tiny_workload):
        config = HarnessConfig(trips_per_dataset=1, repetitions=2)
        factories = {"brute-force": default_rankers(3, Weights.equal())["brute-force"]}
        results = compare_methods(tiny_workload, factories, config)
        trip = tiny_workload.trips[0]
        # repetitions x segments measurements (one trip sampled).
        assert results[0].ft_ms.count % 2 == 0

    def test_ecocharge_factory_configures(self, tiny_workload):
        factory = ecocharge_factory(
            k=2, weights=Weights.equal(), radius_km=7.0, range_km=3.0
        )
        ranker = factory(tiny_workload.environment)
        assert ranker.config.radius_km == 7.0
        assert ranker.config.range_km == 3.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HarnessConfig(trips_per_dataset=0)
        with pytest.raises(ValueError):
            HarnessConfig(repetitions=0)
        with pytest.raises(ValueError):
            HarnessConfig(k=0)


class TestReportFormatting:
    def test_results_table(self, tiny_workload, tiny_config):
        factories = {"brute-force": default_rankers(3, Weights.equal())["brute-force"]}
        results = compare_methods(tiny_workload, factories, tiny_config)
        text = format_results_table(results, "Title")
        assert text.splitlines()[0] == "Title"
        assert "brute-force" in text and "F_t (ms)" in text

    def test_ablation_table(self, tiny_workload, tiny_config):
        factories = {"brute-force": default_rankers(3, Weights.equal())["brute-force"]}
        results = compare_methods(tiny_workload, factories, tiny_config)
        text = format_ablation_table(results, "Ablation")
        assert "w1:L (%)" in text


class TestFigureDrivers:
    CONFIG = HarnessConfig(trips_per_dataset=1, repetitions=1, dataset_scale=0.1, k=3)

    def test_figure6_rows(self):
        from repro.experiments.figure6 import run_figure6

        results = run_figure6(self.CONFIG, datasets=("oldenburg",))
        assert {r.method for r in results} == {
            "brute-force", "index-quadtree", "random", "ecocharge",
        }

    def test_figure7_sweeps_r(self):
        from repro.experiments.figure7 import run_figure7

        results = run_figure7(self.CONFIG, datasets=("oldenburg",), radii_km=(10.0, 20.0))
        assert {r.method for r in results} == {
            "ecocharge R=10km", "ecocharge R=20km",
        }

    def test_figure8_sweeps_q(self):
        from repro.experiments.figure8 import run_figure8

        results = run_figure8(self.CONFIG, datasets=("oldenburg",), ranges_km=(5.0, 15.0))
        assert {r.method for r in results} == {
            "ecocharge Q=5km", "ecocharge Q=15km",
        }

    def test_figure9_ablations(self):
        from repro.experiments.figure9 import run_figure9

        results = run_figure9(self.CONFIG, datasets=("oldenburg",))
        assert {r.method for r in results} == {"AWE", "OSC", "OA", "ODC"}
        for result in results:
            assert sum(result.contributions) == pytest.approx(1.0, abs=1e-6)

    def test_cli_parser(self):
        from repro.experiments.__main__ import _build_parser

        args = _build_parser().parse_args(["figure6", "--trips", "2", "--reps", "1"])
        assert args.experiment == "figure6" and args.trips == 2
