"""Charger model, registry, catalog generation, and solar curve tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chargers.charger import (
    RATE_CLASSES_KW,
    Charger,
    PlugType,
    RenewableSource,
    Vehicle,
)
from repro.chargers.plugshare import CatalogSpec, generate_catalog
from repro.chargers.registry import ChargerRegistry
from repro.chargers.solar import (
    SAMPLES_PER_HOUR,
    SolarProfile,
    SolarSeries,
    generate_solar_series,
)
from repro.spatial.geometry import Point


def _charger(cid=0, x=0.0, y=0.0, rate=11.0, **kw) -> Charger:
    return Charger(charger_id=cid, point=Point(x, y), node_id=0, rate_kw=rate, **kw)


class TestCharger:
    def test_validation(self):
        with pytest.raises(ValueError):
            _charger(rate=0.0)
        with pytest.raises(ValueError):
            _charger(plugs=0)
        with pytest.raises(ValueError):
            _charger(solar_capacity_kw=-1.0)

    def test_dc_fast_detection(self):
        assert _charger(plug_type=PlugType.CCS, rate=150.0).is_dc_fast
        assert not _charger(plug_type=PlugType.AC_TYPE2).is_dc_fast

    def test_deliverable_capped_by_vehicle(self):
        ac = _charger(rate=22.0)
        assert ac.deliverable_kw(vehicle_max_ac_kw=11.0, vehicle_max_dc_kw=100.0) == 11.0
        dc = _charger(plug_type=PlugType.CCS, rate=150.0)
        assert dc.deliverable_kw(vehicle_max_ac_kw=11.0, vehicle_max_dc_kw=100.0) == 100.0

    def test_deliverable_capped_by_charger(self):
        slow = _charger(rate=3.7)
        assert slow.deliverable_kw(11.0, 100.0) == 3.7


class TestVehicle:
    def test_headroom_and_range(self):
        ev = Vehicle(vehicle_id=1, battery_kwh=60.0, state_of_charge=0.5,
                     consumption_kwh_per_km=0.15)
        assert ev.headroom_kwh == pytest.approx(30.0)
        assert ev.range_km == pytest.approx(200.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Vehicle(vehicle_id=1, state_of_charge=1.5)
        with pytest.raises(ValueError):
            Vehicle(vehicle_id=1, battery_kwh=0.0)
        with pytest.raises(ValueError):
            Vehicle(vehicle_id=1, consumption_kwh_per_km=0.0)


class TestSolarProfile:
    PROFILE = SolarProfile(capacity_kw=20.0, sunrise_h=6.0, sunset_h=20.0)

    def test_zero_at_night(self):
        assert self.PROFILE.clear_sky_kw(3.0) == 0.0
        assert self.PROFILE.clear_sky_kw(22.0) == 0.0

    def test_zero_at_sunrise_and_sunset(self):
        assert self.PROFILE.clear_sky_kw(6.0) == 0.0
        assert self.PROFILE.clear_sky_kw(20.0) == 0.0

    def test_peak_at_solar_noon(self):
        noon = (6.0 + 20.0) / 2
        assert self.PROFILE.clear_sky_kw(noon) == pytest.approx(20.0 * 0.85)
        assert self.PROFILE.clear_sky_kw(noon) >= self.PROFILE.clear_sky_kw(10.0)

    def test_wraps_across_days(self):
        assert self.PROFILE.clear_sky_kw(13.0) == pytest.approx(
            self.PROFILE.clear_sky_kw(13.0 + 24.0)
        )

    def test_daily_energy_positive_and_bounded(self):
        energy = self.PROFILE.daily_energy_kwh()
        assert 0 < energy < 20.0 * 14.0  # can't exceed capacity x daylight

    def test_validation(self):
        with pytest.raises(ValueError):
            SolarProfile(capacity_kw=-1.0)
        with pytest.raises(ValueError):
            SolarProfile(capacity_kw=1.0, sunrise_h=20.0, sunset_h=6.0)
        with pytest.raises(ValueError):
            SolarProfile(capacity_kw=1.0, peak_fraction=0.0)

    @given(st.floats(min_value=0.0, max_value=48.0))
    def test_production_never_exceeds_capacity(self, t):
        assert 0.0 <= self.PROFILE.clear_sky_kw(t) <= 20.0


class TestSolarSeries:
    def test_generate_length(self):
        series = generate_solar_series(SolarProfile(10.0), days=2)
        assert len(series.values_kw) == 2 * 24 * SAMPLES_PER_HOUR

    def test_at_and_bounds(self):
        series = generate_solar_series(SolarProfile(10.0), days=1, seed=4)
        assert series.at(-1.0) == 0.0
        assert series.at(25.0) == 0.0
        assert series.at(12.0) > 0.0

    def test_window_max_ge_samples(self):
        series = generate_solar_series(SolarProfile(10.0), days=1, seed=4)
        peak = series.window_max(10.0, 14.0)
        assert peak >= series.at(12.0) - 1e-9

    def test_window_energy_additive(self):
        series = generate_solar_series(SolarProfile(10.0), days=1, seed=4)
        whole = series.window_energy_kwh(0.0, 24.0)
        split = series.window_energy_kwh(0.0, 12.0) + series.window_energy_kwh(12.0, 24.0)
        assert whole == pytest.approx(split)

    def test_cloud_attenuation_scales_down(self):
        clear = generate_solar_series(SolarProfile(10.0), noise_std=0.0, seed=1)
        cloudy = generate_solar_series(
            SolarProfile(10.0), cloud_attenuation=0.5, noise_std=0.0, seed=1
        )
        assert cloudy.window_energy_kwh(0, 24) == pytest.approx(
            0.5 * clear.window_energy_kwh(0, 24)
        )

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            SolarSeries(start_h=0.0, values_kw=(1.0, -0.1))

    def test_empty_window(self):
        series = generate_solar_series(SolarProfile(10.0))
        assert series.window_max(14.0, 14.0) == 0.0
        assert series.window_energy_kwh(14.0, 12.0) == 0.0


class TestRegistry:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            ChargerRegistry([_charger(cid=1), _charger(cid=1, x=1.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ChargerRegistry([])

    def test_lookup(self, small_registry):
        charger = next(iter(small_registry))
        assert small_registry.get(charger.charger_id) is charger
        assert charger.charger_id in small_registry

    def test_all_returns_copy(self, small_registry):
        listing = small_registry.all()
        listing.pop()
        assert len(small_registry.all()) == len(small_registry)

    @pytest.mark.parametrize("kind", ["quadtree", "kdtree", "grid"])
    def test_indexes_agree_on_nearest(self, small_registry, kind):
        probe = Point(5.0, 5.0)
        via_index = [c.charger_id for c in small_registry.nearest(probe, 5, kind)]
        exhaustive = sorted(
            small_registry.all(), key=lambda c: c.point.squared_distance_to(probe)
        )
        assert via_index == [c.charger_id for c in exhaustive[:5]]

    @pytest.mark.parametrize("kind", ["quadtree", "kdtree", "grid"])
    def test_within_radius_sorted_and_complete(self, small_registry, kind):
        probe = Point(8.0, 6.0)
        hits = small_registry.within_radius(probe, 4.0, kind)
        dists = [c.point.distance_to(probe) for c in hits]
        assert dists == sorted(dists)
        assert all(d <= 4.0 for d in dists)
        want = {c.charger_id for c in small_registry.all()
                if c.point.distance_to(probe) <= 4.0}
        assert {c.charger_id for c in hits} == want

    def test_max_rate(self, small_registry):
        assert small_registry.max_rate_kw() == max(
            c.rate_kw for c in small_registry.all()
        )


class TestCatalogGeneration:
    def test_deterministic(self, small_network):
        spec = CatalogSpec(charger_count=30, seed=5)
        a = generate_catalog(small_network, spec)
        b = generate_catalog(small_network, spec)
        assert [c.point for c in a.all()] == [c.point for c in b.all()]

    def test_count_and_ids(self, small_registry):
        assert len(small_registry) == 60
        assert sorted(c.charger_id for c in small_registry) == list(range(60))

    def test_chargers_anchor_to_network_nodes(self, small_network, small_registry):
        node_ids = set(small_network.node_ids())
        for charger in small_registry:
            assert charger.node_id in node_ids
            # The recorded node is close to the charger point.
            assert charger.point.distance_to(
                small_network.node(charger.node_id).point
            ) < 2.0

    def test_rate_classes_valid(self, small_registry):
        for charger in small_registry:
            assert charger.rate_kw in RATE_CLASSES_KW[charger.plug_type]

    def test_dc_share_roughly_respected(self, small_network):
        registry = generate_catalog(
            small_network, CatalogSpec(charger_count=400, dc_share=0.2, seed=8)
        )
        dc = sum(1 for c in registry if c.is_dc_fast)
        assert 0.10 < dc / len(registry) < 0.32

    def test_renewable_sources_mixed(self, small_network):
        registry = generate_catalog(
            small_network, CatalogSpec(charger_count=200, net_metered_share=0.4, seed=2)
        )
        sources = {c.source for c in registry}
        assert sources == {RenewableSource.LOCAL_SOLAR, RenewableSource.NET_METERED_FARM}

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CatalogSpec(charger_count=0)
        with pytest.raises(ValueError):
            CatalogSpec(dc_share=1.5)
