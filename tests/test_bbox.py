"""Unit tests for axis-aligned bounding boxes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import Point

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


@st.composite
def boxes(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return BoundingBox(x1, y1, x2, y2)


class TestConstruction:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(1.0, 0.0, 0.0, 1.0)

    def test_point_box_allowed(self):
        box = BoundingBox(1.0, 2.0, 1.0, 2.0)
        assert box.area == 0.0
        assert box.contains(Point(1.0, 2.0))

    def test_from_points(self):
        box = BoundingBox.from_points([Point(1, 5), Point(-2, 3), Point(4, -1)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-2, -1, 4, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])

    def test_around(self):
        box = BoundingBox.around(Point(0, 0), 2.0)
        assert box.width == 4.0 and box.height == 4.0

    def test_around_negative_radius(self):
        with pytest.raises(ValueError):
            BoundingBox.around(Point(0, 0), -1.0)


class TestQueries:
    BOX = BoundingBox(0.0, 0.0, 10.0, 6.0)

    def test_contains_boundary(self):
        assert self.BOX.contains(Point(0, 0))
        assert self.BOX.contains(Point(10, 6))
        assert not self.BOX.contains(Point(10.01, 3))

    def test_intersects_disjoint(self):
        assert not self.BOX.intersects(BoundingBox(11, 0, 12, 6))

    def test_intersects_touching(self):
        assert self.BOX.intersects(BoundingBox(10, 0, 12, 6))

    def test_contains_box(self):
        assert self.BOX.contains_box(BoundingBox(1, 1, 9, 5))
        assert not self.BOX.contains_box(BoundingBox(1, 1, 11, 5))

    def test_min_distance_inside_is_zero(self):
        assert self.BOX.min_distance_to(Point(5, 3)) == 0.0

    def test_min_distance_outside(self):
        assert self.BOX.min_distance_to(Point(13, 10)) == pytest.approx(5.0)

    def test_max_distance(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.max_distance_to(Point(0, 0)) == pytest.approx(8**0.5)

    def test_intersects_circle(self):
        assert self.BOX.intersects_circle(Point(12, 3), 2.5)
        assert not self.BOX.intersects_circle(Point(12, 3), 1.5)

    def test_expanded(self):
        grown = self.BOX.expanded(1.0)
        assert grown.min_x == -1.0 and grown.max_y == 7.0

    def test_quadrants_tile_the_box(self):
        quads = self.BOX.quadrants()
        assert len(quads) == 4
        assert sum(q.area for q in quads) == pytest.approx(self.BOX.area)
        for q in quads:
            assert self.BOX.contains_box(q)

    def test_center(self):
        assert self.BOX.center == Point(5.0, 3.0)


class TestProperties:
    @given(boxes(), st.builds(Point, coords, coords))
    def test_min_distance_consistent_with_contains(self, box, point):
        if box.contains(point):
            assert box.min_distance_to(point) == 0.0
        else:
            assert box.min_distance_to(point) > 0.0

    @given(boxes(), st.builds(Point, coords, coords))
    def test_min_le_max_distance(self, box, point):
        assert box.min_distance_to(point) <= box.max_distance_to(point) + 1e-9

    @given(boxes())
    def test_intersects_is_reflexive(self, box):
        assert box.intersects(box)

    @given(boxes(), boxes())
    def test_intersects_is_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(boxes())
    def test_quadrants_cover_center(self, box):
        quads = box.quadrants()
        assert sum(q.contains(box.center) for q in quads) >= 1
