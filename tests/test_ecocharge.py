"""EcoCharge algorithm integration tests: Algorithm 1 + dynamic caching."""

import pytest

from repro.core.baselines import BruteForceRanker
from repro.core.ecocharge import EcoCharge, EcoChargeConfig, EcoChargeRanker
from repro.core.ranking import run_over_trip
from repro.core.scoring import Weights


@pytest.fixture()
def ranker(small_environment):
    return EcoChargeRanker(
        small_environment, EcoChargeConfig(k=3, radius_km=10.0, range_km=5.0)
    )


class TestConfig:
    def test_defaults_match_paper(self):
        config = EcoChargeConfig()
        assert config.radius_km == 50.0  # R
        assert config.range_km == 5.0  # Q
        assert config.weights == Weights.equal()

    def test_validation(self):
        with pytest.raises(ValueError):
            EcoChargeConfig(k=0)
        with pytest.raises(ValueError):
            EcoChargeConfig(radius_km=0.0)
        with pytest.raises(ValueError):
            EcoChargeConfig(range_km=-1.0)
        with pytest.raises(ValueError):
            EcoChargeConfig(segment_km=0.0)
        with pytest.raises(ValueError):
            EcoChargeConfig(cache_ttl_h=0.0)


class TestRankSegment:
    def test_table_has_k_entries(self, small_environment, sample_trip, ranker):
        segment = sample_trip.segments()[0]
        table = ranker.rank_segment(sample_trip, segment, eta_h=10.2, now_h=10.0)
        assert len(table) == 3

    def test_entries_within_radius(self, small_environment, sample_trip, ranker):
        segment = sample_trip.segments()[0]
        table = ranker.rank_segment(sample_trip, segment, eta_h=10.2, now_h=10.0)
        for entry in table:
            assert entry.charger.point.distance_to(segment.midpoint) <= 10.0 + 1e-6

    def test_first_call_computes_then_adapts(self, small_environment, sample_trip, ranker):
        segments = sample_trip.segments()
        t0 = ranker.rank_segment(sample_trip, segments[0], eta_h=10.1, now_h=10.0)
        assert not t0.is_adapted
        t1 = ranker.rank_segment(
            sample_trip, segments[1], eta_h=10.2, now_h=10.0
        )
        # Consecutive 4 km segments are within Q = 5 km.
        assert t1.is_adapted and t1.adapted_from == 0

    def test_reset_clears_cache(self, small_environment, sample_trip, ranker):
        segments = sample_trip.segments()
        ranker.rank_segment(sample_trip, segments[0], eta_h=10.1, now_h=10.0)
        ranker.reset()
        table = ranker.rank_segment(sample_trip, segments[1], eta_h=10.2, now_h=10.0)
        assert not table.is_adapted

    def test_ttl_expiry_forces_recompute(self, small_environment, sample_trip):
        ranker = EcoChargeRanker(
            small_environment,
            EcoChargeConfig(k=3, radius_km=10.0, range_km=50.0, cache_ttl_h=0.05),
        )
        segments = sample_trip.segments()
        ranker.rank_segment(sample_trip, segments[0], eta_h=10.0, now_h=10.0)
        table = ranker.rank_segment(sample_trip, segments[1], eta_h=10.5, now_h=10.0)
        assert not table.is_adapted
        assert ranker.cache_stats.expirations == 1

    def test_ranking_is_descending(self, small_environment, sample_trip, ranker):
        segment = sample_trip.segments()[0]
        table = ranker.rank_segment(sample_trip, segment, eta_h=10.2, now_h=10.0)
        sc_maxes = [e.score.sc_max for e in table]
        assert sc_maxes == sorted(sc_maxes, reverse=True)

    def test_tiny_radius_falls_back_to_nearest(self, small_environment, sample_trip):
        ranker = EcoChargeRanker(
            small_environment, EcoChargeConfig(k=2, radius_km=0.001, range_km=5.0)
        )
        segment = sample_trip.segments()[0]
        table = ranker.rank_segment(sample_trip, segment, eta_h=10.2, now_h=10.0)
        assert len(table) == 2  # nearest-k fallback, never an empty offering


class TestCachePoolLimit:
    def test_limit_validation(self):
        with pytest.raises(ValueError):
            EcoChargeConfig(k=5, cache_pool_limit=3)

    def test_limit_bounds_cached_pool(self, small_environment, sample_trip):
        ranker = EcoChargeRanker(
            small_environment,
            EcoChargeConfig(k=3, radius_km=12.0, cache_pool_limit=6),
        )
        segment = sample_trip.segments()[0]
        ranker.rank_segment(sample_trip, segment, eta_h=10.2, now_h=10.0)
        cached = ranker._cache.current
        assert cached is not None
        assert len(cached.pool) == 6
        assert len(cached.components) == 6

    def test_unlimited_stores_full_pool(self, small_environment, sample_trip):
        ranker = EcoChargeRanker(
            small_environment, EcoChargeConfig(k=3, radius_km=12.0)
        )
        segment = sample_trip.segments()[0]
        ranker.rank_segment(sample_trip, segment, eta_h=10.2, now_h=10.0)
        cached = ranker._cache.current
        pool_size = len(
            small_environment.registry.within_radius(segment.midpoint, 12.0)
        )
        assert len(cached.pool) == pool_size

    def test_adaptation_still_works_with_limit(self, small_environment, sample_trip):
        ranker = EcoChargeRanker(
            small_environment,
            EcoChargeConfig(k=3, radius_km=12.0, range_km=5.0, cache_pool_limit=9),
        )
        segments = sample_trip.segments()
        ranker.rank_segment(sample_trip, segments[0], eta_h=10.1, now_h=10.0)
        adapted = ranker.rank_segment(sample_trip, segments[1], eta_h=10.2, now_h=10.0)
        assert adapted.is_adapted
        assert len(adapted) == 3

    def test_limited_adaptation_close_to_exact(self, small_environment, sample_trip):
        """The reduced pool's adapted selection should overlap strongly
        with the full-pool adapted selection."""
        segments = sample_trip.segments()

        def adapted_ids(limit):
            ranker = EcoChargeRanker(
                small_environment,
                EcoChargeConfig(
                    k=5, radius_km=12.0, range_km=5.0, cache_pool_limit=limit
                ),
            )
            ranker.rank_segment(sample_trip, segments[0], eta_h=10.1, now_h=10.0)
            return set(
                ranker.rank_segment(
                    sample_trip, segments[1], eta_h=10.2, now_h=10.0
                ).charger_ids()
            )

        overlap = adapted_ids(None) & adapted_ids(15)
        assert len(overlap) >= 4  # of 5


class TestAdaptationQuality:
    def test_adapted_table_close_to_recomputed(self, small_environment, sample_trip):
        """An adapted table's selection should largely agree with a fresh
        full computation at the same location (the drift the Q-opt
        experiment quantifies is small at Q = 5 km)."""
        config = EcoChargeConfig(k=5, radius_km=15.0, range_km=5.0)
        cached = EcoChargeRanker(small_environment, config)
        fresh = EcoChargeRanker(small_environment, config)
        segments = sample_trip.segments()
        etas = small_environment.eta.segment_etas(sample_trip)

        cached.rank_segment(sample_trip, segments[0], etas[0].expected_h, 10.0)
        adapted = cached.rank_segment(sample_trip, segments[1], etas[1].expected_h, 10.0)
        assert adapted.is_adapted

        recomputed = fresh.rank_segment(
            sample_trip, segments[1], etas[1].expected_h, 10.0
        )
        overlap = set(adapted.charger_ids()) & set(recomputed.charger_ids())
        assert len(overlap) >= 3  # of 5


class TestFacade:
    def test_plan_produces_one_table_per_segment(self, small_environment, sample_trip):
        framework = EcoCharge(
            small_environment, EcoChargeConfig(k=3, radius_km=12.0, segment_km=3.0)
        )
        run = framework.plan(sample_trip)
        assert len(run.tables) == len(sample_trip.segments(3.0))
        assert run.ranker_name == "ecocharge"

    def test_plan_uses_cache(self, small_environment, sample_trip):
        framework = EcoCharge(
            small_environment, EcoChargeConfig(k=3, radius_km=12.0, range_km=5.0)
        )
        framework.plan(sample_trip)
        assert framework.cache_stats.hits >= 1

    def test_offering_for_single_segment(self, small_environment, sample_trip):
        framework = EcoCharge(small_environment, EcoChargeConfig(k=3, radius_km=12.0))
        segment = sample_trip.segments()[1]
        table = framework.offering_for(sample_trip, segment)
        assert table.segment_index == 1
        assert len(table) == 3


class TestAgainstBruteForce:
    def test_full_coverage_matches_brute_force_top1(self, small_environment, sample_trip):
        """With R covering the whole environment, Q tiny (no caching), and
        unbounded budgets, EcoCharge's top choice per segment equals Brute
        Force's (same pool, same scores, same ranking)."""
        bounds = small_environment.registry.bounds
        big_r = max(bounds.width, bounds.height) * 2
        eco = EcoChargeRanker(
            small_environment,
            EcoChargeConfig(k=3, radius_km=big_r, range_km=0.001),
        )
        brute = BruteForceRanker(small_environment, k=3)
        eco_run = run_over_trip(eco, small_environment, sample_trip)
        brute_run = run_over_trip(brute, small_environment, sample_trip)
        for eco_table, brute_table in zip(eco_run.tables, brute_run.tables):
            assert not eco_table.is_adapted
            assert eco_table.best.charger_id == brute_table.best.charger_id
