"""Fleet-simulation tests: vehicle lifecycle, event log, energy accounting."""

import pytest

from repro.chargers.charger import Vehicle
from repro.core.ecocharge import EcoChargeConfig
from repro.network.path import Trip
from repro.simulation.events import EventKind, EventLog
from repro.simulation.fleet import (
    FleetSimulation,
    SimulationConfig,
    VehiclePhase,
)


@pytest.fixture(scope="module")
def sim_config():
    return SimulationConfig(ecocharge=EcoChargeConfig(k=3, radius_km=12.0))


@pytest.fixture()
def single_trip(small_environment):
    nodes = sorted(small_environment.network.node_ids())
    return [Trip.route(small_environment.network, nodes[0], nodes[-1], 10.0)]


class TestEventLog:
    def test_time_ordering_enforced(self):
        log = EventLog()
        log.record(1.0, 0, EventKind.DEPARTED)
        with pytest.raises(ValueError):
            log.record(0.5, 0, EventKind.ARRIVED)

    def test_queries(self):
        log = EventLog()
        log.record(1.0, 0, EventKind.DEPARTED)
        log.record(1.0, 1, EventKind.DEPARTED)
        log.record(2.0, 0, EventKind.ARRIVED)
        assert log.count(EventKind.DEPARTED) == 2
        assert len(log.for_vehicle(0)) == 2
        assert [e.kind for e in log.of_kind(EventKind.ARRIVED)] == [EventKind.ARRIVED]
        assert len(log) == 3


class TestSimulationConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(step_h=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(charge_below_soc=1.5)
        with pytest.raises(ValueError):
            SimulationConfig(idle_duration_h=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(max_sim_hours=0.0)


class TestFleetSimulation:
    def test_needs_trips(self, small_environment, sim_config):
        with pytest.raises(ValueError):
            FleetSimulation(small_environment, [], sim_config)

    def test_vehicle_count_must_match(self, small_environment, single_trip, sim_config):
        with pytest.raises(ValueError):
            FleetSimulation(
                small_environment, single_trip, sim_config,
                vehicles=[Vehicle(0), Vehicle(1)],
            )

    def test_full_battery_drives_straight_through(
        self, small_environment, single_trip, sim_config
    ):
        """A vehicle above the charge threshold never deroutes."""
        sim = FleetSimulation(
            small_environment, single_trip, sim_config,
            vehicles=[Vehicle(0, state_of_charge=0.95)],
        )
        report = sim.run()
        assert report.outcomes[0].phase is VehiclePhase.ARRIVED
        assert report.events.count(EventKind.DEROUTE_STARTED) == 0
        assert report.outcomes[0].clean_kwh == 0.0

    def test_low_battery_triggers_charging_lifecycle(
        self, small_environment, single_trip, sim_config
    ):
        sim = FleetSimulation(
            small_environment, single_trip, sim_config,
            vehicles=[Vehicle(0, state_of_charge=0.35)],
        )
        report = sim.run()
        events = [e.kind for e in report.events.for_vehicle(0)]
        assert events[0] is EventKind.DEPARTED
        assert EventKind.DEROUTE_STARTED in events
        assert EventKind.CHARGING_STARTED in events
        assert EventKind.CHARGING_FINISHED in events
        assert events[-1] is EventKind.ARRIVED
        # Lifecycle ordering.
        assert events.index(EventKind.DEROUTE_STARTED) < events.index(
            EventKind.CHARGING_STARTED
        )
        assert events.index(EventKind.CHARGING_STARTED) < events.index(
            EventKind.CHARGING_FINISHED
        )

    def test_energy_accounting_consistent(
        self, small_environment, single_trip, sim_config
    ):
        vehicle = Vehicle(0, state_of_charge=0.35)
        sim = FleetSimulation(small_environment, single_trip, sim_config, [vehicle])
        report = sim.run()
        outcome = report.outcomes[0]
        start_kwh = vehicle.battery_kwh * vehicle.state_of_charge
        final_kwh = vehicle.battery_kwh * outcome.final_soc
        # start - driven + charged == final (no other sources/sinks).
        assert final_kwh == pytest.approx(
            start_kwh - outcome.drive_kwh + outcome.clean_kwh, abs=1e-6
        )

    def test_daylight_charging_gains_energy(
        self, small_environment, single_trip, sim_config
    ):
        sim = FleetSimulation(
            small_environment, single_trip, sim_config,
            vehicles=[Vehicle(0, state_of_charge=0.35)],
        )
        report = sim.run()
        assert report.total_clean_kwh > 0.0

    def test_deterministic(self, small_environment, single_trip, sim_config):
        def run():
            sim = FleetSimulation(
                small_environment, single_trip, sim_config,
                vehicles=[Vehicle(0, state_of_charge=0.35)],
            )
            report = sim.run()
            return [(e.time_h, e.vehicle_id, e.kind) for e in report.events]

        assert run() == run()

    def test_tiny_battery_strands(self, small_environment, single_trip, sim_config):
        """A vehicle that cannot reach anything runs flat and strands."""
        hopeless = Vehicle(0, battery_kwh=0.2, state_of_charge=0.1)
        sim = FleetSimulation(small_environment, single_trip, sim_config, [hopeless])
        report = sim.run()
        assert report.outcomes[0].phase is VehiclePhase.STRANDED
        assert report.events.count(EventKind.BATTERY_EMPTY) == 1

    def test_multi_vehicle_fleet(self, small_environment, sim_config):
        nodes = sorted(small_environment.network.node_ids())
        trips = [
            Trip.route(small_environment.network, nodes[0], nodes[-1], 10.0),
            Trip.route(small_environment.network, nodes[-1], nodes[0], 10.2),
            Trip.route(small_environment.network, nodes[3], nodes[-4], 10.4),
        ]
        sim = FleetSimulation(small_environment, trips, sim_config)
        report = sim.run()
        assert len(report.outcomes) == 3
        assert report.events.count(EventKind.DEPARTED) == 3

    def test_offers_counted(self, small_environment, single_trip, sim_config):
        sim = FleetSimulation(
            small_environment, single_trip, sim_config,
            vehicles=[Vehicle(0, state_of_charge=0.95)],
        )
        report = sim.run()
        # A through-driving vehicle replans every interval along the trip.
        assert report.outcomes[0].offers_generated >= 2

    def test_horizon_caps_runtime(self, small_environment, single_trip):
        config = SimulationConfig(
            max_sim_hours=0.02, ecocharge=EcoChargeConfig(k=3, radius_km=12.0)
        )
        sim = FleetSimulation(small_environment, single_trip, config)
        report = sim.run()
        assert report.simulated_until_h <= 10.0 + 0.02 + config.step_h
