"""Baseline ranker tests: Brute-Force, Index-Quadtree, Random."""

import pytest

from repro.core.baselines import BruteForceRanker, QuadtreeRanker, RandomRanker
from repro.core.ranking import RankingRun, run_over_trip
from repro.core.scoring import Weights, sc_score


class TestBruteForce:
    def test_k_entries(self, small_environment, sample_trip):
        ranker = BruteForceRanker(small_environment, k=4)
        segment = sample_trip.segments()[0]
        table = ranker.rank_segment(sample_trip, segment, eta_h=10.2, now_h=10.0)
        assert len(table) == 4

    def test_top_choice_maximises_sc_max(self, small_environment, sample_trip):
        """Brute force's winner has the highest SC_max in the whole pool
        among chargers that also make the SC_min top-k (Eq. 6)."""
        ranker = BruteForceRanker(small_environment, k=3)
        segment = sample_trip.segments()[0]
        table = ranker.rank_segment(sample_trip, segment, eta_h=10.2, now_h=10.0)
        scores = small_environment.score_pool(
            segment, small_environment.registry.all(), eta_h=10.2, now_h=10.0,
            next_segment=sample_trip.segments()[1],
        )
        best_possible = max(
            sc_score(c, Weights.equal()).sc_max for c in scores
        )
        assert table.best.score.sc_max <= best_possible + 1e-9

    def test_deterministic(self, small_environment, sample_trip):
        segment = sample_trip.segments()[0]
        a = BruteForceRanker(small_environment, k=3).rank_segment(
            sample_trip, segment, 10.2, 10.0
        )
        b = BruteForceRanker(small_environment, k=3).rank_segment(
            sample_trip, segment, 10.2, 10.0
        )
        assert a.charger_ids() == b.charger_ids()

    def test_k_validation(self, small_environment):
        with pytest.raises(ValueError):
            BruteForceRanker(small_environment, k=0)


class TestQuadtree:
    def test_pool_is_spatially_bounded(self, small_environment, sample_trip):
        ranker = QuadtreeRanker(small_environment, k=3, candidate_count=8)
        segment = sample_trip.segments()[0]
        table = ranker.rank_segment(sample_trip, segment, eta_h=10.2, now_h=10.0)
        # All selected chargers are among the 8 spatially nearest.
        nearest8 = {
            c.charger_id
            for c in small_environment.registry.nearest(segment.midpoint, 8)
        }
        assert set(table.charger_ids()) <= nearest8

    def test_candidate_count_validation(self, small_environment):
        with pytest.raises(ValueError):
            QuadtreeRanker(small_environment, k=5, candidate_count=3)
        with pytest.raises(ValueError):
            QuadtreeRanker(small_environment, k=0)

    def test_default_candidate_count(self, small_environment):
        ranker = QuadtreeRanker(small_environment, k=5)
        assert ranker.candidate_count == max(20, len(small_environment.registry) // 20)

    def test_never_beats_brute_force_estimate(self, small_environment, sample_trip):
        segment = sample_trip.segments()[0]
        brute = BruteForceRanker(small_environment, k=3).rank_segment(
            sample_trip, segment, 10.2, 10.0
        )
        quad = QuadtreeRanker(small_environment, k=3, candidate_count=6).rank_segment(
            sample_trip, segment, 10.2, 10.0
        )
        assert quad.best.score.sc_max <= brute.best.score.sc_max + 1e-9


class TestRandom:
    def test_k_entries_within_radius(self, small_environment, sample_trip):
        ranker = RandomRanker(small_environment, k=4, radius_km=8.0, seed=1)
        segment = sample_trip.segments()[0]
        table = ranker.rank_segment(sample_trip, segment, eta_h=10.2, now_h=10.0)
        assert len(table) == 4
        for entry in table:
            assert entry.charger.point.distance_to(segment.midpoint) <= 8.0 + 1e-6

    def test_reset_reproduces_sequence(self, small_environment, sample_trip):
        ranker = RandomRanker(small_environment, k=4, radius_km=8.0, seed=1)
        segment = sample_trip.segments()[0]
        first = ranker.rank_segment(sample_trip, segment, 10.2, 10.0).charger_ids()
        ranker.reset()
        second = ranker.rank_segment(sample_trip, segment, 10.2, 10.0).charger_ids()
        assert first == second

    def test_different_seeds_differ(self, small_environment, sample_trip):
        segment = sample_trip.segments()[0]
        a = RandomRanker(small_environment, k=5, radius_km=10.0, seed=1).rank_segment(
            sample_trip, segment, 10.2, 10.0
        )
        b = RandomRanker(small_environment, k=5, radius_km=10.0, seed=2).rank_segment(
            sample_trip, segment, 10.2, 10.0
        )
        assert a.charger_ids() != b.charger_ids()

    def test_tiny_radius_fallback(self, small_environment, sample_trip):
        ranker = RandomRanker(small_environment, k=2, radius_km=0.001, seed=1)
        segment = sample_trip.segments()[0]
        assert len(ranker.rank_segment(sample_trip, segment, 10.2, 10.0)) == 2

    def test_validation(self, small_environment):
        with pytest.raises(ValueError):
            RandomRanker(small_environment, k=0)
        with pytest.raises(ValueError):
            RandomRanker(small_environment, k=1, radius_km=0.0)


class TestRunOverTrip:
    def test_one_table_per_segment(self, small_environment, sample_trip):
        run = run_over_trip(
            BruteForceRanker(small_environment, k=2), small_environment, sample_trip
        )
        assert isinstance(run, RankingRun)
        assert len(run.tables) == len(sample_trip.segments())
        assert [t.segment_index for t in run.tables] == list(
            range(len(run.tables))
        )

    def test_table_for(self, small_environment, sample_trip):
        run = run_over_trip(
            BruteForceRanker(small_environment, k=2), small_environment, sample_trip
        )
        assert run.table_for(0).segment_index == 0
        with pytest.raises(KeyError):
            run.table_for(999)

    def test_custom_segment_length(self, small_environment, sample_trip):
        run = run_over_trip(
            BruteForceRanker(small_environment, k=2),
            small_environment,
            sample_trip,
            segment_km=2.0,
        )
        assert len(run.tables) == len(sample_trip.segments(2.0))
