"""Cross-module integration tests: whole-pipeline flows and determinism."""

import pytest

from repro.core.aknn import aknn_self_join
from repro.core.baselines import BruteForceRanker
from repro.core.ecocharge import EcoCharge, EcoChargeConfig
from repro.core.ranking import run_over_trip
from repro.server.client import EcoChargeClient
from repro.server.eis import EcoChargeInformationServer
from repro.trajectories.datasets import DATASET_ORDER, load_workload
from repro.ui.map_html import render_offering_map
from repro.ui.table_render import render_offering_table


class TestEndToEndDeterminism:
    def test_full_plan_is_reproducible(self, small_network, small_registry):
        """Two independently built environments with the same seeds yield
        byte-identical plans."""
        from repro.core.environment import ChargingEnvironment
        from repro.network.path import Trip

        def plan():
            env = ChargingEnvironment(small_network, small_registry, seed=5)
            nodes = sorted(small_network.node_ids())
            trip = Trip.route(small_network, nodes[0], nodes[-1], departure_time_h=10.0)
            framework = EcoCharge(env, EcoChargeConfig(k=3, radius_km=12.0))
            run = framework.plan(trip)
            return [
                (t.segment_index, t.is_adapted, tuple(t.charger_ids()))
                for t in run.tables
            ]

        assert plan() == plan()

    def test_rendering_pipeline(self, small_environment, sample_trip):
        """Plan -> text table -> HTML map, no exceptions, consistent ids."""
        framework = EcoCharge(small_environment, EcoChargeConfig(k=3, radius_km=12.0))
        run = framework.plan(sample_trip)
        for table in run.tables:
            text = render_offering_table(table)
            assert str(table.best.charger_id) in text
        html = render_offering_map(
            small_environment.network, sample_trip, run.tables
        )
        assert html.count("<circle") == sum(len(t) for t in run.tables)


@pytest.mark.parametrize("dataset", DATASET_ORDER)
def test_every_workload_supports_full_pipeline(dataset):
    """Each of the four evaluation workloads can be loaded at tiny scale
    and driven end to end through EcoCharge and the Brute-Force grader."""
    workload = load_workload(dataset, scale=0.05)
    environment = workload.environment
    trip = workload.trips[0]
    framework = EcoCharge(environment, EcoChargeConfig(k=2, radius_km=30.0))
    run = framework.plan(trip)
    assert run.tables and all(len(t) >= 1 for t in run.tables)

    brute = run_over_trip(BruteForceRanker(environment, k=2), environment, trip)
    assert len(brute.tables) == len(run.tables)


class TestServerIntegration:
    def test_two_clients_share_cache(self, small_environment, sample_trip):
        server = EcoChargeInformationServer(small_environment)
        a = EcoChargeClient(server, EcoChargeConfig(k=2, radius_km=10.0))
        b = EcoChargeClient(server, EcoChargeConfig(k=2, radius_km=10.0))
        a.plan_trip(sample_trip)
        upstream_after_first = server.usage.total
        b.plan_trip(sample_trip)
        # Identical corridor: the second client's snapshots come from cache.
        assert server.usage.total == upstream_after_first


class TestAknnForMode2:
    def test_charger_neighbourhoods(self, small_registry):
        """Precompute charger kNN graph (the Mode-2 redirection table) and
        verify it supplies alternatives near each charger."""
        chargers = small_registry.all()
        points = [c.point for c in chargers]
        graph = aknn_self_join(points, k=3)
        for i, charger in enumerate(chargers):
            alternatives = graph.neighbour_ids(i)
            assert len(alternatives) == 3
            for j in alternatives:
                dist = charger.point.distance_to(chargers[j].point)
                # Alternatives are genuinely nearby (within the small map).
                assert dist <= 25.0
