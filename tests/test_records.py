"""Experiment record persistence and shape-check tests."""

import pytest

from repro.experiments.harness import MethodResult
from repro.experiments.metrics import MeanStd
from repro.experiments.records import (
    check_figure6_shape,
    compare_runs,
    load_results,
    results_from_json,
    save_results,
)


def _row(method, dataset="oldenburg", ft=50.0, sc=90.0):
    return MethodResult(
        method=method,
        dataset=dataset,
        ft_ms=MeanStd(ft, 1.0, 10),
        sc_pct=MeanStd(sc, 1.0, 10),
        contributions=(0.3, 0.3, 0.4),
    )


def _good_run(dataset="oldenburg"):
    return [
        _row("brute-force", dataset, ft=100.0, sc=100.0),
        _row("index-quadtree", dataset, ft=60.0, sc=85.0),
        _row("random", dataset, ft=1.0, sc=55.0),
        _row("ecocharge", dataset, ft=20.0, sc=99.0),
    ]


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "fig6.json"
        save_results(_good_run(), "figure6", path)
        experiment, rows = load_results(path)
        assert experiment == "figure6"
        assert len(rows) == 4
        assert rows[0].method == "brute-force"
        assert rows[0].sc_pct.mean == 100.0
        assert rows[0].contributions == (0.3, 0.3, 0.4)

    def test_format_marker(self):
        with pytest.raises(ValueError):
            results_from_json({"format": "wrong"})


class TestShapeCheck:
    def test_good_run_passes(self):
        assert check_figure6_shape(_good_run()) == []

    def test_multi_dataset(self):
        run = _good_run("oldenburg") + _good_run("geolife")
        assert check_figure6_shape(run) == []

    def test_reference_not_100_flagged(self):
        run = _good_run()
        run[0] = _row("brute-force", ft=100.0, sc=97.0)
        violations = check_figure6_shape(run)
        assert any("not 100" in v.description for v in violations)

    def test_quadtree_beating_ecocharge_flagged(self):
        run = _good_run()
        run[1] = _row("index-quadtree", ft=60.0, sc=99.5)
        violations = check_figure6_shape(run)
        assert any("does not clearly beat" in v.description for v in violations)

    def test_slow_random_flagged(self):
        run = _good_run()
        run[2] = _row("random", ft=500.0, sc=55.0)
        violations = check_figure6_shape(run)
        assert any("fastest" in v.description for v in violations)

    def test_missing_method_flagged(self):
        violations = check_figure6_shape(_good_run()[:2])
        assert any("missing methods" in v.description for v in violations)

    def test_real_harness_output_passes(self):
        """The actual harness on the tiny workload satisfies the shape."""
        from repro.core.scoring import Weights
        from repro.experiments.harness import (
            HarnessConfig,
            compare_methods,
            default_rankers,
        )
        from repro.trajectories.datasets import load_workload

        workload = load_workload("oldenburg", scale=0.3)
        results = compare_methods(
            workload,
            default_rankers(k=3, weights=Weights.equal(), radius_km=25.0),
            HarnessConfig(trips_per_dataset=2, repetitions=2),
        )
        assert check_figure6_shape(results) == []


class TestCompareRuns:
    def test_no_regression(self):
        assert compare_runs(_good_run(), _good_run()) == []

    def test_sc_regression_flagged(self):
        new = _good_run()
        new[3] = _row("ecocharge", ft=20.0, sc=90.0)  # was 99
        violations = compare_runs(_good_run(), new)
        assert len(violations) == 1
        assert "ecocharge" in violations[0].description

    def test_new_methods_ignored(self):
        new = _good_run() + [_row("novel-method", sc=10.0)]
        assert compare_runs(_good_run(), new) == []

    def test_timing_changes_ignored(self):
        new = [_row(r.method, r.dataset, ft=r.ft_ms.mean * 10, sc=r.sc_pct.mean)
               for r in _good_run()]
        assert compare_runs(_good_run(), new) == []
