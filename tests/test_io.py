"""Dataset I/O tests: cnode/cedge, Brinkhoff, PLT, CSV, JSON round-trips."""

import pytest

from repro.chargers.plugshare import CatalogSpec, generate_catalog
from repro.chargers.solar import SolarProfile, generate_solar_series
from repro.io.charger_io import (
    chargers_from_json,
    chargers_to_json,
    load_chargers_json,
    read_chargers_csv,
    save_chargers_json,
    write_chargers_csv,
)
from repro.io.network_io import (
    load_network_json,
    network_from_json,
    network_to_json,
    read_cnode_cedge,
    save_network_json,
    write_cnode_cedge,
)
from repro.io.solar_io import read_solar_csv, write_solar_csv
from repro.io.trajectory_io import (
    read_brinkhoff,
    read_plt,
    read_trajectories_csv,
    write_brinkhoff,
    write_trajectories_csv,
)
from repro.network.builders import build_grid_network
from repro.network.path import Trip
from repro.trajectories.brinkhoff import trip_to_trajectory
from repro.trajectories.trajectory import TrajectoryDataset


class TestCnodeCedge:
    def test_round_trip(self, tmp_path, unit_grid):
        cnode, cedge = tmp_path / "a.cnode", tmp_path / "a.cedge"
        write_cnode_cedge(unit_grid, cnode, cedge)
        loaded = read_cnode_cedge(cnode, cedge)
        assert loaded.node_count == unit_grid.node_count
        assert loaded.edge_count == unit_grid.edge_count
        for node in unit_grid.nodes():
            assert loaded.node(node.node_id).point == node.point

    def test_real_format_sample(self, tmp_path):
        """The exact layout of the public California files."""
        (tmp_path / "cal.cnode").write_text("0 -121.9 41.9\n1 -121.9 41.9\n2 -121.8 41.8\n")
        (tmp_path / "cal.cedge").write_text("0 0 1 0.002\n1 1 2 0.1\n")
        network = read_cnode_cedge(tmp_path / "cal.cnode", tmp_path / "cal.cedge")
        assert network.node_count == 3
        assert network.edge(0, 1).length_km == pytest.approx(0.002)
        assert network.has_edge(1, 0)  # bidirectional by default

    def test_directed_mode(self, tmp_path):
        (tmp_path / "n").write_text("0 0 0\n1 1 0\n")
        (tmp_path / "e").write_text("0 0 1 1.0\n")
        network = read_cnode_cedge(tmp_path / "n", tmp_path / "e", bidirectional=False)
        assert network.has_edge(0, 1) and not network.has_edge(1, 0)

    def test_unknown_node_rejected(self, tmp_path):
        (tmp_path / "n").write_text("0 0 0\n")
        (tmp_path / "e").write_text("0 0 9 1.0\n")
        with pytest.raises(ValueError, match="unknown node"):
            read_cnode_cedge(tmp_path / "n", tmp_path / "e")

    def test_malformed_row_rejected(self, tmp_path):
        (tmp_path / "n").write_text("0 0\n")
        (tmp_path / "e").write_text("")
        with pytest.raises(ValueError, match="expected 3 fields"):
            read_cnode_cedge(tmp_path / "n", tmp_path / "e")

    def test_comments_and_blanks_skipped(self, tmp_path):
        (tmp_path / "n").write_text("# header\n\n0 0 0\n1 1 0\n")
        (tmp_path / "e").write_text("0 0 1 1.0\n")
        assert read_cnode_cedge(tmp_path / "n", tmp_path / "e").node_count == 2


class TestNetworkJson:
    def test_round_trip_preserves_speeds(self, small_network):
        loaded = network_from_json(network_to_json(small_network))
        assert loaded.node_count == small_network.node_count
        for edge in small_network.edges():
            twin = loaded.edge(edge.source, edge.target)
            assert twin.speed_kmh == edge.speed_kmh
            assert twin.length_km == edge.length_km

    def test_file_round_trip(self, tmp_path, unit_grid):
        path = tmp_path / "net.json"
        save_network_json(unit_grid, path)
        assert load_network_json(path).edge_count == unit_grid.edge_count

    def test_format_marker_enforced(self):
        with pytest.raises(ValueError):
            network_from_json({"format": "something-else"})


class TestChargerIo:
    def test_csv_round_trip(self, tmp_path, small_network, small_registry):
        path = tmp_path / "chargers.csv"
        write_chargers_csv(small_registry, path)
        loaded = read_chargers_csv(path, small_network)
        assert len(loaded) == len(small_registry)
        for charger in small_registry:
            twin = loaded.get(charger.charger_id)
            assert twin.point == charger.point
            assert twin.rate_kw == charger.rate_kw
            assert twin.plug_type == charger.plug_type

    def test_csv_snaps_to_network(self, tmp_path, small_network, small_registry):
        path = tmp_path / "chargers.csv"
        write_chargers_csv(small_registry, path)
        loaded = read_chargers_csv(path, small_network)
        node_ids = set(small_network.node_ids())
        assert all(c.node_id in node_ids for c in loaded)

    def test_csv_missing_column(self, tmp_path, small_network):
        (tmp_path / "bad.csv").write_text("charger_id,x\n1,0\n")
        with pytest.raises(ValueError, match="missing CSV columns"):
            read_chargers_csv(tmp_path / "bad.csv", small_network)

    def test_csv_unknown_plug_type(self, tmp_path, small_network):
        (tmp_path / "bad.csv").write_text(
            "charger_id,x,y,plug_type,rate_kw,plugs,solar_capacity_kw\n"
            "1,0,0,tesla_magic,11,1,10\n"
        )
        with pytest.raises(ValueError, match="unknown plug type"):
            read_chargers_csv(tmp_path / "bad.csv", small_network)

    def test_json_round_trip_full_fidelity(self, tmp_path, small_registry):
        path = tmp_path / "chargers.json"
        save_chargers_json(small_registry, path)
        loaded = load_chargers_json(path)
        for charger in small_registry:
            assert loaded.get(charger.charger_id) == charger

    def test_json_format_marker(self):
        with pytest.raises(ValueError):
            chargers_from_json({"format": "nope"})


class TestTrajectoryIo:
    @pytest.fixture(scope="class")
    def dataset(self):
        grid = build_grid_network(5, 5)
        trips = [Trip.route(grid, 0, 24, 9.0), Trip.route(grid, 4, 20, 9.5)]
        return TrajectoryDataset(
            "sample",
            tuple(trip_to_trajectory(t, i) for i, t in enumerate(trips)),
        )

    def test_brinkhoff_round_trip(self, tmp_path, dataset):
        path = tmp_path / "moving_objects.dat"
        write_brinkhoff(dataset, path)
        loaded = read_brinkhoff(path)
        assert len(loaded) == len(dataset)
        for original, parsed in zip(dataset, loaded):
            assert parsed.object_id == original.object_id
            assert len(parsed) == len(original)
            assert parsed.fixes[0].point == original.fixes[0].point

    def test_brinkhoff_real_format_sample(self, tmp_path):
        (tmp_path / "b.dat").write_text(
            "newpoint 0 0 1 0 100.5 200.5 5 101 201\n"
            "point 0 1 1 1 101.0 201.0 5 102 202\n"
            "disappearpoint 0 2 1 2 102.0 202.0 0 102 202\n"
        )
        loaded = read_brinkhoff(tmp_path / "b.dat", tick_h=1.0 / 60.0)
        assert len(loaded) == 1
        trace = loaded.trajectories[0]
        assert len(trace) == 3
        assert trace.duration_h == pytest.approx(2.0 / 60.0)

    def test_brinkhoff_bad_kind(self, tmp_path):
        (tmp_path / "b.dat").write_text("teleport 0 0 1 0 1 1 0 1 1\n")
        with pytest.raises(ValueError, match="unknown record kind"):
            read_brinkhoff(tmp_path / "b.dat")

    def test_plt_parsing(self, tmp_path):
        header = "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n0,2,255,My Track,0,0,2,8421376\n0\n"
        rows = (
            "39.906631,116.385564,0,492,39882.0,2009-03-10,00:00:00\n"
            "39.907000,116.386000,0,492,39882.000694,2009-03-10,00:01:00\n"
        )
        (tmp_path / "t.plt").write_text(header + rows)
        trace = read_plt(tmp_path / "t.plt", object_id=7)
        assert trace.object_id == 7
        assert len(trace) == 2
        assert trace.start_time_h == 0.0
        assert trace.duration_h == pytest.approx(1.0 / 60.0, rel=1e-3)
        # ~55 m between the fixes.
        assert trace.length_km == pytest.approx(0.055, abs=0.02)

    def test_plt_empty_rejected(self, tmp_path):
        (tmp_path / "t.plt").write_text("h\nh\nh\nh\nh\nh\n")
        with pytest.raises(ValueError, match="no fixes"):
            read_plt(tmp_path / "t.plt")

    def test_csv_round_trip(self, tmp_path, dataset):
        path = tmp_path / "traces.csv"
        write_trajectories_csv(dataset, path)
        loaded = read_trajectories_csv(path)
        assert len(loaded) == len(dataset)
        assert loaded.total_points() == dataset.total_points()

    def test_csv_missing_column(self, tmp_path):
        (tmp_path / "bad.csv").write_text("object_id,time_h\n0,1\n")
        with pytest.raises(ValueError, match="missing CSV columns"):
            read_trajectories_csv(tmp_path / "bad.csv")


class TestSolarIo:
    def test_round_trip(self, tmp_path):
        series = {
            0: generate_solar_series(SolarProfile(10.0), seed=1),
            3: generate_solar_series(SolarProfile(25.0), seed=2),
        }
        path = tmp_path / "cdgs.csv"
        write_solar_csv(series, path)
        loaded = read_solar_csv(path)
        assert set(loaded) == {0, 3}
        for site_id, original in series.items():
            assert loaded[site_id].values_kw == pytest.approx(original.values_kw)

    def test_unsorted_rows_reordered(self, tmp_path):
        (tmp_path / "s.csv").write_text(
            "site_id,interval_start_h,kw\n0,0.25,2.0\n0,0.0,1.0\n"
        )
        loaded = read_solar_csv(tmp_path / "s.csv")
        assert loaded[0].values_kw == (1.0, 2.0)

    def test_gap_detected(self, tmp_path):
        (tmp_path / "s.csv").write_text(
            "site_id,interval_start_h,kw\n0,0.0,1.0\n0,0.75,2.0\n"
        )
        with pytest.raises(ValueError, match="gap"):
            read_solar_csv(tmp_path / "s.csv")

    def test_empty_rejected(self, tmp_path):
        (tmp_path / "s.csv").write_text("site_id,interval_start_h,kw\n")
        with pytest.raises(ValueError, match="no readings"):
            read_solar_csv(tmp_path / "s.csv")
