"""UI rendering tests: HTML map writer and text table renderer."""

import pytest

from repro.core.baselines import BruteForceRanker
from repro.core.ranking import run_over_trip
from repro.ui.map_html import render_offering_map, write_offering_map
from repro.ui.table_render import render_offering_table, render_run_summary


@pytest.fixture(scope="module")
def run(small_environment, sample_trip):
    return run_over_trip(
        BruteForceRanker(small_environment, k=3), small_environment, sample_trip
    )


class TestMapHtml:
    def test_render_is_self_contained_html(self, small_environment, sample_trip, run):
        html = render_offering_map(
            small_environment.network, sample_trip, run.tables, title="Test <Map>"
        )
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "</svg>" in html
        assert "http://" not in html and "https://" not in html  # no external assets
        assert "Test &lt;Map&gt;" in html  # title escaped

    def test_all_offered_chargers_drawn(self, small_environment, sample_trip, run):
        html = render_offering_map(small_environment.network, sample_trip, run.tables)
        circles = html.count('<circle class="charger"')
        expected = sum(len(t) for t in run.tables)
        assert circles == expected

    def test_trip_polyline_present(self, small_environment, sample_trip, run):
        html = render_offering_map(small_environment.network, sample_trip, run.tables)
        assert html.count('<polyline class="trip"') == 1

    def test_write_creates_file(self, tmp_path, small_environment, sample_trip, run):
        path = write_offering_map(
            tmp_path / "map.html", small_environment.network, sample_trip, run.tables
        )
        assert path.exists()
        assert path.read_text().startswith("<!DOCTYPE html>")

    def test_caption_mentions_counts(self, small_environment, sample_trip, run):
        html = render_offering_map(small_environment.network, sample_trip, run.tables)
        assert f"{len(run.tables)} segment(s)" in html


class TestTableRender:
    def test_table_lists_all_entries(self, run):
        table = run.tables[0]
        text = render_offering_table(table)
        for entry in table:
            assert f"b{entry.charger_id}" in text
        assert "SC_min" in text and "SC_max" in text

    def test_custom_title(self, run):
        text = render_offering_table(run.tables[0], title="Custom")
        assert text.splitlines()[0] == "Custom"

    def test_clock_formatting(self, run):
        text = render_offering_table(run.tables[0])
        assert ":" in text  # HH:MM somewhere

    def test_run_summary_one_line_per_table(self, run):
        summary = render_run_summary(run.tables)
        # Header plus one line per segment.
        assert len(summary.splitlines()) == 1 + len(run.tables)
        assert "computed" in summary

    def test_run_summary_empty_table(self, small_environment, sample_trip):
        from repro.core.offering import build_table
        from repro.spatial.geometry import Point

        empty = build_table(0, Point(0, 0), 10.0, 5.0, [])
        summary = render_run_summary([empty])
        assert "(empty)" in summary
