"""Offering Table structure tests."""

import pytest

from repro.chargers.charger import Charger
from repro.core.intervals import Interval
from repro.core.offering import OfferingEntry, OfferingTable, build_table
from repro.core.scoring import ScScore
from repro.spatial.geometry import Point


def _charger(cid):
    return Charger(charger_id=cid, point=Point(cid, 0), node_id=0, rate_kw=11.0)


def _row(cid, sc=0.5):
    iv = Interval(0.3, 0.6)
    return (ScScore(cid, sc, sc + 0.1), _charger(cid), iv, iv, iv, 10.0)


def _table(n=3, adapted_from=None):
    return build_table(
        segment_index=2,
        origin=Point(1, 1),
        generated_at_h=10.0,
        radius_km=25.0,
        ranked=[_row(i) for i in range(n)],
        adapted_from=adapted_from,
    )


class TestOfferingTable:
    def test_build_assigns_sequential_ranks(self):
        table = _table(4)
        assert [e.rank for e in table] == [1, 2, 3, 4]

    def test_len_and_iteration(self):
        table = _table(3)
        assert len(table) == 3
        assert [e.charger_id for e in table] == [0, 1, 2]

    def test_best(self):
        assert _table(3).best.rank == 1

    def test_empty_table(self):
        table = _table(0)
        assert table.best is None
        assert len(table) == 0
        assert table.charger_ids() == []

    def test_bad_rank_order_rejected(self):
        entry = OfferingEntry(
            rank=2,
            charger=_charger(0),
            score=ScScore(0, 0.5, 0.6),
            sustainable=Interval.exact(0.5),
            availability=Interval.exact(0.5),
            derouting=Interval.exact(0.5),
            eta_h=10.0,
        )
        with pytest.raises(ValueError):
            OfferingTable(
                segment_index=0,
                origin=Point(0, 0),
                generated_at_h=10.0,
                radius_km=25.0,
                entries=(entry,),
            )

    def test_adapted_flag(self):
        assert not _table().is_adapted
        adapted = _table(adapted_from=1)
        assert adapted.is_adapted and adapted.adapted_from == 1

    def test_top(self):
        table = _table(5)
        assert [e.charger_id for e in table.top(2)] == [0, 1]
        assert table.top(99) == table.entries
        with pytest.raises(ValueError):
            table.top(-1)

    def test_get(self):
        table = _table(3)
        assert table.get(1).charger_id == 1
        assert table.get(42) is None

    def test_charger_ids(self):
        assert _table(3).charger_ids() == [0, 1, 2]
