"""ALT landmark routing tests, cross-validated against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.network.builders import NetworkSpec, build_city_network
from repro.network.graph import EdgeWeight
from repro.network.landmarks import LandmarkSet, alt_astar, select_landmarks
from repro.network.shortest_path import dijkstra


@pytest.fixture(scope="module")
def city():
    return build_city_network(NetworkSpec(width_km=18, height_km=14, seed=55))


@pytest.fixture(scope="module")
def landmarks(city):
    return select_landmarks(city, count=4)


class TestSelection:
    def test_landmark_count(self, landmarks):
        assert len(landmarks.landmark_ids) == 4
        assert len(set(landmarks.landmark_ids)) == 4

    def test_landmarks_spread_out(self, city, landmarks):
        """Farthest-point selection should not cluster landmarks."""
        points = [city.node(lm).point for lm in landmarks.landmark_ids]
        bounds = city.bounds()
        min_gap = min(
            a.distance_to(b) for i, a in enumerate(points) for b in points[i + 1 :]
        )
        assert min_gap > min(bounds.width, bounds.height) / 4

    def test_count_clamped(self, city):
        few = select_landmarks(city, count=10_000)
        assert len(few.landmark_ids) <= city.node_count

    def test_validation(self, city):
        with pytest.raises(ValueError):
            select_landmarks(city, count=0)


class TestLowerBound:
    def test_admissible(self, city, landmarks):
        """The ALT bound never exceeds the true shortest distance."""
        rng = np.random.default_rng(1)
        nodes = list(city.node_ids())
        for __ in range(20):
            s, t = rng.choice(nodes, size=2, replace=False)
            true = dijkstra(city, int(s), int(t)).cost
            assert landmarks.lower_bound(int(s), int(t)) <= true + 1e-9

    def test_tighter_than_euclidean_somewhere(self, city, landmarks):
        """ALT's selling point: the bound beats straight-line distance on
        at least some pairs (roads wiggle, landmarks know it)."""
        rng = np.random.default_rng(2)
        nodes = list(city.node_ids())
        wins = 0
        for __ in range(50):
            s, t = rng.choice(nodes, size=2, replace=False)
            euclid = city.node(int(s)).point.distance_to(city.node(int(t)).point)
            if landmarks.lower_bound(int(s), int(t)) > euclid + 1e-9:
                wins += 1
        assert wins > 0

    def test_zero_for_same_node(self, city, landmarks):
        node = next(city.node_ids())
        assert landmarks.lower_bound(node, node) == pytest.approx(0.0)


class TestAltAstar:
    def test_matches_dijkstra(self, city, landmarks):
        rng = np.random.default_rng(3)
        nodes = list(city.node_ids())
        for __ in range(15):
            s, t = rng.choice(nodes, size=2, replace=False)
            alt = alt_astar(city, int(s), int(t), landmarks)
            plain = dijkstra(city, int(s), int(t))
            assert alt.cost == pytest.approx(plain.cost)

    def test_matches_networkx(self, city, landmarks):
        """Independent oracle: networkx Dijkstra on the same graph."""
        graph = nx.DiGraph()
        for edge in city.edges():
            graph.add_edge(edge.source, edge.target, weight=edge.length_km)
        rng = np.random.default_rng(4)
        nodes = list(city.node_ids())
        for __ in range(10):
            s, t = rng.choice(nodes, size=2, replace=False)
            want = nx.shortest_path_length(graph, int(s), int(t), weight="weight")
            got = alt_astar(city, int(s), int(t), landmarks).cost
            assert got == pytest.approx(want)

    def test_travel_time_tables(self, city):
        """ALT works for any weight as long as tables match it."""
        landmarks = select_landmarks(city, count=3, weight=EdgeWeight.TRAVEL_TIME_H)
        rng = np.random.default_rng(5)
        nodes = list(city.node_ids())
        for __ in range(8):
            s, t = rng.choice(nodes, size=2, replace=False)
            got = alt_astar(city, int(s), int(t), landmarks, EdgeWeight.TRAVEL_TIME_H)
            want = dijkstra(city, int(s), int(t), EdgeWeight.TRAVEL_TIME_H)
            assert got.cost == pytest.approx(want.cost)
