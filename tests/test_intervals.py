"""Unit and property tests for interval arithmetic (the EC foundation)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.intervals import Interval, hull_of, weighted_sum

vals = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


@st.composite
def intervals(draw):
    a, b = sorted((draw(vals), draw(vals)))
    return Interval(a, b)


class TestConstruction:
    def test_reversed_bounds_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Interval(math.nan, 1.0)

    def test_exact(self):
        iv = Interval.exact(3.0)
        assert iv.is_exact and iv.lo == iv.hi == 3.0

    def test_around(self):
        iv = Interval.around(5.0, 2.0)
        assert (iv.lo, iv.hi) == (3.0, 7.0)

    def test_around_negative_half_width(self):
        with pytest.raises(ValueError):
            Interval.around(0.0, -1.0)

    def test_width_and_midpoint(self):
        iv = Interval(1.0, 4.0)
        assert iv.width == 3.0
        assert iv.midpoint == 2.5


class TestArithmetic:
    def test_addition(self):
        assert Interval(1, 2) + Interval(3, 5) == Interval(4, 7)

    def test_scalar_addition_commutes(self):
        assert Interval(1, 2) + 1.5 == 1.5 + Interval(1, 2) == Interval(2.5, 3.5)

    def test_subtraction(self):
        assert Interval(1, 2) - Interval(0, 1) == Interval(0, 2)

    def test_multiplication_mixed_signs(self):
        assert Interval(-2, 3) * Interval(-1, 2) == Interval(-4, 6)

    def test_scalar_multiplication_negative(self):
        assert Interval(1, 2) * -2 == Interval(-4, -2)

    def test_negation(self):
        assert -Interval(1, 3) == Interval(-3, -1)

    def test_complement_to_one(self):
        assert Interval(0.2, 0.5).complement_to_one() == Interval(0.5, 0.8)

    @given(intervals(), intervals(), vals)
    def test_addition_containment(self, a, b, _):
        """x in a and y in b implies x + y in a + b (soundness)."""
        total = a + b
        assert a.lo + b.lo in total
        assert a.hi + b.hi in total
        assert a.midpoint + b.midpoint in total

    @given(intervals(), intervals())
    def test_multiplication_containment(self, a, b):
        prod = a * b
        for x in (a.lo, a.midpoint, a.hi):
            for y in (b.lo, b.midpoint, b.hi):
                assert prod.lo - 1e-6 <= x * y <= prod.hi + 1e-6

    @given(intervals())
    def test_double_negation(self, iv):
        assert -(-iv) == iv


class TestSetOperations:
    def test_intersection_overlap(self):
        assert Interval(0, 2).intersection(Interval(1, 3)) == Interval(1, 2)

    def test_intersection_disjoint(self):
        assert Interval(0, 1).intersection(Interval(2, 3)) is None

    def test_intersection_touching(self):
        assert Interval(0, 1).intersection(Interval(1, 2)) == Interval(1, 1)

    def test_hull(self):
        assert Interval(0, 1).hull(Interval(3, 4)) == Interval(0, 4)

    def test_intersects(self):
        assert Interval(0, 2).intersects(Interval(2, 4))
        assert not Interval(0, 1).intersects(Interval(1.1, 4))

    def test_certainly_ordering(self):
        assert Interval(0, 1).certainly_less_than(Interval(2, 3))
        assert not Interval(0, 2.5).certainly_less_than(Interval(2, 3))
        assert Interval(2, 3).certainly_greater_than(Interval(0, 1))

    @given(intervals(), intervals())
    def test_intersection_commutes(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(intervals(), intervals())
    def test_hull_contains_both(self, a, b):
        hull = a.hull(b)
        for x in (a.lo, a.hi, b.lo, b.hi):
            assert x in hull

    @given(intervals(), intervals())
    def test_intersection_within_hull(self, a, b):
        overlap = a.intersection(b)
        if overlap is not None:
            hull = a.hull(b)
            assert overlap.lo >= hull.lo and overlap.hi <= hull.hi


class TestNormalisationHelpers:
    def test_clamp(self):
        assert Interval(-0.5, 1.5).clamp() == Interval(0.0, 1.0)

    def test_clamp_bad_bounds(self):
        with pytest.raises(ValueError):
            Interval(0, 1).clamp(1.0, 0.0)

    def test_scaled_by_max(self):
        assert Interval(1, 3).scaled_by_max(4.0) == Interval(0.25, 0.75)

    def test_scaled_by_nonpositive_max_is_zero(self):
        assert Interval(1, 3).scaled_by_max(0.0) == Interval.exact(0.0)

    def test_widened(self):
        iv = Interval(1.0, 3.0).widened(0.5)  # width 2 -> margin 0.5 each side
        assert iv == Interval(0.5, 3.5)

    def test_widened_exact_stays_exact(self):
        assert Interval.exact(2.0).widened(1.0) == Interval.exact(2.0)

    def test_widened_negative_factor(self):
        with pytest.raises(ValueError):
            Interval(0, 1).widened(-0.1)

    @given(intervals(), st.floats(min_value=0, max_value=3, allow_nan=False))
    def test_widened_contains_original(self, iv, factor):
        wide = iv.widened(factor)
        assert wide.lo <= iv.lo and wide.hi >= iv.hi


class TestAggregates:
    def test_weighted_sum(self):
        total = weighted_sum([(Interval(0, 1), 0.5), (Interval(2, 2), 0.5)])
        assert total == Interval(1.0, 1.5)

    def test_weighted_sum_empty(self):
        assert weighted_sum([]) == Interval.exact(0.0)

    def test_hull_of(self):
        assert hull_of([Interval(0, 1), Interval(5, 6), Interval(-1, 0)]) == Interval(-1, 6)

    def test_hull_of_empty_raises(self):
        with pytest.raises(ValueError):
            hull_of([])
