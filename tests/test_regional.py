"""Regional weather model tests."""

import pytest

from repro.estimation.regional import RegionalWeatherModel
from repro.estimation.weather import ATTENUATION
from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import Point

BOUNDS = BoundingBox(0.0, 0.0, 120.0, 60.0)


@pytest.fixture(scope="module")
def regional():
    return RegionalWeatherModel(BOUNDS, zones_x=4, zones_y=2, seed=3)


class TestRegionalWeather:
    def test_zone_count(self, regional):
        assert regional.zone_count == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            RegionalWeatherModel(BOUNDS, zones_x=0)

    def test_deterministic(self):
        a = RegionalWeatherModel(BOUNDS, seed=5)
        b = RegionalWeatherModel(BOUNDS, seed=5)
        for t in (8.0, 13.0, 30.0):
            assert a.attenuation_at(t, Point(10, 10)) == b.attenuation_at(t, Point(10, 10))

    def test_locations_can_differ(self, regional):
        """Across a 120 km map, far apart locations see different skies at
        least sometimes over a day."""
        west, east = Point(5.0, 30.0), Point(115.0, 30.0)
        diffs = [
            abs(regional.attenuation_at(t, west) - regional.attenuation_at(t, east))
            for t in range(24)
        ]
        assert max(diffs) > 0.05

    def test_attenuation_within_physical_range(self, regional):
        lo = min(ATTENUATION.values())
        hi = max(ATTENUATION.values())
        for t in range(0, 48, 3):
            for loc in (Point(1, 1), Point(60, 30), Point(119, 59)):
                assert lo - 1e-9 <= regional.attenuation_at(t, loc) <= hi + 1e-9

    def test_blending_is_continuous(self, regional):
        """Adjacent probes differ by a bounded amount (no cliff at zone
        borders)."""
        t = 13.0
        values = [regional.attenuation_at(t, Point(x, 30.0)) for x in range(0, 121, 2)]
        steps = [abs(a - b) for a, b in zip(values, values[1:])]
        assert max(steps) < 0.25

    def test_forecast_contains_truth(self, regional):
        loc = Point(40.0, 20.0)
        truth = regional.attenuation_at(14.0, loc)
        forecast = regional.forecast(14.0, now_h=9.0, location=loc)
        assert truth in forecast.attenuation

    def test_zero_horizon_exact(self, regional):
        forecast = regional.forecast(9.0, now_h=9.0, location=Point(10, 10))
        assert forecast.attenuation.is_exact

    def test_default_location_is_centre(self, regional):
        centre = BOUNDS.center
        assert regional.attenuation_at(13.0) == pytest.approx(
            regional.attenuation_at(13.0, centre)
        )

    def test_window_attenuation_hulls(self, regional):
        loc = Point(50, 25)
        window = regional.window_attenuation(10.0, 14.0, now_h=9.0, location=loc)
        for h in (10.5, 12.5):
            f = regional.forecast(h, 9.0, loc).attenuation
            assert window.lo <= f.lo and window.hi >= f.hi

    def test_window_validation(self, regional):
        with pytest.raises(ValueError):
            regional.window_attenuation(14.0, 10.0, 9.0)
