"""CLI smoke tests for both entry points (tiny workloads)."""

import pytest

import repro.__main__ as cli
from repro.experiments.__main__ import main as experiments_main


class TestDemoCli:
    def test_demo_runs(self, capsys):
        assert cli.main(["demo", "--scale", "0.08", "--k", "2", "--radius", "15"]) == 0
        out = capsys.readouterr().out
        assert "Offering Tables" in out
        assert "ecocharge" in out and "brute-force" in out

    def test_simulate_runs(self, capsys):
        assert cli.main(
            ["simulate", "--scale", "0.08", "--vehicles", "2", "--radius", "15"]
        ) == 0
        out = capsys.readouterr().out
        assert "Simulated 2 vehicles" in out

    def test_scenarios_runs(self, capsys):
        assert cli.main(["scenarios", "--scale", "0.08", "--radius", "15"]) == 0
        out = capsys.readouterr().out
        assert "taxi-idle" in out and "shopping-trip" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["frobnicate"])

    def test_dataset_choice_validated(self):
        with pytest.raises(SystemExit):
            cli.main(["demo", "--dataset", "mars"])


class TestExperimentsCli:
    def test_figure6_tiny_run(self, capsys):
        assert experiments_main(
            ["figure6", "--trips", "1", "--reps", "1", "--scale", "0.05", "--k", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "brute-force" in out

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["figure99"])
