"""Cross-cutting semantic invariants of the scoring and estimation stack.

These are the properties a reviewer would check the maths against:
dominance monotonicity of the SC score, conservation in the session
simulator, and consistency between the interval machinery and the
paper's equations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval
from repro.core.scoring import (
    ABLATION_CONFIGS,
    ComponentScores,
    Weights,
    intersect_top_k,
    sc_exact,
    sc_score,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def unit_interval(draw):
    a, b = sorted((draw(unit), draw(unit)))
    return Interval(a, b)


def _improved(iv: Interval, delta: float) -> Interval:
    """Shift both endpoints toward 1 by ``delta`` of their headroom.

    The map ``x -> x + delta * (1 - x)`` is monotone in exact arithmetic
    but not under float rounding (e.g. lo=0.18, hi=0.25,
    delta=0.9999999999999999 rounds lo to 1.0 and hi just below it), so
    the endpoints are re-ordered before constructing the interval.
    """
    lo = min(1.0, iv.lo + delta * (1 - iv.lo))
    hi = min(1.0, iv.hi + delta * (1 - iv.hi))
    return Interval(min(lo, hi), max(lo, hi))


class TestScoreDominance:
    @settings(max_examples=80)
    @given(unit_interval(), unit_interval(), unit_interval(), unit, unit, unit)
    def test_better_components_never_score_lower(self, l_iv, a_iv, d_iv, dl, da, dd):
        """If charger B is at least as sustainable, at least as available,
        and at most as costly to reach as charger A — interval endpoints
        shifted the favourable way — B's scenario scores dominate A's
        under any weight configuration."""
        a = ComponentScores(0, l_iv, a_iv, d_iv)
        better = ComponentScores(
            1,
            _improved(l_iv, dl),
            _improved(a_iv, da),
            Interval(d_iv.lo * (1 - dd), d_iv.hi * (1 - dd)),
        )
        for weights in ABLATION_CONFIGS.values():
            score_a = sc_score(a, weights)
            score_b = sc_score(better, weights)
            assert score_b.sc_min >= score_a.sc_min - 1e-9
            assert score_b.sc_max >= score_a.sc_max - 1e-9

    @settings(max_examples=80)
    @given(unit, unit, unit)
    def test_exact_components_bridge_interval_and_point_scores(self, l, a, d):
        """Point-valued components: the scenario scores collapse onto the
        oracle formula ``sc_exact`` (the two code paths must agree)."""
        comp = ComponentScores(0, Interval.exact(l), Interval.exact(a), Interval.exact(d))
        for weights in ABLATION_CONFIGS.values():
            score = sc_score(comp, weights)
            want = sc_exact(l, a, d, weights)
            assert score.sc_min == pytest.approx(want)
            assert score.sc_max == pytest.approx(want)

    @settings(max_examples=60)
    @given(
        st.lists(st.tuples(unit, unit, unit), min_size=2, max_size=20),
        st.integers(min_value=1, max_value=5),
    )
    def test_exact_scores_make_intersection_a_plain_topk(self, rows, k):
        """With exact components the Eq. 6 intersection degenerates to the
        ordinary top-k by score."""
        comps = [
            ComponentScores(i, Interval.exact(l), Interval.exact(a), Interval.exact(d))
            for i, (l, a, d) in enumerate(rows)
        ]
        scores = [sc_score(c, Weights.equal()) for c in comps]
        chosen = {s.charger_id for s in intersect_top_k(scores, k)}
        plain = sorted(scores, key=lambda s: (-s.sc_max, s.charger_id))[:k]
        assert chosen == {s.charger_id for s in plain}


class TestSessionConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=0.25, max_value=4.0),
        st.floats(min_value=6.0, max_value=20.0),
    )
    def test_energy_conservation_and_bounds(self, soc, duration, start_h):
        """Sessions never overfill the battery, never deliver negative
        energy, and delivered + curtailed never exceeds what the sun
        physically produced over the window."""
        from repro.chargers.charger import Charger, Vehicle
        from repro.chargers.registry import ChargerRegistry
        from repro.chargers.session import ChargingSessionSimulator
        from repro.chargers.solar import SolarProfile
        from repro.estimation.sustainable import SustainableChargingEstimator
        from repro.estimation.weather import WeatherModel
        from repro.spatial.geometry import Point

        charger = Charger(0, Point(0, 0), 0, rate_kw=22.0, solar_capacity_kw=30.0)
        registry = ChargerRegistry([charger])
        estimator = SustainableChargingEstimator(registry, WeatherModel(seed=1))
        simulator = ChargingSessionSimulator(estimator)
        vehicle = Vehicle(0, battery_kwh=40.0, state_of_charge=soc)
        result = simulator.simulate(charger, vehicle, start_h, duration)
        assert result.energy_kwh >= 0.0
        assert result.final_soc <= 1.0 + 1e-9
        assert result.final_soc >= soc - 1e-9
        # Physical production over the window bounds delivery + curtailment.
        produced = sum(
            estimator.true_power_kw(charger, start_h + 0.25 * i) * 0.25
            for i in range(int(duration / 0.25) + 1)
        )
        assert result.energy_kwh + result.curtailed_kwh <= produced + 0.25 * 30.0


class TestForecastSoundness:
    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=72.0),
        st.integers(min_value=0, max_value=5),
    )
    def test_weather_forecast_always_contains_truth(self, now, horizon, seed):
        from repro.estimation.weather import WeatherModel

        model = WeatherModel(seed=seed)
        target = now + horizon
        forecast = model.forecast(target, now)
        assert model.attenuation_at(target) in forecast.attenuation

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=48.0),
    )
    def test_traffic_interval_always_contains_truth(self, now, horizon):
        from repro.estimation.traffic import TrafficModel
        from repro.network.graph import RoadEdge

        model = TrafficModel(seed=2)
        edge = RoadEdge(3, 4, 1.2, 60.0)
        target = now + horizon
        interval = model.multiplier_interval(edge, target, now)
        assert model.multiplier(edge, target) in interval
        assert interval.lo >= 1.0
