"""ChargingEnvironment tests: forecast vs oracle views."""

import pytest

from repro.core.environment import ChargingEnvironment


class TestScorePool:
    def test_one_score_per_charger(self, small_environment, sample_trip):
        segment = sample_trip.segments()[0]
        pool = small_environment.registry.all()[:10]
        scores = small_environment.score_pool(segment, pool, eta_h=10.5, now_h=10.0)
        assert [s.charger_id for s in scores] == [c.charger_id for c in pool]

    def test_all_components_normalised(self, small_environment, sample_trip):
        segment = sample_trip.segments()[0]
        scores = small_environment.score_pool(
            segment, small_environment.registry.all(), eta_h=10.5, now_h=10.0
        )
        for comp in scores:
            for iv in (comp.sustainable, comp.availability, comp.derouting):
                assert 0.0 <= iv.lo <= iv.hi <= 1.0

    def test_budget_saturates_far_chargers(self, small_environment, sample_trip):
        segment = sample_trip.segments()[0]
        pool = small_environment.registry.all()
        tight = small_environment.score_pool(
            segment, pool, eta_h=10.5, now_h=10.0, search_budget_h=1e-9
        )
        assert all(c.derouting.hi == 1.0 for c in tight)


class TestOracleView:
    def test_truth_within_forecast(self, small_environment, sample_trip):
        """The defining EC property: every forecast interval contains the
        ground truth it estimates."""
        segments = sample_trip.segments()
        segment, nxt = segments[0], segments[1]
        pool = small_environment.registry.all()[:20]
        eta = 10.5
        forecast = small_environment.score_pool(
            segment, pool, eta_h=eta, now_h=10.0, next_segment=nxt
        )
        truths = small_environment.true_components_pool(segment, pool, eta, nxt)
        for comp in forecast:
            truth = truths[comp.charger_id]
            assert comp.sustainable.lo - 1e-9 <= truth.sustainable <= comp.sustainable.hi + 1e-9
            assert comp.availability.lo - 1e-9 <= truth.availability <= comp.availability.hi + 1e-9
            assert comp.derouting.lo - 1e-9 <= truth.derouting <= comp.derouting.hi + 1e-9

    def test_pool_matches_single(self, small_environment, sample_trip):
        segments = sample_trip.segments()
        segment, nxt = segments[0], segments[1]
        pool = small_environment.registry.all()[:5]
        batch = small_environment.true_components_pool(segment, pool, 10.5, nxt)
        for charger in pool:
            single = small_environment.true_components(segment, charger, 10.5, nxt)
            got = batch[charger.charger_id]
            assert got.sustainable == pytest.approx(single.sustainable)
            assert got.availability == pytest.approx(single.availability)
            assert got.derouting == pytest.approx(single.derouting, abs=1e-9)

    def test_truth_values_in_unit_range(self, small_environment, sample_trip):
        segment = sample_trip.segments()[0]
        truths = small_environment.true_components_pool(
            segment, small_environment.registry.all(), 13.0
        )
        for truth in truths.values():
            assert 0.0 <= truth.sustainable <= 1.0
            assert 0.0 <= truth.availability <= 1.0
            assert 0.0 <= truth.derouting <= 1.0


class TestConstruction:
    def test_defaults_built(self, small_network, small_registry):
        env = ChargingEnvironment(small_network, small_registry, seed=1)
        assert env.weather is not None and env.traffic is not None

    def test_invalid_window(self, small_network, small_registry):
        with pytest.raises(ValueError):
            ChargingEnvironment(small_network, small_registry, charging_window_h=0.0)

    def test_seed_controls_estimators(self, small_network, small_registry, sample_trip):
        a = ChargingEnvironment(small_network, small_registry, seed=1)
        b = ChargingEnvironment(small_network, small_registry, seed=2)
        segment = sample_trip.segments()[0]
        charger = small_registry.all()[0]
        availability_a = a.availability.true_availability(charger, 13.0)
        availability_b = b.availability.true_availability(charger, 13.0)
        assert availability_a != availability_b  # different busy timetables
