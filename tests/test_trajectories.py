"""Trajectory substrate tests: traces, Brinkhoff generator, GPS pipeline."""

import numpy as np
import pytest

from repro.network.builders import build_grid_network
from repro.network.path import Trip
from repro.spatial.geometry import Point
from repro.trajectories.brinkhoff import (
    DEFAULT_CLASSES,
    GeneratorSpec,
    ObjectClass,
    generate_dataset,
    generate_trip,
    trip_to_trajectory,
)
from repro.trajectories.gps import GpsNoiseSpec, MapMatcher, degrade
from repro.trajectories.trajectory import Trajectory, TrajectoryDataset, TrajectoryPoint


def _fixes(*pairs):
    return tuple(TrajectoryPoint(t, Point(x, y)) for t, (x, y) in pairs)


class TestTrajectory:
    TRACE = Trajectory(
        1, _fixes((0.0, (0, 0)), (1.0, (4, 0)), (2.0, (4, 3)))
    )

    def test_length_and_duration(self):
        assert self.TRACE.length_km == pytest.approx(7.0)
        assert self.TRACE.duration_h == 2.0

    def test_average_speed(self):
        assert self.TRACE.average_speed_kmh() == pytest.approx(3.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(1, ())

    def test_unordered_times_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(1, _fixes((1.0, (0, 0)), (0.5, (1, 1))))

    def test_position_interpolation(self):
        assert self.TRACE.position_at(0.5) == Point(2.0, 0.0)
        assert self.TRACE.position_at(1.5) == Point(4.0, 1.5)

    def test_position_clamps(self):
        assert self.TRACE.position_at(-1.0) == Point(0, 0)
        assert self.TRACE.position_at(99.0) == Point(4, 3)

    def test_sliced(self):
        part = self.TRACE.sliced(0.5, 1.5)
        assert part.start_time_h >= 0.5 and part.end_time_h <= 1.5
        assert len(part) == 1  # only the 1.0 fix lies fully inside

    def test_sliced_empty_window_keeps_interpolated_fix(self):
        part = self.TRACE.sliced(0.25, 0.30)
        assert len(part) == 1
        assert part.fixes[0].time_h == 0.25

    def test_sliced_validation(self):
        with pytest.raises(ValueError):
            self.TRACE.sliced(2.0, 1.0)

    def test_instantaneous_speed_zero(self):
        single = Trajectory(1, _fixes((1.0, (0, 0))))
        assert single.average_speed_kmh() == 0.0


class TestTrajectoryDataset:
    def test_aggregates(self):
        ds = TrajectoryDataset(
            "x",
            (
                Trajectory(0, _fixes((0.0, (0, 0)), (1.0, (3, 4)))),
                Trajectory(1, _fixes((0.0, (0, 0)), (1.0, (0, 1)))),
            ),
        )
        assert len(ds) == 2
        assert ds.total_points() == 4
        assert ds.total_length_km() == pytest.approx(6.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TrajectoryDataset("x", ())

    def test_sample_deterministic(self):
        trajectories = tuple(
            Trajectory(i, _fixes((0.0, (i, 0)))) for i in range(20)
        )
        ds = TrajectoryDataset("x", trajectories)
        a = ds.sample(5, seed=1)
        b = ds.sample(5, seed=1)
        assert [t.object_id for t in a] == [t.object_id for t in b]
        assert len(a) == 5

    def test_sample_larger_than_size_is_identity(self):
        ds = TrajectoryDataset("x", (Trajectory(0, _fixes((0.0, (0, 0)))),))
        assert ds.sample(10) is ds


class TestBrinkhoffGenerator:
    @pytest.fixture(scope="class")
    def grid(self):
        return build_grid_network(8, 8, block_km=1.0, speed_kmh=50.0)

    def test_generate_trip_min_length(self, grid):
        rng = np.random.default_rng(0)
        trip = generate_trip(grid, rng, min_trip_km=5.0, departure_time_h=9.0)
        assert trip.length_km >= 5.0

    def test_trip_to_trajectory_times(self, grid):
        trip = Trip.route(grid, 0, 63, departure_time_h=9.0)
        trace = trip_to_trajectory(trip, object_id=3, report_interval_h=1 / 60)
        assert trace.start_time_h == 9.0
        # 14 km at 50 km/h.
        assert trace.duration_h == pytest.approx(14.0 / 50.0)
        assert trace.node_path == trip.node_ids

    def test_speed_factor_scales_duration(self, grid):
        trip = Trip.route(grid, 0, 63)
        slow = trip_to_trajectory(trip, 0, speed_factor=0.5)
        fast = trip_to_trajectory(trip, 0, speed_factor=2.0)
        assert slow.duration_h == pytest.approx(4 * fast.duration_h)

    def test_trajectory_follows_network(self, grid):
        trip = Trip.route(grid, 0, 63)
        trace = trip_to_trajectory(trip, 0)
        assert trace.fixes[0].point == grid.node(0).point
        assert trace.fixes[-1].point == grid.node(63).point

    def test_report_interval_densifies(self, grid):
        trip = Trip.route(grid, 0, 63)
        sparse = trip_to_trajectory(trip, 0, report_interval_h=1 / 10)
        dense = trip_to_trajectory(trip, 0, report_interval_h=1 / 120)
        assert len(dense) > len(sparse)

    def test_dataset_generation_deterministic(self, grid):
        spec = GeneratorSpec(object_count=5, seed=3)
        a = generate_dataset(grid, spec)
        b = generate_dataset(grid, spec)
        assert [t.node_path for t in a] == [t.node_path for t in b]

    def test_dataset_object_ids(self, grid):
        ds = generate_dataset(grid, GeneratorSpec(object_count=6, seed=1))
        assert [t.object_id for t in ds] == list(range(6))

    def test_class_shares_validation(self):
        with pytest.raises(ValueError):
            GeneratorSpec(classes=(ObjectClass("a", 1.0, 0.5),))

    def test_object_class_validation(self):
        with pytest.raises(ValueError):
            ObjectClass("bad", 0.0, 1.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            GeneratorSpec(object_count=0)
        with pytest.raises(ValueError):
            GeneratorSpec(report_interval_h=0.0)

    def test_default_classes_sum_to_one(self):
        assert sum(c.share for c in DEFAULT_CLASSES) == pytest.approx(1.0)


class TestGpsPipeline:
    @pytest.fixture(scope="class")
    def grid(self):
        return build_grid_network(8, 8, block_km=1.0, speed_kmh=50.0)

    @pytest.fixture(scope="class")
    def clean(self, grid):
        trip = Trip.route(grid, 0, 63, departure_time_h=9.0)
        return trip_to_trajectory(trip, object_id=0, report_interval_h=1 / 60)

    def test_degrade_preserves_endpoints_in_time(self, clean):
        noisy = degrade(clean, GpsNoiseSpec(seed=1))
        assert noisy.start_time_h == clean.start_time_h
        assert noisy.end_time_h == clean.end_time_h

    def test_degrade_adds_noise(self, clean):
        noisy = degrade(clean, GpsNoiseSpec(position_std_km=0.05, drop_rate=0.0, seed=1))
        moved = [
            a.point.distance_to(b.point)
            for a, b in zip(clean.fixes, noisy.fixes)
        ]
        assert max(moved) > 0.0

    def test_degrade_deterministic(self, clean):
        spec = GpsNoiseSpec(seed=5)
        assert degrade(clean, spec).fixes == degrade(clean, spec).fixes

    def test_drop_rate_thins(self, clean):
        thinned = degrade(clean, GpsNoiseSpec(drop_rate=0.5, seed=2))
        assert len(thinned) < len(clean)

    def test_resampling_changes_cadence(self, clean):
        resampled = degrade(
            clean, GpsNoiseSpec(resample_interval_h=1 / 20, drop_rate=0.0, seed=1)
        )
        gaps = [
            b.time_h - a.time_h for a, b in zip(resampled.fixes, resampled.fixes[1:])
        ]
        assert max(gaps) <= 1 / 20 + 1e-9

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            GpsNoiseSpec(position_std_km=-1.0)
        with pytest.raises(ValueError):
            GpsNoiseSpec(drop_rate=1.0)
        with pytest.raises(ValueError):
            GpsNoiseSpec(resample_interval_h=0.0)

    def test_map_matcher_snaps_to_nearest(self, grid):
        matcher = MapMatcher(grid)
        assert matcher.match_point(Point(3.1, 2.05)) == grid.nearest_node(
            Point(3.1, 2.05)
        ).node_id

    def test_match_recovers_clean_path(self, grid, clean):
        matcher = MapMatcher(grid)
        matched = matcher.match(clean)
        assert matched[0] == clean.node_path[0]
        assert matched[-1] == clean.node_path[-1]

    def test_match_to_path_is_routable(self, grid, clean):
        noisy = degrade(clean, GpsNoiseSpec(position_std_km=0.03, drop_rate=0.2, seed=3))
        matcher = MapMatcher(grid)
        path = matcher.match_to_path(noisy)
        assert len(path) >= 2
        for a, b in zip(path, path[1:]):
            assert grid.has_edge(a, b)

    def test_matcher_validation(self, grid):
        with pytest.raises(ValueError):
            MapMatcher(grid, candidate_k=0)
