"""The tier-1 lint gate: ``repro-check`` + strict typing on the core.

There is no external CI in the offline environment, so the pytest suite
*is* the gate: these tests fail the build whenever a rule violation or an
annotation gap lands in the checked packages.

The typing gate is layered (see ``docs/static_analysis.md``):

* the offline strict-annotation subset always runs, and
* the full ``mypy --strict`` (configured by ``[tool.mypy]`` in
  ``pyproject.toml``) runs whenever mypy is importable — it is not part
  of the baked-in offline toolchain, so that test skips there.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import check_annotations, check_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"

#: The strictly-typed surface: the packages [tool.mypy] names.
STRICT_TARGETS = (
    SRC / "intervals.py",
    SRC / "interval_array.py",
    SRC / "core",
    SRC / "spatial",
    SRC / "analysis",
    SRC / "observability",
)


def test_repro_check_passes_on_src() -> None:
    """All seventeen rules, zero violations, across the whole library tree."""
    report = check_paths([SRC])
    assert report.rules_run == (
        "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10",
        "R11", "R12", "R13", "R14", "R15", "R16", "R17",
    )
    assert report.ok, "repro-check violations:\n" + report.render_text()


def test_repro_check_passes_on_tests() -> None:
    report = check_paths([REPO_ROOT / "tests"])
    assert report.ok, "repro-check violations:\n" + report.render_text()


def test_repro_check_cli_matches_library_verdict() -> None:
    """`python -m repro.analysis src/repro tests` is the documented gate
    command; it must agree with the library API."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(SRC), str(REPO_ROOT / "tests")],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_strict_annotations_on_core_packages() -> None:
    """Offline ``disallow_untyped_defs`` subset of ``mypy --strict``."""
    violations = check_annotations(list(STRICT_TARGETS))
    rendered = "\n".join(v.render() for v in violations)
    assert not violations, f"strict-annotation gaps:\n{rendered}"


def test_mypy_strict_on_core_packages() -> None:
    """Full ``mypy --strict`` via the [tool.mypy] table, when available."""
    pytest.importorskip("mypy", reason="mypy not installed in this environment")
    from mypy import api as mypy_api

    stdout, stderr, status = mypy_api.run(
        ["--config-file", str(REPO_ROOT / "pyproject.toml"), *map(str, STRICT_TARGETS)]
    )
    assert status == 0, f"mypy --strict failed:\n{stdout}\n{stderr}"
