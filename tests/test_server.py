"""Server tier tests: simulated APIs, response cache, EIS, client, modes."""

import pytest

from repro.core.ecocharge import EcoChargeConfig
from repro.server.api import ApiUsage
from repro.server.cache import ResponseCache
from repro.server.client import EcoChargeClient
from repro.server.eis import EcoChargeInformationServer
from repro.server.modes import (
    LATENCY_MODELS,
    DeploymentMode,
    LatencyModel,
    compare_modes,
    simulate_mode,
)
from repro.spatial.geometry import Point


class TestResponseCache:
    def test_get_or_compute_caches(self):
        cache = ResponseCache(ttl_h=1.0)
        calls = []
        for __ in range(3):
            value = cache.get_or_compute("k", now_h=10.0, compute=lambda: calls.append(1) or 42)
        assert value == 42
        assert len(calls) == 1
        assert cache.stats.hits == 2 and cache.stats.misses == 1

    def test_ttl_expiry_recomputes(self):
        cache = ResponseCache(ttl_h=0.5)
        cache.get_or_compute("k", 10.0, lambda: "old")
        assert cache.get_or_compute("k", 11.0, lambda: "new") == "new"

    def test_spatial_key_buckets(self):
        a = ResponseCache.spatial_key("w", Point(1.0, 1.0), 10.0)
        b = ResponseCache.spatial_key("w", Point(1.5, 1.2), 10.1)
        c = ResponseCache.spatial_key("w", Point(9.0, 9.0), 10.0)
        assert a == b
        assert a != c

    def test_eviction_bounds_size(self):
        cache = ResponseCache(ttl_h=10.0, max_entries=5)
        for i in range(10):
            cache.put(("k", i), now_h=float(i), value=i)
        assert len(cache) == 5
        assert cache.stats.evictions == 5

    def test_eviction_drops_stalest(self):
        cache = ResponseCache(ttl_h=10.0, max_entries=2)
        cache.put("a", 1.0, "a")
        cache.put("b", 2.0, "b")
        cache.put("c", 3.0, "c")
        assert cache.get_or_compute("b", 3.0, lambda: "recomputed") == "b"

    def test_lru_reads_refresh_recency(self):
        cache = ResponseCache(ttl_h=10.0, max_entries=2)
        cache.put("hot", 1.0, "hot")
        cache.put("cold", 2.0, "cold")
        # Reading "hot" makes it the most recently *used* even though
        # "cold" was written later; the next insert must evict "cold".
        assert cache.lookup("hot", 3.0) is not None
        cache.put("new", 4.0, "new")
        assert cache.lookup("hot", 4.0) is not None
        assert cache.lookup("cold", 4.0) is None

    def test_get_or_compute_error_counted_not_cached(self):
        cache = ResponseCache(ttl_h=0.5)

        def boom():
            raise RuntimeError("upstream down")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", 10.0, boom)
        assert cache.stats.compute_errors == 1
        assert cache.stats.misses == 0  # an error is not a miss
        assert len(cache) == 0  # no placeholder was stored
        # The cache recovers: the next successful compute is stored.
        assert cache.get_or_compute("k", 10.0, lambda: 42) == 42

    def test_get_or_compute_error_retains_stale_entry(self):
        cache = ResponseCache(ttl_h=0.5)
        cache.get_or_compute("k", 10.0, lambda: "old")

        def boom():
            raise RuntimeError("upstream down")

        # Past the TTL the compute runs again; its failure must leave
        # the expired entry in place for the serve-stale error path.
        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", 11.0, boom)
        stale = cache.lookup_stale("k", 11.0, max_stale_h=2.0)
        assert stale is not None and stale.value == "old"
        assert stale.age_h == pytest.approx(1.0)

    def test_lookup_stale_respects_bound(self):
        cache = ResponseCache(ttl_h=0.5)
        cache.put("k", 10.0, "v")
        assert cache.lookup_stale("k", 13.0, max_stale_h=2.0) is None
        assert cache.lookup_stale("k", 13.0, max_stale_h=None) is not None
        assert cache.stats.stale_hits == 1

    def test_invalidate_older_than(self):
        cache = ResponseCache(ttl_h=0.5)
        cache.put("a", 1.0, "a")
        cache.put("b", 2.0, "b")
        assert cache.invalidate_older_than(2.0) == 1
        assert len(cache) == 1

    def test_clear(self):
        cache = ResponseCache()
        cache.put("a", 1.0, "a")
        cache.clear()
        assert len(cache) == 0 and cache.stats.misses == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResponseCache(ttl_h=0.0)
        with pytest.raises(ValueError):
            ResponseCache(max_entries=0)


class TestEis:
    @pytest.fixture()
    def eis(self, small_environment):
        return EcoChargeInformationServer(small_environment)

    def test_snapshot_contents(self, eis):
        snap = eis.region_snapshot(Point(5, 5), radius_km=6.0, eta_h=11.0, now_h=10.0)
        assert snap.charger_count > 0
        assert set(snap.availability) == {c.charger_id for c in snap.chargers}
        for charger in snap.chargers:
            assert charger.point.distance_to(Point(5, 5)) <= 6.0 + 1e-6

    def test_snapshot_cached_for_nearby_requests(self, eis):
        eis.region_snapshot(Point(5.0, 5.0), 6.0, eta_h=11.0, now_h=10.0)
        before = eis.usage.total
        eis.region_snapshot(Point(5.1, 5.1), 6.0, eta_h=11.05, now_h=10.0)
        assert eis.usage.total == before  # served from cache
        assert eis.upstream_calls_saved() >= 1

    def test_distinct_regions_hit_upstream(self, eis):
        eis.region_snapshot(Point(2, 2), 4.0, eta_h=11.0, now_h=10.0)
        before = eis.usage.total
        eis.region_snapshot(Point(12, 9), 4.0, eta_h=11.0, now_h=10.0)
        assert eis.usage.total > before

    def test_requests_counted(self, eis):
        eis.region_snapshot(Point(2, 2), 4.0, 11.0, 10.0)
        eis.region_snapshot(Point(2, 2), 4.0, 11.0, 10.0)
        assert eis.requests_served == 2

    def test_traffic_model_cached_per_slot(self, eis):
        a = eis.traffic_model(10.0)
        before = eis.usage.traffic_calls
        b = eis.traffic_model(10.1)  # same quarter-hour slot
        assert b is a and eis.usage.traffic_calls == before

    def test_api_usage_counter(self):
        usage = ApiUsage()
        usage.weather_calls += 2
        usage.busy_calls += 3
        assert usage.total == 5


class TestClient:
    def test_plan_trip_accounts_sessions(self, small_environment, sample_trip):
        eis = EcoChargeInformationServer(small_environment)
        client = EcoChargeClient(
            eis, EcoChargeConfig(k=3, radius_km=10.0, range_km=5.0)
        )
        run = client.plan_trip(sample_trip)
        stats = client.stats
        assert stats.tables_generated + stats.tables_adapted == len(run.tables)
        assert stats.snapshots_fetched == stats.tables_generated
        assert stats.payload_kb > 0

    def test_cache_benefit_positive(self, small_environment, sample_trip):
        eis = EcoChargeInformationServer(small_environment)
        client = EcoChargeClient(
            eis, EcoChargeConfig(k=3, radius_km=10.0, range_km=6.0)
        )
        client.plan_trip(sample_trip)
        assert client.stats.cache_benefit > 0.0

    def test_new_trip_resets_stats(self, small_environment, sample_trip):
        eis = EcoChargeInformationServer(small_environment)
        client = EcoChargeClient(eis, EcoChargeConfig(k=3, radius_km=10.0))
        client.plan_trip(sample_trip)
        first = client.stats.snapshots_fetched
        client.plan_trip(sample_trip)
        assert client.stats.snapshots_fetched == first  # not accumulated


class TestModes:
    def test_all_modes_report(self, small_environment, sample_trip):
        reports = compare_modes(
            small_environment, sample_trip, EcoChargeConfig(k=3, radius_km=10.0)
        )
        assert set(reports) == set(DeploymentMode)
        for report in reports.values():
            assert report.segments == len(sample_trip.segments())
            assert report.total_ms > 0

    def test_server_mode_fastest_compute(self, small_environment, sample_trip):
        config = EcoChargeConfig(k=3, radius_km=10.0)
        server = simulate_mode(small_environment, sample_trip, DeploymentMode.SERVER, config)
        edge = simulate_mode(small_environment, sample_trip, DeploymentMode.EDGE, config)
        # Phone-class compute is slower than datacenter compute.
        assert edge.compute_ms > server.compute_ms

    def test_custom_latency_model(self, small_environment, sample_trip):
        config = EcoChargeConfig(k=3, radius_km=10.0)
        offline = LatencyModel(round_trip_ms=0.0, per_kb_ms=0.0, compute_factor=1.0)
        report = simulate_mode(
            small_environment, sample_trip, DeploymentMode.EMBEDDED, config, offline
        )
        assert report.network_ms == 0.0

    def test_per_segment_ms(self, small_environment, sample_trip):
        report = simulate_mode(
            small_environment, sample_trip, DeploymentMode.SERVER,
            EcoChargeConfig(k=3, radius_km=10.0),
        )
        assert report.per_segment_ms == pytest.approx(report.total_ms / report.segments)

    def test_latency_models_defined_for_all_modes(self):
        assert set(LATENCY_MODELS) == set(DeploymentMode)
