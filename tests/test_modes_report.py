"""Deployment-modes experiment driver tests."""

import pytest

from repro.experiments.harness import HarnessConfig
from repro.experiments.modes_report import run_modes
from repro.server.modes import DeploymentMode


@pytest.fixture(scope="module")
def results():
    config = HarnessConfig(trips_per_dataset=1, repetitions=1, dataset_scale=0.1, k=3)
    return run_modes(config, datasets=("oldenburg",))


class TestModesDriver:
    def test_row_per_mode(self, results):
        rows, __ = results
        assert {row.mode for row in rows} == set(DeploymentMode)

    def test_latencies_positive(self, results):
        rows, __ = results
        for row in rows:
            assert row.per_segment_ms.mean > 0

    def test_cache_benefit_reported(self, results):
        __, benefit = results
        assert "oldenburg" in benefit
        assert 0.0 <= benefit["oldenburg"] <= 1.0

    def test_second_vehicle_mostly_cached(self, results):
        """A second vehicle on the same corridor should reuse nearly all
        upstream API responses."""
        __, benefit = results
        assert benefit["oldenburg"] >= 0.8

    def test_cli_knows_modes(self):
        from repro.experiments.__main__ import _build_parser

        args = _build_parser().parse_args(["modes"])
        assert args.experiment == "modes"
