"""Contraction hierarchy: preprocessing, customisation, and query shapes.

The load-bearing property is *exact* agreement with Dijkstra under every
metric — the hierarchy answers the same distances (same floats up to
summation order), merely faster.  Everything else (stats, bucket search,
budget truncation) hangs off that.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.estimation.traffic import TrafficModel
from repro.network.builders import NetworkSpec, build_city_network, build_grid_network, build_radial_network
from repro.network.contraction import ContractionHierarchy, combine_spaces
from repro.network.graph import EdgeWeight
from repro.network.shortest_path import dijkstra_all


@pytest.fixture(scope="module")
def grid():
    return build_grid_network(7, 7, block_km=1.0, speed_kmh=60.0)


@pytest.fixture(scope="module")
def grid_ch(grid):
    return ContractionHierarchy.build(grid)


def _distance_metric(ch):
    return ch.customize(lambda e: e.weight(EdgeWeight.DISTANCE_KM))


class TestBuild:
    def test_every_node_ranked_uniquely(self, grid, grid_ch):
        ranks = {grid_ch.rank_of(n) for n in grid.node_ids()}
        assert ranks == set(range(len(list(grid.node_ids()))))

    def test_stats_shape(self, grid, grid_ch):
        stats = grid_ch.stats
        assert stats.nodes == len(list(grid.node_ids()))
        assert stats.original_arcs > 0
        assert stats.shortcut_arcs >= 0
        assert stats.triangles >= stats.shortcut_arcs

    def test_original_edges_align_with_arcs(self, grid_ch):
        edges = grid_ch.original_edges
        originals = [e for e in edges if e is not None]
        assert len(originals) == grid_ch.stats.original_arcs
        # All original arcs come first, shortcuts after.
        assert all(e is None for e in edges[grid_ch.stats.original_arcs :])

    def test_build_is_deterministic(self, grid):
        a = ContractionHierarchy.build(grid)
        b = ContractionHierarchy.build(grid)
        assert all(a.rank_of(n) == b.rank_of(n) for n in grid.node_ids())
        assert a.stats == b.stats


class TestCustomize:
    def test_point_to_point_matches_dijkstra(self, grid, grid_ch):
        custom = _distance_metric(grid_ch)
        ref = dijkstra_all(grid, 0, EdgeWeight.DISTANCE_KM)
        for node in grid.node_ids():
            got = custom.distance(0, node)
            assert got is not None
            assert got == pytest.approx(ref[node], abs=1e-12)

    def test_matches_dijkstra_under_traffic_metric(self, grid, grid_ch):
        traffic = TrafficModel(seed=3)
        fn = traffic.travel_time_fn(8.25)  # morning peak: non-uniform costs
        custom = grid_ch.customize(fn)
        source = 17
        ref = dijkstra_all(grid, source, fn)
        for node in grid.node_ids():
            assert custom.distance(source, node) == pytest.approx(ref[node], abs=1e-12)

    def test_negative_cost_rejected(self, grid_ch):
        with pytest.raises(ValueError, match="negative"):
            grid_ch.customize(lambda e: -1.0)

    def test_negative_arc_cost_rejected(self, grid_ch):
        costs = [-1.0] * len(grid_ch.original_edges)
        with pytest.raises(ValueError, match="negative"):
            grid_ch.customize(lambda e: 1.0, arc_costs=costs)

    def test_arc_costs_fast_path_matches_callable(self, grid_ch):
        fn = lambda e: e.weight(EdgeWeight.DISTANCE_KM)
        precomputed = [
            math.inf if e is None else fn(e) for e in grid_ch.original_edges
        ]
        a = grid_ch.customize(fn)
        b = grid_ch.customize(fn, arc_costs=precomputed)
        for target in (0, 11, 30, 48):
            assert a.distance(3, target) == b.distance(3, target)


class TestCustomizeMany:
    """The stacked sweep is bitwise-equal to row-by-row customisation."""

    def test_rows_match_solo_customize_bitwise(self, grid_ch):
        traffic = TrafficModel(seed=9)
        specs = traffic.travel_time_bound_specs(9.0, 8.0)
        rows = [spec.batch(grid_ch.original_edges) for spec in specs]
        joint = grid_ch.customize_many(rows)
        for row, custom in zip(rows, joint):
            solo = grid_ch.customize(lambda e: math.inf, arc_costs=row)
            for target in (0, 13, 27, 48):
                # Equality of floats, not approx: identical op sequences.
                assert custom.distance(3, target) == solo.distance(3, target)

    def test_three_rows(self, grid_ch):
        fn = lambda e: e.weight(EdgeWeight.DISTANCE_KM)
        row = [math.inf if e is None else fn(e) for e in grid_ch.original_edges]
        doubled = [c * 2.0 for c in row]
        tripled = [c * 3.0 for c in row]
        a, b, c = grid_ch.customize_many([row, doubled, tripled])
        assert b.distance(0, 48) == 2.0 * a.distance(0, 48)
        assert c.distance(0, 48) == 3.0 * a.distance(0, 48)

    def test_empty_input(self, grid_ch):
        assert grid_ch.customize_many([]) == []

    def test_negative_row_rejected(self, grid_ch):
        good = [1.0] * len(grid_ch.original_edges)
        bad = [1.0] * len(grid_ch.original_edges)
        bad[3] = -0.5
        with pytest.raises(ValueError, match="negative"):
            grid_ch.customize_many([good, bad])


class TestQueries:
    def test_one_to_many_matches_dijkstra(self, grid, grid_ch):
        custom = _distance_metric(grid_ch)
        targets = list(grid.node_ids())[::4]
        ref = dijkstra_all(grid, 5, EdgeWeight.DISTANCE_KM, max_cost=4.0)
        got = custom.one_to_many(5, targets, max_cost=4.0)
        expected = {t: ref[t] for t in targets if t in ref and ref[t] <= 4.0}
        assert set(got) == set(expected)
        for t, d in got.items():
            assert d == pytest.approx(expected[t], abs=1e-12)

    def test_many_to_one_on_symmetric_grid(self, grid, grid_ch):
        custom = _distance_metric(grid_ch)
        sources = [0, 10, 20, 33]
        got = custom.many_to_one(sources, 24, max_cost=10.0)
        ref = dijkstra_all(grid, 24, EdgeWeight.DISTANCE_KM)
        for s in sources:  # grid edges are bidirectional: d(s,t) == d(t,s)
            assert got[s] == pytest.approx(ref[s], abs=1e-12)

    def test_many_to_many_matches_pairwise(self, grid, grid_ch):
        custom = _distance_metric(grid_ch)
        sources, targets = [0, 8, 25], [3, 30, 44, 48]
        matrix = custom.many_to_many(sources, targets, max_cost=12.0)
        for s in sources:
            for t in targets:
                single = custom.distance(s, t, max_cost=12.0)
                assert matrix.get((s, t)) == pytest.approx(single, abs=1e-12)

    def test_budget_excludes_far_targets(self, grid_ch):
        custom = _distance_metric(grid_ch)
        # Opposite corners of a 7x7 unit grid are 12 km apart.
        assert custom.distance(0, 48, max_cost=5.0) is None
        assert 48 not in custom.one_to_many(0, [48], max_cost=5.0)

    def test_combine_spaces_empty(self):
        assert math.isinf(combine_spaces({}, {1: 0.5}))
        assert math.isinf(combine_spaces({1: 0.5}, {}))


class TestRandomNetworks:
    """Property-style sweep: CH == Dijkstra on varied topologies/metrics."""

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_city_networks(self, seed):
        net = build_city_network(
            NetworkSpec(width_km=8.0, height_km=6.0, block_km=1.2, seed=seed)
        )
        ch = ContractionHierarchy.build(net)
        traffic = TrafficModel(seed=seed)
        fn = traffic.travel_time_fn(17.5)
        custom = ch.customize(fn)
        rng = random.Random(seed)
        nodes = sorted(net.node_ids())
        for source in rng.sample(nodes, 4):
            ref = dijkstra_all(net, source, fn)
            for target in rng.sample(nodes, 12):
                got = custom.distance(source, target)
                if target in ref:
                    assert got == pytest.approx(ref[target], abs=1e-12)
                else:
                    assert got is None

    def test_radial_network(self):
        net = build_radial_network(rings=4, spokes=8)
        ch = ContractionHierarchy.build(net)
        custom = ch.customize(lambda e: e.weight(EdgeWeight.TRAVEL_TIME_H))
        nodes = sorted(net.node_ids())
        ref = dijkstra_all(net, nodes[0], EdgeWeight.TRAVEL_TIME_H)
        for target in nodes[::3]:
            got = custom.distance(nodes[0], target)
            if target in ref:
                assert got == pytest.approx(ref[target], abs=1e-12)
            else:
                assert got is None
