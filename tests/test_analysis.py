"""The ``repro.analysis`` subsystem: per-file rules R1-R10 and R15-R17,
suppressions,
CLI, and runtime contracts (the whole-program passes R11-R14, the
baseline ratchet, and SARIF live in ``test_analysis_project.py``).

Each rule gets (at least) one fixture snippet that triggers it and one
clean snippet that does not — the proof that every rule both fires and
can be satisfied.  The meta-test at the bottom asserts the real source
tree is clean, which is what makes the analyzer a usable gate.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import check_paths, check_source
from repro.analysis.__main__ import main
from repro.analysis.annotations import check_annotations
from repro.analysis.engine import Suppressions
from repro.analysis.rules import ALL_RULES, select_rules

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def rule_ids(violations):
    return [v.rule_id for v in violations]


# ---------------------------------------------------------------------------
# R1 — interval endpoint comparisons
# ---------------------------------------------------------------------------


class TestR1IntervalComparison:
    CORE_PATH = "src/repro/core/example.py"

    def test_fires_on_raw_endpoint_comparison(self):
        snippet = "def f(iv):\n    return iv.lo < 0.5\n"
        assert rule_ids(check_source(snippet, self.CORE_PATH)) == ["R1"]

    def test_fires_on_endpoint_to_endpoint_comparison(self):
        snippet = "def dominates(a, b):\n    return a.hi < b.lo\n"
        assert rule_ids(check_source(snippet, self.CORE_PATH)) == ["R1"]

    def test_clean_when_using_comparators(self):
        snippet = (
            "def dominates(a, b):\n"
            "    return a.certainly_less_than(b)\n"
            "def normalised(iv):\n"
            "    return iv.within_bounds(0.0, 1.0, tol=1e-9)\n"
        )
        assert check_source(snippet, self.CORE_PATH) == []

    def test_equality_comparison_is_allowed(self):
        snippet = "def degenerate(iv):\n    return iv.lo == iv.hi\n"
        assert check_source(snippet, self.CORE_PATH) == []

    def test_intervals_module_is_exempt(self):
        snippet = "def f(iv):\n    return iv.lo < 0.5\n"
        assert check_source(snippet, "src/repro/intervals.py") == []

    def test_arithmetic_on_endpoints_is_allowed(self):
        snippet = "def width(iv):\n    return iv.hi - iv.lo\n"
        assert check_source(snippet, self.CORE_PATH) == []


# ---------------------------------------------------------------------------
# R2 — metric consistency
# ---------------------------------------------------------------------------


class TestR2MetricConsistency:
    PATH = "src/repro/spatial/example.py"

    MIXED = (
        "def bad(a, b, p, q):\n"
        "    geo = haversine_km(a.lat, a.lon, b.lat, b.lon)\n"
        "    planar = p.squared_distance_to(q)\n"
        "    return geo + planar\n"
    )

    def test_fires_on_mixed_metrics(self):
        assert rule_ids(check_source(self.MIXED, self.PATH)) == ["R2"]

    def test_clean_when_single_metric(self):
        planar_only = "def ok(p, q):\n    return p.squared_distance_to(q)\n"
        geo_only = "def ok(a, b):\n    return haversine_km(a.lat, a.lon, b.lat, b.lon)\n"
        assert check_source(planar_only, self.PATH) == []
        assert check_source(geo_only, self.PATH) == []

    def test_projection_bridge_sanctions_mixing(self):
        bridged = (
            "def ok(origin, geo, q):\n"
            "    projection = LocalProjection(origin)\n"
            "    p = projection.to_plane(geo)\n"
            "    near = haversine_km(origin.lat, origin.lon, geo.lat, geo.lon)\n"
            "    return near + p.squared_distance_to(q)\n"
        )
        assert check_source(bridged, self.PATH) == []

    def test_geometry_module_is_exempt(self):
        assert check_source(self.MIXED, "src/repro/spatial/geometry.py") == []


# ---------------------------------------------------------------------------
# R3 — dataclass slots
# ---------------------------------------------------------------------------


class TestR3DataclassSlots:
    HOT_PATH = "src/repro/estimation/example.py"

    def test_fires_on_bare_dataclass_in_hot_path(self):
        snippet = "@dataclass\nclass Foo:\n    x: int = 0\n"
        assert rule_ids(check_source(snippet, self.HOT_PATH)) == ["R3"]

    def test_fires_on_dataclass_call_without_slots(self):
        snippet = "@dataclass(frozen=True)\nclass Foo:\n    x: int = 0\n"
        assert rule_ids(check_source(snippet, self.HOT_PATH)) == ["R3"]

    def test_clean_with_slots(self):
        snippet = "@dataclass(frozen=True, slots=True)\nclass Foo:\n    x: int = 0\n"
        assert check_source(snippet, self.HOT_PATH) == []

    def test_cold_path_packages_are_exempt(self):
        snippet = "@dataclass\nclass Foo:\n    x: int = 0\n"
        assert check_source(snippet, "src/repro/io/example.py") == []


# ---------------------------------------------------------------------------
# R4 — mutable defaults
# ---------------------------------------------------------------------------


class TestR4MutableDefault:
    PATH = "src/repro/server/example.py"

    @pytest.mark.parametrize(
        "default", ["[]", "{}", "set()", "list()", "dict()", "{1: 2}", "[x for x in ()]"]
    )
    def test_fires_on_mutable_default(self, default):
        snippet = f"def f(items={default}):\n    return items\n"
        assert rule_ids(check_source(snippet, self.PATH)) == ["R4"]

    def test_fires_on_keyword_only_and_lambda_defaults(self):
        snippet = "def f(*, items=[]):\n    return items\ng = lambda xs=[]: xs\n"
        assert rule_ids(check_source(snippet, self.PATH)) == ["R4", "R4"]

    def test_clean_with_none_sentinel_and_tuple(self):
        snippet = (
            "def f(items=None, shape=(1, 2)):\n"
            "    return list(items or ()) + list(shape)\n"
        )
        assert check_source(snippet, self.PATH) == []


# ---------------------------------------------------------------------------
# R5 — cache expiry
# ---------------------------------------------------------------------------


class TestR5CacheExpiry:
    PATH = "src/repro/server/cache.py"

    def test_fires_on_unbounded_cache_write(self):
        snippet = (
            "class BoundlessCache:\n"
            "    def __init__(self):\n"
            "        self._entries = {}\n"
            "    def put(self, key, value):\n"
            "        self._entries[key] = value\n"
        )
        ids = rule_ids(check_source(snippet, self.PATH))
        # both findings: no TTL bound in __init__, and a write without validity
        assert ids == ["R5", "R5"]

    def test_clean_with_temporal_parameter(self):
        snippet = (
            "class TtlCache:\n"
            "    def __init__(self, ttl_h=0.5):\n"
            "        self.ttl_h = ttl_h\n"
            "        self._entries = {}\n"
            "    def put(self, key, now_h, value):\n"
            "        self._entries[key] = (now_h, value)\n"
        )
        assert check_source(snippet, self.PATH) == []

    def test_clean_when_value_type_carries_validity(self):
        snippet = (
            "class Entry:\n"
            "    generated_at_h: float\n"
            "class SolutionCache:\n"
            "    def __init__(self, ttl_h=1.0):\n"
            "        self.ttl_h = ttl_h\n"
            "        self._entry = None\n"
            "    def store(self, solution: Entry):\n"
            "        self._entry = solution\n"
        )
        assert check_source(snippet, self.PATH) == []

    def test_non_cache_modules_are_exempt(self):
        snippet = (
            "class BoundlessCache:\n"
            "    def __init__(self):\n"
            "        self._entries = {}\n"
            "    def put(self, key, value):\n"
            "        self._entries[key] = value\n"
        )
        assert check_source(snippet, "src/repro/core/scoring.py") == []


# ---------------------------------------------------------------------------
# R6 — exception hygiene
# ---------------------------------------------------------------------------


class TestR6ExceptionHygiene:
    PATH = "src/repro/server/api.py"

    def test_fires_on_bare_except(self):
        snippet = (
            "def handle():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        raise RuntimeError('x')\n"
        )
        assert rule_ids(check_source(snippet, self.PATH)) == ["R6"]

    def test_fires_on_swallowed_exception(self):
        snippet = (
            "def handle():\n"
            "    try:\n"
            "        work()\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        assert rule_ids(check_source(snippet, self.PATH)) == ["R6"]

    def test_clean_when_handled_or_recorded(self):
        snippet = (
            "def handle(log):\n"
            "    try:\n"
            "        work()\n"
            "    except ValueError as exc:\n"
            "        log.append(exc)\n"
            "        return None\n"
        )
        assert check_source(snippet, self.PATH) == []

    def test_other_packages_are_exempt(self):
        snippet = (
            "def handle():\n"
            "    try:\n"
            "        work()\n"
            "    except ValueError:\n"
            "        pass\n"
        )
        assert check_source(snippet, "src/repro/io/example.py") == []


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_line_suppression(self):
        snippet = "def f(iv):\n    return iv.lo < 0.5  # repro-check: disable=R1\n"
        assert check_source(snippet, "src/repro/core/example.py") == []

    def test_line_suppression_only_silences_named_rule(self):
        snippet = "def f(iv, items=[]):  # repro-check: disable=R1\n    return len(items)\n"
        assert rule_ids(check_source(snippet, "src/repro/core/example.py")) == ["R4"]

    def test_file_suppression(self):
        snippet = (
            "# repro-check: disable-file=R4\n"
            "def f(items=[]):\n"
            "    return items\n"
        )
        assert check_source(snippet, "src/repro/core/example.py") == []

    def test_disable_all(self):
        snippet = "def f(items=[]):  # repro-check: disable=all\n    return items\n"
        assert check_source(snippet, "src/repro/core/example.py") == []

    def test_parse_multiple_ids(self):
        sup = Suppressions.parse("x = 1  # repro-check: disable=R1, R4\n")
        assert sup.is_suppressed("R1", 1)
        assert sup.is_suppressed("R4", 1)
        assert not sup.is_suppressed("R2", 1)
        assert not sup.is_suppressed("R1", 2)


# ---------------------------------------------------------------------------
# R7 — resilience bypass
# ---------------------------------------------------------------------------


class TestR7ResilienceBypass:
    PATH = "src/repro/server/eis.py"

    def test_fires_on_raw_api_construction(self):
        snippet = (
            "class Server:\n"
            "    def __init__(self, environment, usage):\n"
            "        self._weather_api = WeatherApi(environment.weather, usage)\n"
        )
        assert rule_ids(check_source(snippet, self.PATH)) == ["R7"]

    def test_fires_on_direct_api_call(self):
        snippet = (
            "def build(self, origin, eta_h, now_h):\n"
            "    return self._weather_api.forecast(origin, eta_h, now_h)\n"
        )
        assert rule_ids(check_source(snippet, self.PATH)) == ["R7"]

    def test_clean_when_routed_through_gateway(self):
        snippet = (
            "def build(self, origin, eta_h, now_h):\n"
            "    return self.gateway.forecast(origin, eta_h, now_h)\n"
        )
        assert check_source(snippet, self.PATH) == []

    def test_api_definitions_module_is_exempt(self):
        snippet = (
            "def make(model, usage):\n"
            "    return WeatherApi(model, usage)\n"
        )
        assert check_source(snippet, "src/repro/server/api.py") == []

    def test_other_packages_are_exempt(self):
        snippet = (
            "def make(model, usage):\n"
            "    return WeatherApi(model, usage)\n"
        )
        assert check_source(snippet, "src/repro/resilience/gateway.py") == []

    def test_pragma_suppresses(self):
        snippet = (
            "def make(model, usage):\n"
            "    return WeatherApi(model, usage)  # repro-check: disable=R7\n"
        )
        assert check_source(snippet, self.PATH) == []


# ---------------------------------------------------------------------------
# R8 — hot loops must use the DistanceEngine
# ---------------------------------------------------------------------------


class TestR8EngineBypass:
    CORE_PATH = "src/repro/core/example.py"
    EST_PATH = "src/repro/estimation/example.py"

    def test_fires_on_dijkstra_all_in_core(self):
        snippet = (
            "def price(network, origin, fn):\n"
            "    return dijkstra_all(network, origin, fn, max_cost=1.0)\n"
        )
        assert rule_ids(check_source(snippet, self.CORE_PATH)) == ["R8"]

    def test_fires_on_backward_search_in_estimation(self):
        snippet = (
            "def back(network, target, fn):\n"
            "    return dijkstra_all_backward(network, target, fn)\n"
        )
        assert rule_ids(check_source(snippet, self.EST_PATH)) == ["R8"]

    def test_fires_on_attribute_style_call(self):
        snippet = (
            "def price(sp, network, origin, pool, fn):\n"
            "    return sp.dijkstra_to_targets(network, origin, pool, fn)\n"
        )
        assert rule_ids(check_source(snippet, self.CORE_PATH)) == ["R8"]

    def test_clean_when_using_engine(self):
        snippet = (
            "def price(engine, origin, pool, spec, budget):\n"
            "    out = engine.one_to_many(origin, pool, spec, max_cost=budget)\n"
            "    back = engine.many_to_one(pool, origin, spec, max_cost=budget)\n"
            "    return out, back\n"
        )
        assert check_source(snippet, self.CORE_PATH) == []

    def test_point_to_point_dijkstra_is_allowed(self):
        snippet = (
            "def route(network, a, b):\n"
            "    return dijkstra(network, a, b)\n"
        )
        assert check_source(snippet, self.CORE_PATH) == []

    def test_network_package_is_exempt(self):
        snippet = (
            "def ball(network, origin, fn):\n"
            "    return dijkstra_all(network, origin, fn)\n"
        )
        assert check_source(snippet, "src/repro/network/distance_engine.py") == []

    def test_tests_are_exempt(self):
        snippet = (
            "def test_ball(network):\n"
            "    assert dijkstra_all(network, 0, None)\n"
        )
        assert check_source(snippet, "tests/core/test_example.py") == []


# ---------------------------------------------------------------------------
# R9 — server tier mutates session state only through the journal
# ---------------------------------------------------------------------------


class TestR9JournalBypass:
    SERVER_PATH = "src/repro/server/example.py"

    def test_fires_on_dynamic_cache_construction(self):
        snippet = (
            "def serve(env, config):\n"
            "    cache = DynamicCache(ttl_h=config.cache_ttl_h)\n"
            "    return cache\n"
        )
        assert rule_ids(check_source(snippet, self.SERVER_PATH)) == ["R9"]

    def test_fires_on_direct_restore_state(self):
        snippet = (
            "def rollback(ranker, checkpoint):\n"
            "    ranker.restore_state(checkpoint)\n"
        )
        assert rule_ids(check_source(snippet, self.SERVER_PATH)) == ["R9"]

    def test_fires_on_direct_checkpoint_state(self):
        snippet = (
            "def snapshot(ranker):\n"
            "    return ranker.checkpoint_state()\n"
        )
        assert rule_ids(check_source(snippet, self.SERVER_PATH)) == ["R9"]

    def test_fires_on_run_table_append(self):
        snippet = (
            "def patch(run, table):\n"
            "    run.tables.append(table)\n"
        )
        assert rule_ids(check_source(snippet, self.SERVER_PATH)) == ["R9"]

    def test_fires_on_failed_segments_append(self):
        snippet = (
            "def mark(run, index):\n"
            "    run.failed_segments.append(index)\n"
        )
        assert rule_ids(check_source(snippet, self.SERVER_PATH)) == ["R9"]

    def test_clean_when_going_through_session_manager(self):
        snippet = (
            "def serve(service, session_id, trip, config):\n"
            "    session = service.open(session_id, trip, config)\n"
            "    try:\n"
            "        return session.run()\n"
            "    finally:\n"
            "        service.close(session)\n"
        )
        assert check_source(snippet, self.SERVER_PATH) == []

    def test_plain_list_append_is_allowed(self):
        snippet = (
            "def collect(snapshots, snapshot):\n"
            "    snapshots.append(snapshot)\n"
        )
        assert check_source(snippet, self.SERVER_PATH) == []

    def test_core_tier_is_exempt(self):
        snippet = (
            "def rank(ranker, checkpoint):\n"
            "    ranker.restore_state(checkpoint)\n"
        )
        assert check_source(snippet, "src/repro/core/ranking.py") == []

    def test_response_cache_module_is_exempt(self):
        snippet = (
            "def build(config):\n"
            "    return DynamicCache(ttl_h=config.cache_ttl_h)\n"
        )
        assert check_source(snippet, "src/repro/server/cache.py") == []

    def test_tests_are_exempt(self):
        snippet = (
            "def test_rollback(ranker):\n"
            "    ranker.restore_state(ranker.checkpoint_state())\n"
        )
        assert check_source(snippet, "tests/server/test_example.py") == []


# ---------------------------------------------------------------------------
# R10 — time is read only through the injected Clock
# ---------------------------------------------------------------------------


class TestR10ClockBypass:
    EXPERIMENT_PATH = "src/repro/experiments/example.py"

    def test_fires_on_time_time(self):
        snippet = (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        assert rule_ids(check_source(snippet, self.EXPERIMENT_PATH)) == ["R10"]

    def test_fires_on_perf_counter(self):
        snippet = (
            "import time\n"
            "def measure(fn):\n"
            "    start = time.perf_counter()\n"
            "    fn()\n"
            "    return time.perf_counter() - start\n"
        )
        assert rule_ids(check_source(snippet, self.EXPERIMENT_PATH)) == ["R10", "R10"]

    def test_fires_through_module_alias(self):
        snippet = (
            "import time as walltime\n"
            "def stamp():\n"
            "    return walltime.monotonic()\n"
        )
        assert rule_ids(check_source(snippet, self.EXPERIMENT_PATH)) == ["R10"]

    def test_fires_on_from_import(self):
        snippet = (
            "from time import perf_counter\n"
            "def measure():\n"
            "    return perf_counter()\n"
        )
        assert rule_ids(check_source(snippet, self.EXPERIMENT_PATH)) == ["R10"]

    def test_fires_on_aliased_from_import(self):
        snippet = (
            "from time import time_ns as now_ns\n"
            "def stamp():\n"
            "    return now_ns()\n"
        )
        assert rule_ids(check_source(snippet, self.EXPERIMENT_PATH)) == ["R10"]

    def test_clean_on_injected_clock(self):
        snippet = (
            "from repro.observability.clock import SYSTEM_CLOCK\n"
            "def measure(fn, clock=SYSTEM_CLOCK):\n"
            "    start = clock.monotonic()\n"
            "    fn()\n"
            "    return clock.monotonic() - start\n"
        )
        assert check_source(snippet, self.EXPERIMENT_PATH) == []

    def test_sleep_is_not_a_clock_read(self):
        snippet = (
            "import time\n"
            "def wait():\n"
            "    time.sleep(0.1)\n"
        )
        assert check_source(snippet, self.EXPERIMENT_PATH) == []

    def test_unrelated_name_is_not_flagged(self):
        # A local object that happens to have a .time() method is fine;
        # only reads through the time module (or its aliases) count.
        snippet = (
            "def stamp(clock):\n"
            "    return clock.time()\n"
        )
        assert check_source(snippet, self.EXPERIMENT_PATH) == []

    def test_observability_tier_is_exempt(self):
        snippet = (
            "import time\n"
            "def now():\n"
            "    return time.time()\n"
        )
        assert check_source(snippet, "src/repro/observability/clock.py") == []

    def test_tests_are_exempt(self):
        snippet = (
            "import time\n"
            "def test_latency():\n"
            "    assert time.perf_counter() >= 0\n"
        )
        assert check_source(snippet, "tests/test_example.py") == []


# ---------------------------------------------------------------------------
# R15 — backpressure bypass in the serving tier
# ---------------------------------------------------------------------------


class TestR15BackpressureBypass:
    SERVER_PATH = "src/repro/server/example.py"
    SCHEDULING_PATH = "src/repro/server/scheduling/example.py"

    def test_fires_on_unbounded_queue(self):
        snippet = (
            "import queue\n"
            "def build():\n"
            "    return queue.Queue()\n"
        )
        assert rule_ids(check_source(snippet, self.SERVER_PATH)) == ["R15"]

    def test_fires_on_simple_queue_even_with_args(self):
        # SimpleQueue has no maxsize at all; it can never be bounded.
        snippet = (
            "from queue import SimpleQueue\n"
            "def build():\n"
            "    return SimpleQueue()\n"
        )
        assert rule_ids(check_source(snippet, self.SERVER_PATH)) == ["R15"]

    def test_fires_on_priority_queue_with_zero_maxsize(self):
        # maxsize=0 is the stdlib's spelling of "unbounded".
        snippet = (
            "import queue\n"
            "def build():\n"
            "    return queue.PriorityQueue(maxsize=0)\n"
        )
        assert rule_ids(check_source(snippet, self.SERVER_PATH)) == ["R15"]

    def test_fires_on_unbounded_deque(self):
        snippet = (
            "from collections import deque\n"
            "def build():\n"
            "    return deque()\n"
        )
        assert rule_ids(check_source(snippet, self.SERVER_PATH)) == ["R15"]

    def test_clean_on_bounded_queue_and_deque(self):
        snippet = (
            "import queue\n"
            "from collections import deque\n"
            "def build():\n"
            "    return queue.Queue(maxsize=8), deque((), 32), deque(maxlen=4)\n"
        )
        assert check_source(snippet, self.SERVER_PATH) == []

    def test_fires_on_time_sleep_in_scheduling(self):
        snippet = (
            "import time\n"
            "def backoff():\n"
            "    time.sleep(0.1)\n"
        )
        assert rule_ids(check_source(snippet, self.SCHEDULING_PATH)) == ["R15"]

    def test_fires_on_aliased_sleep_import(self):
        snippet = (
            "from time import sleep as doze\n"
            "def backoff():\n"
            "    doze(0.1)\n"
        )
        assert rule_ids(check_source(snippet, self.SCHEDULING_PATH)) == ["R15"]

    def test_fires_on_zero_arg_blocking_calls(self):
        snippet = (
            "def park(event, lock, worker):\n"
            "    event.wait()\n"
            "    lock.acquire()\n"
            "    worker.join()\n"
        )
        assert rule_ids(check_source(snippet, self.SCHEDULING_PATH)) == [
            "R15", "R15", "R15",
        ]

    def test_clean_on_timed_blocking_calls(self):
        # Any argument counts as an explicit decision, including an
        # explicit timeout=None on a single-flight follower wait.
        snippet = (
            "def park(event, lock, worker, flight):\n"
            "    event.wait(0.05)\n"
            "    lock.acquire(timeout=1.0)\n"
            "    worker.join(timeout=5.0)\n"
            "    flight.done.wait(timeout=None)\n"
        )
        assert check_source(snippet, self.SCHEDULING_PATH) == []

    def test_blocking_calls_allowed_outside_scheduling(self):
        # The blocking-call discipline is scoped to the scheduling
        # package; the wider server tier only owes bounded queues.
        snippet = (
            "def park(event):\n"
            "    event.wait()\n"
        )
        assert check_source(snippet, self.SERVER_PATH) == []

    def test_queue_owner_module_is_exempt(self):
        snippet = (
            "import queue\n"
            "def build():\n"
            "    return queue.Queue()\n"
        )
        path = "src/repro/server/scheduling/queueing.py"
        assert check_source(snippet, path) == []


# ---------------------------------------------------------------------------
# R16 — epoch-fence bypass around live-graph caches
# ---------------------------------------------------------------------------


class TestR16EpochBypass:
    CORE_PATH = "src/repro/core/example.py"
    SERVER_PATH = "src/repro/server/example.py"

    def test_fires_on_fenced_store_reach_in(self):
        snippet = (
            "def peek(engine, node):\n"
            "    return engine._pairs, engine._maps.get(node)\n"
        )
        assert rule_ids(check_source(snippet, self.SERVER_PATH)) == ["R16", "R16"]

    def test_fires_on_dynamic_cache_entry_reach_in(self):
        snippet = (
            "def raw(cache):\n"
            "    return cache._entry\n"
        )
        assert rule_ids(check_source(snippet, self.CORE_PATH)) == ["R16"]

    def test_fires_on_below_fence_engine_call(self):
        snippet = (
            "def price(engine, spec, anchor, pool):\n"
            "    return engine._ch_bipartite(spec, anchor, pool)\n"
        )
        assert rule_ids(check_source(snippet, self.CORE_PATH)) == ["R16"]

    def test_fires_on_unfenced_solution_cache_lookup(self):
        snippet = (
            "def reuse(self, origin, now_h):\n"
            "    return self._cache.lookup(origin, now_h)\n"
        )
        assert rule_ids(check_source(snippet, self.CORE_PATH)) == ["R16"]

    def test_clean_when_lookup_is_fenced(self):
        snippet = (
            "def reuse(self, origin, now_h):\n"
            "    self._cache.observe_epoch(self._env.weights_token())\n"
            "    return self._cache.lookup(origin, now_h)\n"
        )
        assert check_source(snippet, self.CORE_PATH) == []

    def test_clean_on_public_engine_api(self):
        snippet = (
            "def price(engine, spec, anchor, pool, budget):\n"
            "    return engine.many_to_one(spec, pool, anchor, budget)\n"
        )
        assert check_source(snippet, self.CORE_PATH) == []

    def test_self_access_is_allowed(self):
        # An owner class implementing its own store is not a reach-in.
        snippet = (
            "class Ledger:\n"
            "    def __init__(self):\n"
            "        self._pairs = {}\n"
            "    def size(self):\n"
            "        return len(self._pairs)\n"
        )
        assert check_source(snippet, self.CORE_PATH) == []

    def test_cache_owner_module_is_exempt(self):
        snippet = (
            "def migrate(cache):\n"
            "    return cache._entry\n"
        )
        assert check_source(snippet, "src/repro/core/caching.py") == []

    def test_server_response_cache_lookup_is_exempt(self):
        # The server-tier response cache is its own epoch-stamped layer;
        # the lookup-fence discipline is scoped to core/, where the
        # solution cache lives.
        snippet = (
            "def serve(self, key, now_h):\n"
            "    return self.cache.lookup(key, now_h)\n"
        )
        assert check_source(snippet, self.SERVER_PATH) == []

    def test_non_cache_lookup_is_not_flagged(self):
        snippet = (
            "def resolve(registry, name):\n"
            "    return registry.lookup(name)\n"
        )
        assert check_source(snippet, self.CORE_PATH) == []

    def test_tests_are_exempt(self):
        snippet = (
            "def test_fence(engine):\n"
            "    assert engine._pairs == {}\n"
        )
        assert check_source(snippet, "tests/test_example.py") == []

    def test_non_server_tier_is_exempt(self):
        snippet = (
            "import queue\n"
            "def build():\n"
            "    return queue.Queue()\n"
        )
        assert check_source(snippet, "src/repro/io/example.py") == []

    def test_tests_are_exempt(self):
        snippet = (
            "import queue\n"
            "def test_build():\n"
            "    assert queue.Queue() is not None\n"
        )
        assert check_source(snippet, "tests/server/test_example.py") == []


# ---------------------------------------------------------------------------
# R17 — metric label cardinality
# ---------------------------------------------------------------------------


class TestR17LabelCardinality:
    SERVER_PATH = "src/repro/server/example.py"
    CORE_PATH = "src/repro/core/example.py"

    def test_fires_on_unknown_label_name(self):
        # `trip` is not a bounded enumeration and no guard covers it:
        # every distinct trip id would allocate a series forever.
        snippet = (
            "def record(telemetry, trip_id):\n"
            "    telemetry.inc('ecocharge_trips_total', trip=trip_id)\n"
        )
        assert rule_ids(check_source(snippet, self.SERVER_PATH)) == ["R17"]

    def test_fires_on_interpolated_label_value(self):
        # A bounded label name with a request-derived f-string value is
        # the same cardinality bomb wearing an allowed name.
        snippet = (
            "def record(telemetry, response):\n"
            "    telemetry.inc(\n"
            "        'ecocharge_scheduler_requests_total',\n"
            "        outcome=f'outcome-{response.id}',\n"
            "    )\n"
        )
        assert rule_ids(check_source(snippet, self.SERVER_PATH)) == ["R17"]

    def test_fires_on_concatenated_label_value(self):
        snippet = (
            "def record(family, shard_id):\n"
            "    family.labels(shard='shard-' + shard_id).inc()\n"
        )
        assert rule_ids(check_source(snippet, self.CORE_PATH)) == ["R17"]

    def test_fires_on_splatted_labels(self):
        snippet = (
            "def record(telemetry, labels):\n"
            "    telemetry.inc('ecocharge_segments_total', **labels)\n"
        )
        assert rule_ids(check_source(snippet, self.SERVER_PATH)) == ["R17"]

    def test_clean_on_bounded_enumeration_values(self):
        snippet = (
            "def record(telemetry, response, endpoint_name):\n"
            "    telemetry.inc(\n"
            "        'ecocharge_scheduler_requests_total',\n"
            "        outcome=response.outcome.value,\n"
            "    )\n"
            "    telemetry.inc(\n"
            "        'ecocharge_gateway_ladder_total',\n"
            "        endpoint=endpoint_name, level='full',\n"
            "    )\n"
            "    telemetry.inc(\n"
            "        'ecocharge_shard_requests_total',\n"
            "        shard=str(response.shard), outcome='completed',\n"
            "    )\n"
        )
        assert check_source(snippet, self.SERVER_PATH) == []

    def test_clean_on_guarded_tenant_label(self):
        # `tenant` is bounded by the registry's max_label_values guard,
        # so arbitrary request-derived values are safe at the sink.
        snippet = (
            "def record(telemetry, request):\n"
            "    telemetry.inc(\n"
            "        'ecocharge_tenant_requests_total',\n"
            "        tenant=request.tenant, outcome='completed',\n"
            "    )\n"
        )
        assert check_source(snippet, self.SERVER_PATH) == []

    def test_value_keywords_are_not_labels(self):
        snippet = (
            "def record(telemetry, latency_s, trace_id):\n"
            "    telemetry.observe(\n"
            "        'ecocharge_served_latency_seconds',\n"
            "        latency_s, exemplar=trace_id,\n"
            "    )\n"
        )
        assert check_source(snippet, self.SERVER_PATH) == []

    def test_observability_tier_is_exempt(self):
        # The recorder facade forwards **labels to the guarded registry;
        # the guard itself lives there.
        snippet = (
            "def forward(family, labels):\n"
            "    family.labels(**labels).inc()\n"
        )
        assert check_source(snippet, "src/repro/observability/recorder.py") == []

    def test_tests_are_exempt_from_r17(self):
        snippet = (
            "def test_record(telemetry):\n"
            "    telemetry.inc('ecocharge_trips_total', trip='t-1')\n"
        )
        assert check_source(snippet, "tests/test_example.py") == []


# ---------------------------------------------------------------------------
# engine / CLI
# ---------------------------------------------------------------------------


class TestEngineAndCli:
    def test_select_rules(self):
        assert [r.rule_id for r in select_rules(["R1", "r4"])] == ["R1", "R4"]
        with pytest.raises(KeyError):
            select_rules(["R99"])

    def test_all_seventeen_rules_registered(self):
        assert [r.rule_id for r in ALL_RULES] == [
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10",
            "R11", "R12", "R13", "R14", "R15", "R16", "R17",
        ]

    def test_cli_clean_tree_exits_zero(self, capsys):
        assert main([str(SRC)]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out

    def test_cli_reports_violations_with_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "core" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("def f(items=[]):\n    return items\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "R4" in out

    def test_cli_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(items=[]):\n    return items\n")
        assert main(["--format", "json", str(bad)]) == 1
        out = capsys.readouterr().out
        assert '"rule": "R4"' in out

    def test_cli_missing_path_exits_two(self, capsys):
        assert main(["/no/such/path-xyz"]) == 2

    def test_cli_unknown_rule_exits_two(self, capsys):
        assert main(["--select", "R99", str(SRC)]) == 2

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10",
            "R11", "R12", "R13", "R14", "R15", "R16", "R17",
        ):
            assert rule_id in out

    def test_cli_annotations_flag(self, tmp_path, capsys):
        unannotated = tmp_path / "loose.py"
        unannotated.write_text("def f(x):\n    return x\n")
        assert main([str(unannotated)]) == 0  # R1-R17 clean
        assert main(["--annotations", str(unannotated)]) == 1
        out = capsys.readouterr().out
        assert "TYP" in out

    def test_syntax_error_is_a_hard_error(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert main([str(broken)]) == 2


# ---------------------------------------------------------------------------
# meta: the real tree is clean (the analyzer is a usable gate)
# ---------------------------------------------------------------------------


class TestRealTree:
    def test_src_repro_is_clean(self):
        report = check_paths([SRC])
        assert report.ok, "repro-check violations:\n" + report.render_text()
        assert report.files_checked > 50
        assert report.rules_run == (
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10",
            "R11", "R12", "R13", "R14", "R15", "R16", "R17",
        )

    def test_tests_tree_is_clean(self):
        report = check_paths([REPO_ROOT / "tests"])
        assert report.ok, "repro-check violations:\n" + report.render_text()


# ---------------------------------------------------------------------------
# runtime contracts (REPRO_CONTRACTS=1)
# ---------------------------------------------------------------------------


def _run_python(code: str, contracts: bool) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    if contracts:
        env["REPRO_CONTRACTS"] = "1"
    else:
        env.pop("REPRO_CONTRACTS", None)
    return subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True, timeout=120
    )


class TestContracts:
    def test_disabled_decorators_are_identity(self):
        code = (
            "from repro.analysis.contracts import require, ensure\n"
            "def f(x): return x\n"
            "assert require(lambda x: False, 'never')(f) is f\n"
            "assert ensure(lambda result: False, 'never')(f) is f\n"
        )
        proc = _run_python(code, contracts=False)
        assert proc.returncode == 0, proc.stderr

    def test_enabled_require_and_ensure_fire(self):
        code = (
            "from repro.analysis.contracts import require, ensure, ContractViolation\n"
            "@require(lambda x: x >= 0, 'x must be non-negative')\n"
            "def root(x): return x ** 0.5\n"
            "@ensure(lambda result: result > 0, 'positive')\n"
            "def broken(x): return -1\n"
            "assert root(4.0) == 2.0\n"
            "try:\n"
            "    root(-1.0)\n"
            "except ContractViolation as exc:\n"
            "    assert 'x must be non-negative' in str(exc)\n"
            "else:\n"
            "    raise SystemExit('require did not fire')\n"
            "try:\n"
            "    broken(1)\n"
            "except ContractViolation:\n"
            "    pass\n"
            "else:\n"
            "    raise SystemExit('ensure did not fire')\n"
        )
        proc = _run_python(code, contracts=True)
        assert proc.returncode == 0, proc.stderr

    def test_domain_contracts_hold_on_happy_paths(self):
        code = (
            "from repro.intervals import Interval\n"
            "from repro.core.scoring import ComponentScores, Weights, sc_score, "
            "intersect_top_k\n"
            "iv = Interval(0.2, 1.4).clamp(0.0, 1.0)\n"
            "assert iv.within_bounds(0.0, 1.0)\n"
            "wide = Interval(0.2, 0.4).widened(0.5)\n"
            "comp = ComponentScores(7, Interval(0.1, 0.4), Interval(0.2, 0.9), "
            "Interval(0.0, 0.3))\n"
            "score = sc_score(comp, Weights.equal())\n"
            "top = intersect_top_k([score], 3)\n"
            "assert top[0].charger_id == 7\n"
        )
        proc = _run_python(code, contracts=True)
        assert proc.returncode == 0, proc.stderr

    def test_cache_admission_contract_holds(self):
        code = (
            "from repro.core.caching import CachedSolution, DynamicCache\n"
            "from repro.spatial.geometry import Point\n"
            "cache = DynamicCache(range_km=5.0, ttl_h=1.0)\n"
            "sol = CachedSolution(0, Point(0.0, 0.0), 0.0, 0.0, 50.0, (), ())\n"
            "cache.store(sol)\n"
            "assert cache.lookup(Point(1.0, 1.0), now_h=0.5) is not None\n"
            "assert cache.lookup(Point(30.0, 0.0), now_h=0.5) is None\n"
            "assert cache.lookup(Point(1.0, 1.0), now_h=5.0) is None\n"
        )
        proc = _run_python(code, contracts=True)
        assert proc.returncode == 0, proc.stderr

    def test_contract_violation_detects_broken_cache_admission(self):
        """Sabotage the admission check and watch the contract catch it —
        the runtime twin of rule R5's 'validity rides with the value'."""
        code = (
            "import threading\n"
            "from repro.core.caching import CachedSolution, CacheStats, DynamicCache\n"
            "from repro.analysis.contracts import ContractViolation\n"
            "from repro.spatial.geometry import Point\n"
            "class Sabotaged:\n"
            "    # Q appears huge to the implementation's admission check but\n"
            "    # tiny to the contract's re-check: a stand-in for a refactor\n"
            "    # that broke the Section IV-C admission logic.\n"
            "    def __init__(self):\n"
            "        self.ttl_h = 1.0\n"
            "        self.stats = CacheStats()\n"
            "        self._lock = threading.RLock()\n"
            "        self._entry = CachedSolution(0, Point(0.0, 0.0), 0.0, 0.0, 50.0, (), ())\n"
            "        self._reads = 0\n"
            "    @property\n"
            "    def range_km(self):\n"
            "        self._reads += 1\n"
            "        return 1e9 if self._reads == 1 else 0.5\n"
            "try:\n"
            "    DynamicCache.lookup(Sabotaged(), Point(3.0, 0.0), now_h=0.5)\n"
            "except ContractViolation:\n"
            "    pass\n"
            "else:\n"
            "    raise SystemExit('admission contract did not fire')\n"
        )
        proc = _run_python(code, contracts=True)
        assert proc.returncode == 0, proc.stderr


# ---------------------------------------------------------------------------
# strict annotations (offline mypy subset)
# ---------------------------------------------------------------------------


class TestStrictAnnotations:
    def test_detects_missing_annotations(self, tmp_path):
        loose = tmp_path / "loose.py"
        loose.write_text("def f(x, *args, flag=True):\n    return x\n")
        violations = check_annotations([loose])
        assert len(violations) == 1
        message = violations[0].message
        assert "x" in message and "*args" in message and "return" in message

    def test_accepts_fully_annotated(self, tmp_path):
        tight = tmp_path / "tight.py"
        tight.write_text(
            "def f(x: int, *args: str, flag: bool = True) -> int:\n    return x\n"
        )
        assert check_annotations([tight]) == []

    def test_self_and_cls_exempt(self, tmp_path):
        src = tmp_path / "methods.py"
        src.write_text(
            "class C:\n"
            "    def m(self, x: int) -> int:\n"
            "        return x\n"
            "    @classmethod\n"
            "    def c(cls) -> 'C':\n"
            "        return cls()\n"
        )
        assert check_annotations([src]) == []
