"""The durability tier: codecs, journal, snapshots, crash recovery.

Four claims are proven here, matching ``docs/durability.md``:

1. every codec round-trips **byte-stably** — ``encode → decode →
   encode`` yields identical canonical JSON, floats survive bitwise
   (``-0.0``, subnormals, huge magnitudes), NaN is rejected;
2. torn journal lines (the crash-mid-write state) are detected by
   checksum and discarded, never silently replayed;
3. a session killed at *any* named crash point resumes to produce
   rankings bitwise-identical to an uninterrupted run, on both
   shortest-path backends;
4. journaled cache-event deltas reconcile exactly with the live
   ``CacheStats`` counters (the ApiUsage-style accounting identity),
   and a corrupted delta is caught at resume.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chargers.charger import Charger, PlugType, RenewableSource
from repro.chargers.plugshare import CatalogSpec, generate_catalog
from repro.core.caching import CachedSolution, CacheState, CacheStats, DynamicCache
from repro.core.ecocharge import EcoChargeConfig, EcoChargeRanker
from repro.core.environment import ChargingEnvironment
from repro.core.moving import MovingQuery
from repro.core.offering import OfferingTable, build_table
from repro.core.ranking import run_over_trip
from repro.core.scoring import ComponentScores, ScScore, Weights
from repro.durability import (
    CODEC_VERSIONS,
    CacheEventDelta,
    CodecError,
    DurabilityConfig,
    JournalCacheAccounting,
    SessionJournal,
    SessionManager,
    SessionSnapshot,
    SessionStateError,
    canonical_dumps,
    check_codec_versions,
    decode_config,
    decode_float,
    encode_config,
    encode_float,
    load_snapshot,
    read_journal,
    write_snapshot,
)
from repro.durability.codecs import (
    CachedSolutionCodec,
    CacheStatsCodec,
    ChargerCodec,
    ComponentScoresCodec,
    IntervalCodec,
    MovingQueryCodec,
    OfferingEntryCodec,
    OfferingTableCodec,
    PointCodec,
    ScScoreCodec,
    SegmentCodec,
    TripCodec,
    WeightsCodec,
)
from repro.intervals import Interval
from repro.network.builders import NetworkSpec, build_city_network
from repro.network.path import Trip
from repro.resilience.errors import TransientUpstreamError, UpstreamError
from repro.resilience.faults import CrashPoint, FaultInjector, SessionCrash
from repro.spatial.geometry import Point, Segment

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

#: Finite and infinite floats, never NaN — includes -0.0, subnormals, and
#: the extreme magnitudes where decimal repr round-trips historically broke.
any_float = st.floats(allow_nan=False)

#: The float edge cases called out explicitly by the spec.
EDGE_FLOATS = [
    0.0,
    -0.0,
    5e-324,  # smallest subnormal
    -5e-324,
    2.2250738585072014e-308,  # smallest normal
    1.7976931348623157e308,  # largest finite
    -1.7976931348623157e308,
    1 / 3,
    0.1 + 0.2,  # 0.30000000000000004 — classic repr trap
    float("inf"),
    float("-inf"),
]


def bits(value: float) -> bytes:
    return struct.pack("<d", value)


@st.composite
def intervals(draw):
    lo, hi = sorted(draw(st.tuples(any_float, any_float)))
    return Interval(lo, hi)


#: ComponentScores requires its intervals normalised to [0, 1].
@st.composite
def unit_intervals(draw):
    lo, hi = sorted(
        draw(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),
                st.floats(min_value=0.0, max_value=1.0),
            )
        )
    )
    return Interval(lo, hi)


points = st.builds(Point, any_float, any_float)
segments = st.builds(Segment, points, points)
charger_ids = st.integers(min_value=0, max_value=10_000)

chargers = st.builds(
    Charger,
    charger_id=charger_ids,
    point=points,
    node_id=st.integers(min_value=0, max_value=10_000),
    rate_kw=st.floats(min_value=1.0, max_value=500.0),
    plug_type=st.sampled_from(list(PlugType)),
    plugs=st.integers(min_value=1, max_value=12),
    solar_capacity_kw=st.floats(min_value=0.0, max_value=200.0),
    source=st.sampled_from(list(RenewableSource)),
)

component_scores = st.builds(
    ComponentScores,
    charger_id=charger_ids,
    sustainable=unit_intervals(),
    availability=unit_intervals(),
    derouting=unit_intervals(),
)


@st.composite
def sc_scores(draw):
    lo, hi = sorted(draw(st.tuples(any_float, any_float)))
    return ScScore(charger_id=draw(charger_ids), sc_min=lo, sc_max=hi)


@st.composite
def weights(draw):
    """Weights must be non-negative and sum to 1 within 1e-9."""
    sustainable = draw(st.floats(min_value=0.0, max_value=1.0))
    availability = draw(st.floats(min_value=0.0, max_value=1.0 - sustainable))
    return Weights(
        sustainable=sustainable,
        availability=availability,
        derouting=1.0 - sustainable - availability,
    )

cache_stats = st.builds(
    CacheStats,
    hits=st.integers(min_value=0, max_value=10_000),
    misses=st.integers(min_value=0, max_value=10_000),
    expirations=st.integers(min_value=0, max_value=10_000),
    out_of_range=st.integers(min_value=0, max_value=10_000),
)

@st.composite
def moving_queries(draw):
    """MovingQuery requires a strictly positive speed interval."""
    lo, hi = sorted(
        draw(
            st.tuples(
                st.floats(min_value=1.0, max_value=200.0),
                st.floats(min_value=1.0, max_value=200.0),
            )
        )
    )
    return MovingQuery(
        segment=draw(segments),
        speed_kmh=Interval(lo, hi),
        start_time_h=draw(any_float),
    )


@st.composite
def offering_tables(draw):
    """Tables with 0..3 rows — ranks must be 1..n in order."""
    rows = draw(
        st.lists(
            st.tuples(sc_scores(), chargers, intervals(), intervals(), intervals()),
            max_size=3,
        )
    )
    return build_table(
        segment_index=draw(st.integers(min_value=0, max_value=500)),
        origin=draw(points),
        generated_at_h=draw(any_float),
        radius_km=draw(any_float),
        ranked=[
            (score, charger, s, a, d, draw(any_float))
            for score, charger, s, a, d in rows
        ],
        adapted_from=draw(st.none() | st.integers(min_value=0, max_value=500)),
    )


@st.composite
def cached_solutions(draw):
    """Pools of 0..3 chargers with matching component scores."""
    pool = tuple(draw(st.lists(chargers, max_size=3)))
    return CachedSolution(
        segment_index=draw(st.integers(min_value=0, max_value=500)),
        origin=draw(points),
        generated_at_h=draw(any_float),
        eta_h=draw(any_float),
        radius_km=draw(any_float),
        pool=pool,
        components=tuple(
            draw(component_scores.map(lambda c, cid=ch.charger_id: ComponentScores(
                charger_id=cid,
                sustainable=c.sustainable,
                availability=c.availability,
                derouting=c.derouting,
            )))
            for ch in pool
        ),
    )


def assert_byte_stable(codec, value):
    """encode → decode → encode must yield identical canonical JSON."""
    first = codec.encode(value)
    second = codec.encode(codec.decode(first))
    assert canonical_dumps(first) == canonical_dumps(second)


# ---------------------------------------------------------------------------
# float codec: bitwise stability
# ---------------------------------------------------------------------------


class TestFloatCodec:
    @given(any_float)
    def test_round_trip_is_bitwise(self, value):
        assert bits(decode_float(encode_float(value))) == bits(value)

    @pytest.mark.parametrize("value", EDGE_FLOATS)
    def test_edge_floats_round_trip_bitwise(self, value):
        assert bits(decode_float(encode_float(value))) == bits(value)

    def test_negative_zero_keeps_its_sign(self):
        decoded = decode_float(encode_float(-0.0))
        assert str(decoded) == "-0.0"

    def test_nan_is_rejected(self):
        with pytest.raises(CodecError):
            encode_float(float("nan"))

    @pytest.mark.parametrize("bad", [1.5, None, b"0x1p0", ["0x1p0"]])
    def test_decode_rejects_non_strings(self, bad):
        with pytest.raises(CodecError):
            decode_float(bad)

    def test_decode_rejects_garbage(self):
        with pytest.raises(CodecError):
            decode_float("not-a-hex-float")


# ---------------------------------------------------------------------------
# codec round trips: every codec, byte-stable
# ---------------------------------------------------------------------------


class TestCodecRoundTrips:
    @given(intervals())
    def test_interval(self, value):
        decoded = IntervalCodec.decode(IntervalCodec.encode(value))
        assert bits(decoded.lo) == bits(value.lo)
        assert bits(decoded.hi) == bits(value.hi)
        assert_byte_stable(IntervalCodec, value)

    @given(points)
    def test_point(self, value):
        decoded = PointCodec.decode(PointCodec.encode(value))
        assert bits(decoded.x) == bits(value.x)
        assert bits(decoded.y) == bits(value.y)
        assert_byte_stable(PointCodec, value)

    @given(segments)
    def test_segment(self, value):
        assert_byte_stable(SegmentCodec, value)

    @given(chargers)
    def test_charger(self, value):
        assert ChargerCodec.decode(ChargerCodec.encode(value)) == value
        assert_byte_stable(ChargerCodec, value)

    @given(component_scores)
    def test_component_scores(self, value):
        assert_byte_stable(ComponentScoresCodec, value)

    @given(sc_scores())
    def test_sc_score(self, value):
        assert_byte_stable(ScScoreCodec, value)

    @given(weights())
    def test_weights(self, value):
        assert_byte_stable(WeightsCodec, value)

    @given(cache_stats)
    def test_cache_stats(self, value):
        assert CacheStatsCodec.decode(CacheStatsCodec.encode(value)) == value
        assert_byte_stable(CacheStatsCodec, value)

    @given(moving_queries())
    def test_moving_query(self, value):
        assert_byte_stable(MovingQueryCodec, value)

    @settings(deadline=None)
    @given(offering_tables())
    def test_offering_table(self, value):
        decoded = OfferingTableCodec.decode(OfferingTableCodec.encode(value))
        assert decoded.segment_index == value.segment_index
        assert len(decoded.entries) == len(value.entries)
        assert_byte_stable(OfferingTableCodec, value)
        for entry in value.entries:
            assert_byte_stable(OfferingEntryCodec, entry)

    @settings(deadline=None)
    @given(cached_solutions())
    def test_cached_solution(self, value):
        decoded = CachedSolutionCodec.decode(CachedSolutionCodec.encode(value))
        assert decoded.pool == value.pool
        assert_byte_stable(CachedSolutionCodec, value)

    def test_empty_offering_table(self):
        empty = OfferingTable(
            segment_index=0,
            origin=Point(0.0, 0.0),
            generated_at_h=-0.0,
            radius_km=5e-324,
            entries=(),
        )
        assert_byte_stable(OfferingTableCodec, empty)
        decoded = OfferingTableCodec.decode(OfferingTableCodec.encode(empty))
        assert decoded.entries == ()
        assert bits(decoded.generated_at_h) == bits(-0.0)

    def test_empty_cached_solution(self):
        empty = CachedSolution(
            segment_index=0,
            origin=Point(-0.0, 0.0),
            generated_at_h=0.0,
            eta_h=0.0,
            radius_km=1.0,
            pool=(),
            components=(),
        )
        assert_byte_stable(CachedSolutionCodec, empty)

    def test_decode_rejects_wrong_shape(self):
        with pytest.raises(CodecError):
            IntervalCodec.decode([1, 2])
        with pytest.raises(CodecError):
            ChargerCodec.decode({"charger_id": 1})  # missing fields
        with pytest.raises(CodecError):
            OfferingTableCodec.decode({"segment_index": 0, "entries": "no"})

    def test_charger_decode_rejects_unknown_enum(self):
        payload = ChargerCodec.encode(
            Charger(
                charger_id=1,
                point=Point(0.0, 0.0),
                node_id=0,
                rate_kw=50.0,
                plug_type=PlugType.CCS,
                plugs=2,
                solar_capacity_kw=10.0,
                source=RenewableSource.LOCAL_SOLAR,
            )
        )
        payload["plug_type"] = "warp-coil"
        with pytest.raises(CodecError):
            ChargerCodec.decode(payload)


class TestCodecVersions:
    def test_registry_covers_all_codecs(self):
        assert set(CODEC_VERSIONS) == {
            "interval", "point", "segment", "charger", "component-scores",
            "sc-score", "weights", "offering-entry", "offering-table",
            "cached-solution", "cache-stats", "moving-query", "trip",
        }
        # v2: cached-solution and cache-stats grew live-graph epoch fields.
        assert CODEC_VERSIONS["cached-solution"] == 2
        assert CODEC_VERSIONS["cache-stats"] == 2
        assert all(
            v == 1
            for tag, v in CODEC_VERSIONS.items()
            if tag not in ("cached-solution", "cache-stats")
        )

    def test_current_versions_pass(self):
        check_codec_versions(dict(CODEC_VERSIONS), "test")

    def test_unknown_tag_refused(self):
        with pytest.raises(CodecError):
            check_codec_versions({"hologram": 1}, "test")

    def test_version_mismatch_refused(self):
        with pytest.raises(CodecError):
            check_codec_versions({"interval": 2}, "test")

    def test_config_round_trip(self):
        config = EcoChargeConfig(k=4, radius_km=12.5, engine="ch")
        decoded = decode_config(encode_config(config))
        assert decoded == config
        assert canonical_dumps(encode_config(decoded)) == canonical_dumps(
            encode_config(config)
        )


# ---------------------------------------------------------------------------
# journal: append, read, torn-tail detection
# ---------------------------------------------------------------------------


class TestJournal:
    def test_append_read_round_trip(self, tmp_path):
        journal = SessionJournal(tmp_path / "j.jsonl", fsync=False)
        journal.append("session-open", {"a": 1})
        journal.append("segment", {"position": 0})
        journal.close()
        result = read_journal(tmp_path / "j.jsonl")
        assert [r.record_type for r in result.records] == ["session-open", "segment"]
        assert [r.seq for r in result.records] == [1, 2]
        assert result.torn_lines_discarded == 0

    def test_torn_final_line_is_discarded(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SessionJournal(path, fsync=False)
        journal.append("session-open", {"a": 1})
        journal.append("segment", {"position": 0})
        journal.close()
        raw = path.read_text()
        path.write_text(raw[: len(raw) - 17])  # tear the last record
        result = read_journal(path)
        assert [r.seq for r in result.records] == [1]
        assert result.torn_lines_discarded == 1

    def test_checksum_flip_is_detected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SessionJournal(path, fsync=False)
        journal.append("segment", {"position": 0, "value": "aa"})
        journal.close()
        corrupted = path.read_text().replace('"value":"aa"', '"value":"ab"')
        path.write_text(corrupted)
        result = read_journal(path)
        assert result.records == ()
        assert result.torn_lines_discarded == 1

    def test_everything_after_a_tear_is_distrusted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SessionJournal(path, fsync=False)
        journal.append("segment", {"position": 0})
        journal.append("segment", {"position": 1})
        journal.append("segment", {"position": 2})
        journal.close()
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # tear the middle record
        path.write_text("\n".join(lines) + "\n")
        result = read_journal(path)
        assert [r.seq for r in result.records] == [1]
        assert result.torn_lines_discarded == 2

    def test_sequence_gap_breaks_the_chain(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SessionJournal(path, fsync=False)
        journal.append("segment", {"position": 0})
        journal.append("segment", {"position": 1})
        journal.close()
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\n" + lines[0] + "\n")  # seq 1, then 1 again
        result = read_journal(path)
        assert [r.seq for r in result.records] == [1]
        assert result.torn_lines_discarded == 1

    def test_truncate_through_drops_prefix(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SessionJournal(path, fsync=False)
        for position in range(4):
            journal.append("segment", {"position": position})
        journal.truncate_through(2)
        result = read_journal(path)
        assert [r.seq for r in result.records] == [3, 4]

    def test_missing_file_reads_empty(self, tmp_path):
        result = read_journal(tmp_path / "absent.jsonl")
        assert result.records == ()
        assert result.last_seq == 0

    def test_injected_torn_append(self, tmp_path):
        injector = FaultInjector(
            seed=0, crash_plan=[CrashPoint("mid-journal-append", at_occurrence=2)]
        )
        journal = SessionJournal(tmp_path / "j.jsonl", injector=injector, fsync=False)
        journal.append("segment", {"position": 0})
        with pytest.raises(SessionCrash):
            journal.append("segment", {"position": 1})
        journal.close()
        result = read_journal(tmp_path / "j.jsonl")
        assert [r.seq for r in result.records] == [1]
        assert result.torn_lines_discarded == 1


# ---------------------------------------------------------------------------
# snapshots
# ---------------------------------------------------------------------------


class TestSnapshot:
    def _snapshot(self) -> SessionSnapshot:
        return SessionSnapshot(
            session_id="s1",
            journal_seq=7,
            next_position=3,
            trip={"node_ids": [1, 2], "departure_time_h": encode_float(10.0)},
            config=encode_config(EcoChargeConfig()),
            tables=(),
            failed_segments=(2,),
            cache_entry=None,
            cache_stats=CacheStats(hits=1, misses=2),
        )

    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "snapshot.json"
        write_snapshot(path, self._snapshot(), fsync=False)
        loaded = load_snapshot(path)
        assert loaded == self._snapshot()

    def test_encode_is_byte_stable(self):
        snapshot = self._snapshot()
        again = SessionSnapshot.decode(snapshot.encode())
        assert canonical_dumps(again.encode()) == canonical_dumps(snapshot.encode())

    def test_missing_file_is_none(self, tmp_path):
        assert load_snapshot(tmp_path / "absent.json") is None

    def test_corrupt_file_is_none(self, tmp_path):
        path = tmp_path / "snapshot.json"
        write_snapshot(path, self._snapshot(), fsync=False)
        path.write_text(path.read_text()[:40])
        assert load_snapshot(path) is None

    def test_wrong_version_is_refused(self):
        payload = self._snapshot().encode()
        payload["version"] = 99
        with pytest.raises(CodecError):
            SessionSnapshot.decode(payload)


# ---------------------------------------------------------------------------
# shared small world (fresh per module: backend switching mutates engines)
# ---------------------------------------------------------------------------


def _build_environment() -> ChargingEnvironment:
    network = build_city_network(
        NetworkSpec(width_km=16.0, height_km=12.0, block_km=1.5, seed=42)
    )
    registry = generate_catalog(
        network, CatalogSpec(charger_count=60, hotspots=3, seed=7)
    )
    return ChargingEnvironment(network, registry, seed=5)


def _trip_for(environment: ChargingEnvironment) -> Trip:
    nodes = sorted(environment.network.node_ids())
    return Trip.route(environment.network, nodes[0], nodes[-1], departure_time_h=10.0)


CONFIG = EcoChargeConfig(k=3, segment_km=2.0)


@pytest.fixture(scope="module")
def world():
    """(environment, trip) reused by non-mutating durability tests."""
    environment = _build_environment()
    return environment, _trip_for(environment)


def _encoded_tables(run) -> list[str]:
    return [canonical_dumps(OfferingTableCodec.encode(t)) for t in run.tables]


# ---------------------------------------------------------------------------
# torn-state rollback (core transaction boundary, no durability needed)
# ---------------------------------------------------------------------------


class TornRanker:
    """Ranks one segment successfully, mutates the cache, then fails —
    the half-applied transaction run_over_trip must roll back."""

    def __init__(self, inner: EcoChargeRanker, fail_at_position: int):
        self.inner = inner
        self.fail_at = fail_at_position
        self.name = inner.name
        self.state_at_failure: CacheState | None = None

    def rank_segment(self, trip, segment, eta_h, now_h, next_segment=None):
        position_table = self.inner.rank_segment(
            trip, segment, eta_h=eta_h, now_h=now_h, next_segment=next_segment
        )
        if segment.index == self.fail_at:
            # The cache already absorbed this segment's store — exactly
            # the torn state the rollback must undo.
            self.state_at_failure = self.inner.checkpoint_state()
            raise TransientUpstreamError("busy", "mid-segment provider death")
        return position_table

    def reset(self):
        self.inner.reset()

    def checkpoint_state(self):
        return self.inner.checkpoint_state()

    def restore_state(self, state):
        self.inner.restore_state(state)


class TestTornStateRollback:
    def test_cache_checkpoint_restore_round_trip(self, world):
        environment, trip = world
        ranker = EcoChargeRanker(environment, CONFIG)
        run_over_trip(ranker, environment, trip, segment_km=CONFIG.segment_km)
        checkpoint = ranker.checkpoint_state()
        before_stats = CacheStatsCodec.encode(checkpoint.stats)
        ranker.reset()
        assert ranker.cache_entry is None
        ranker.restore_state(checkpoint)
        assert ranker.cache_entry is checkpoint.entry
        assert CacheStatsCodec.encode(ranker.cache_stats) == before_stats

    def test_restore_is_isolated_from_later_mutation(self):
        cache = DynamicCache(range_km=5.0, ttl_h=1.0)
        cache.lookup(Point(0.0, 0.0), now_h=0.0)  # one miss
        state = cache.checkpoint()
        cache.lookup(Point(0.0, 0.0), now_h=0.0)  # another miss
        assert cache.stats.misses == 2
        cache.restore(state)
        assert cache.stats.misses == 1
        # The checkpoint's stats copy must not alias the live counters.
        cache.lookup(Point(0.0, 0.0), now_h=0.0)
        assert state.stats.misses == 1

    def test_failed_segment_rolls_back_to_checkpoint(self, world):
        environment, trip = world
        segments = trip.segments(CONFIG.segment_km)
        fail_at = segments[2].index
        torn = TornRanker(EcoChargeRanker(environment, CONFIG), fail_at)
        run = run_over_trip(torn, environment, trip, segment_km=CONFIG.segment_km)
        assert fail_at in run.failed_segments
        assert torn.state_at_failure is not None
        # The failing segment's store was rolled back: the cache no
        # longer holds the entry the torn transaction wrote...
        assert torn.inner.cache_entry is not torn.state_at_failure.entry
        # ...and the trip carried on past the failure.
        assert len(run.tables) == len(segments) - 1

    def test_rolled_back_run_matches_run_without_the_mutation(self, world):
        environment, trip = world
        segments = trip.segments(CONFIG.segment_km)
        fail_at = segments[2].index
        torn = TornRanker(EcoChargeRanker(environment, CONFIG), fail_at)
        torn_run = run_over_trip(torn, environment, trip, segment_km=CONFIG.segment_km)

        class SkippingRanker(TornRanker):
            def rank_segment(self, trip, segment, eta_h, now_h, next_segment=None):
                if segment.index == self.fail_at:
                    # Fail *before* touching the cache: the clean baseline.
                    raise TransientUpstreamError("busy", "pre-segment death")
                return self.inner.rank_segment(
                    trip, segment, eta_h=eta_h, now_h=now_h, next_segment=next_segment
                )

        clean = SkippingRanker(EcoChargeRanker(environment, CONFIG), fail_at)
        clean_run = run_over_trip(clean, environment, trip, segment_km=CONFIG.segment_km)
        # Rollback makes the half-applied mutation invisible: both runs
        # produce bitwise-identical tables for every remaining segment.
        assert _encoded_tables(torn_run) == _encoded_tables(clean_run)


# ---------------------------------------------------------------------------
# crash recovery: bitwise replay equality at every crash point, both engines
# ---------------------------------------------------------------------------

CRASH_POINTS = ("segment-start", "mid-segment", "mid-journal-append", "post-snapshot")


@pytest.fixture(scope="module")
def baselines():
    """Uninterrupted encoded tables per engine, computed once."""
    out = {}
    for engine in ("dijkstra", "ch"):
        environment = _build_environment()
        trip = _trip_for(environment)
        config = EcoChargeConfig(k=3, segment_km=2.0, engine=engine)
        run = run_over_trip(
            EcoChargeRanker(environment, config),
            environment,
            trip,
            segment_km=config.segment_km,
        )
        out[engine] = _encoded_tables(run)
    return out


class TestCrashRecovery:
    @pytest.mark.parametrize("engine", ["dijkstra", "ch"])
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_recovery_is_bitwise_identical(self, tmp_path, baselines, point, engine):
        config = EcoChargeConfig(k=3, segment_km=2.0, engine=engine)
        injector = FaultInjector(
            seed=0, crash_plan=[CrashPoint(point, at_occurrence=2)]
        )
        durability = DurabilityConfig(snapshot_every=2, fsync=False)
        manager = SessionManager(tmp_path, durability, injector=injector)
        environment = _build_environment()
        session = manager.open("s1", environment, _trip_for(environment), config)
        with pytest.raises(SessionCrash):
            session.run()
        # The restarted process: fresh environment, fresh manager.
        environment2 = _build_environment()
        manager2 = SessionManager(tmp_path, durability)
        resumed = manager2.resume("s1", environment2)
        info = resumed.recovery
        assert info is not None and info.accounting_ok
        run = resumed.run()
        manager2.close(resumed)
        assert _encoded_tables(run) == baselines[engine]
        assert resumed.accounting_ok()
        if point == "mid-journal-append":
            assert info.torn_lines_discarded == 1
        if point == "post-snapshot":
            # Snapshot written, journal not truncated: the overlap is
            # resolved by seq, never by replaying records twice.
            assert info.snapshot_loaded

    def test_double_crash_then_recovery(self, tmp_path, baselines):
        """Crash, resume, crash again, resume again — still bitwise."""
        config = EcoChargeConfig(k=3, segment_km=2.0, engine="dijkstra")
        durability = DurabilityConfig(snapshot_every=2, fsync=False)
        environment = _build_environment()
        manager = SessionManager(
            tmp_path,
            durability,
            injector=FaultInjector(
                seed=0, crash_plan=[CrashPoint("mid-segment", at_occurrence=2)]
            ),
        )
        session = manager.open("s1", environment, _trip_for(environment), config)
        with pytest.raises(SessionCrash):
            session.run()
        manager2 = SessionManager(
            tmp_path,
            durability,
            injector=FaultInjector(
                seed=0, crash_plan=[CrashPoint("mid-journal-append", at_occurrence=2)]
            ),
        )
        with pytest.raises(SessionCrash):
            manager2.resume("s1", _build_environment()).run()
        manager3 = SessionManager(tmp_path, durability)
        resumed = manager3.resume("s1", _build_environment())
        run = resumed.run()
        manager3.close(resumed)
        assert _encoded_tables(run) == baselines["dijkstra"]

    def test_resume_after_clean_close_returns_full_run(self, tmp_path, baselines):
        config = EcoChargeConfig(k=3, segment_km=2.0, engine="dijkstra")
        durability = DurabilityConfig(snapshot_every=2, fsync=False)
        environment = _build_environment()
        manager = SessionManager(tmp_path, durability)
        session = manager.open("s1", environment, _trip_for(environment), config)
        session.run()
        manager.close(session)
        resumed = manager.resume("s1", _build_environment())
        run = resumed.run()
        assert _encoded_tables(run) == baselines["dijkstra"]
        assert resumed.recovery.snapshot_loaded

    def test_session_hygiene(self, tmp_path, world):
        environment, trip = world
        manager = SessionManager(tmp_path, DurabilityConfig(fsync=False))
        with pytest.raises(SessionStateError):
            manager.session_dir("../escape")
        with pytest.raises(SessionStateError):
            manager.resume("never-opened", environment)
        session = manager.open("s1", environment, trip, CONFIG)
        with pytest.raises(SessionStateError):
            manager.open("s1", environment, trip, CONFIG)  # journal exists
        session.close()
        session.close()  # idempotent
        with pytest.raises(SessionStateError):
            session.run()
        assert manager.has_session("s1")
        assert not manager.has_session("s2")


# ---------------------------------------------------------------------------
# accounting reconciliation (the ApiUsage identity, extended to the journal)
# ---------------------------------------------------------------------------


class TestAccountingReconciliation:
    def test_session_accounting_reconciles(self, tmp_path, world):
        environment, trip = world
        manager = SessionManager(tmp_path, DurabilityConfig(fsync=False))
        session = manager.open("s1", environment, trip, CONFIG)
        run = session.run()
        assert run.completed_cleanly
        assert session.accounting_ok()
        live = session.ranker.cache_stats
        acct = session.accounting
        assert (acct.hits, acct.misses) == (live.hits, live.misses)
        manager.close(session)

    def test_delta_between_and_round_trip(self):
        before = CacheStats(hits=1, misses=2, expirations=1, out_of_range=0)
        after = CacheStats(hits=3, misses=2, expirations=1, out_of_range=0)
        delta = CacheEventDelta.between(before, after, stores=1)
        assert delta.hits == 2 and delta.misses == 0 and delta.stores == 1
        assert CacheEventDelta.decode(delta.encode()) == delta

    def test_corrupted_delta_fails_reconciliation(self):
        stats = CacheStats(hits=2, misses=1)
        accounting = JournalCacheAccounting.from_base(CacheStats())
        accounting.apply(CacheEventDelta(hits=2, misses=1, stores=1))
        assert accounting.accounts_for(stats)
        drifted = JournalCacheAccounting.from_base(CacheStats())
        drifted.apply(CacheEventDelta(hits=1, misses=1, stores=1))  # lost a hit
        assert not drifted.accounts_for(stats)

    def test_tampered_journal_delta_is_caught_at_resume(self, tmp_path, world):
        environment, trip = world
        durability = DurabilityConfig(snapshot_every=100, fsync=False)
        manager = SessionManager(
            tmp_path,
            durability,
            injector=FaultInjector(
                seed=0, crash_plan=[CrashPoint("mid-segment", at_occurrence=4)]
            ),
        )
        session = manager.open("s1", environment, trip, CONFIG)
        with pytest.raises(SessionCrash):
            session.run()
        # Tamper: inflate one committed record's hit delta, with a valid
        # checksum (an "honest" corruption the CRC cannot catch).
        from repro.durability.journal import _frame

        journal_path = tmp_path / "s1" / "journal.jsonl"
        records = read_journal(journal_path).records
        lines = []
        for record in records:
            payload = dict(record.payload)
            if record.record_type == "segment" and record.seq == records[-1].seq:
                events = dict(payload["events"])
                events["hits"] = events["hits"] + 5
                payload["events"] = events
            lines.append(_frame(record.seq, record.record_type, payload))
        journal_path.write_text("\n".join(lines) + "\n")
        resumed = SessionManager(tmp_path, durability).resume(
            "s1", _build_environment()
        )
        assert not resumed.recovery.accounting_ok


# ---------------------------------------------------------------------------
# trip codec needs the network
# ---------------------------------------------------------------------------


class TestTripCodec:
    def test_round_trip_against_network(self, world):
        environment, trip = world
        payload = TripCodec.encode(trip)
        decoded = TripCodec.decode(payload, environment.network)
        assert decoded.node_ids == trip.node_ids
        assert bits(decoded.departure_time_h) == bits(trip.departure_time_h)
        assert canonical_dumps(TripCodec.encode(decoded)) == canonical_dumps(payload)
