"""Continuous kNN split-point tests (exact 1NN sweep and sampled kNN)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cknn import (
    coverage_is_complete,
    split_points_1nn,
    split_points_knn_sampled,
)
from repro.spatial.geometry import Point, Segment


def _nn_at(point, candidates):
    return min(candidates, key=lambda c: c[1].squared_distance_to(point))[0]


class TestSplitPoints1NN:
    SEGMENT = Segment(Point(0, 0), Point(10, 0))

    def test_single_candidate_no_split(self):
        splits = split_points_1nn(self.SEGMENT, [(1, Point(5, 5))])
        assert len(splits) == 1
        assert splits[0].nn_ids == (1,)
        assert coverage_is_complete(splits)

    def test_two_candidates_one_split(self):
        candidates = [(1, Point(0, 1)), (2, Point(10, 1))]
        splits = split_points_1nn(self.SEGMENT, candidates)
        assert [s.nn_ids[0] for s in splits] == [1, 2]
        # Symmetric sites: the bisector crosses exactly at t = 0.5.
        assert splits[0].t_end == pytest.approx(0.5)

    def test_three_colinear_sites(self):
        candidates = [(1, Point(1, 1)), (2, Point(5, 1)), (3, Point(9, 1))]
        splits = split_points_1nn(self.SEGMENT, candidates)
        assert [s.nn_ids[0] for s in splits] == [1, 2, 3]
        assert splits[0].t_end == pytest.approx(0.3)
        assert splits[1].t_end == pytest.approx(0.7)

    def test_site_never_winning_is_absent(self):
        candidates = [(1, Point(0, 1)), (2, Point(10, 1)), (3, Point(5, 50))]
        splits = split_points_1nn(self.SEGMENT, candidates)
        winners = {s.nn_ids[0] for s in splits}
        assert 3 not in winners

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError):
            split_points_1nn(self.SEGMENT, [])

    def test_winners_match_pointwise_nn(self):
        rng = np.random.default_rng(0)
        candidates = [
            (i, Point(float(rng.uniform(-2, 12)), float(rng.uniform(-5, 5))))
            for i in range(15)
        ]
        splits = split_points_1nn(self.SEGMENT, candidates)
        assert coverage_is_complete(splits)
        for split in splits:
            mid_t = (split.t_start + split.t_end) / 2
            probe = self.SEGMENT.interpolate(mid_t)
            assert _nn_at(probe, candidates) == split.nn_ids[0]

    def test_consecutive_winners_differ(self):
        rng = np.random.default_rng(4)
        candidates = [
            (i, Point(float(rng.uniform(0, 10)), float(rng.uniform(-3, 3))))
            for i in range(10)
        ]
        splits = split_points_1nn(self.SEGMENT, candidates)
        for a, b in zip(splits, splits[1:]):
            assert a.nn_ids != b.nn_ids

    def test_split_count_bounded_by_candidates(self):
        rng = np.random.default_rng(7)
        candidates = [
            (i, Point(float(rng.uniform(0, 10)), float(rng.uniform(-3, 3))))
            for i in range(25)
        ]
        splits = split_points_1nn(self.SEGMENT, candidates)
        assert len(splits) <= len(candidates)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-20, max_value=20, allow_nan=False),
                st.floats(min_value=-20, max_value=20, allow_nan=False),
            ),
            min_size=1,
            max_size=12,
            unique=True,
        )
    )
    def test_property_exact_sweep_matches_sampling(self, raw):
        candidates = [(i, Point(x, y)) for i, (x, y) in enumerate(raw)]
        segment = Segment(Point(-5, 1), Point(15, -2))
        splits = split_points_1nn(segment, candidates)
        assert coverage_is_complete(splits)
        # Winner at interior probes of every stretch must be the pointwise NN.
        for split in splits:
            if split.length_fraction < 1e-6:
                continue
            for frac in (0.25, 0.5, 0.75):
                t = split.t_start + frac * split.length_fraction
                probe = segment.interpolate(t)
                want_d = min(p.distance_to(probe) for __, p in candidates)
                got_p = dict(candidates)[split.nn_ids[0]]
                assert got_p.distance_to(probe) == pytest.approx(want_d, abs=1e-6)


class TestSplitPointsKnnSampled:
    SEGMENT = Segment(Point(0, 0), Point(10, 0))

    def test_covers_unit_interval(self):
        rng = np.random.default_rng(1)
        candidates = [
            (i, Point(float(rng.uniform(0, 10)), float(rng.uniform(-4, 4))))
            for i in range(12)
        ]
        splits = split_points_knn_sampled(self.SEGMENT, candidates, k=3)
        assert coverage_is_complete(splits)

    def test_k1_agrees_with_exact(self):
        rng = np.random.default_rng(2)
        candidates = [
            (i, Point(float(rng.uniform(0, 10)), float(rng.uniform(-4, 4))))
            for i in range(8)
        ]
        exact = split_points_1nn(self.SEGMENT, candidates)
        sampled = split_points_knn_sampled(self.SEGMENT, candidates, k=1, step_km=0.05)
        assert [s.nn_ids[0] for s in exact] == [s.nn_ids[0] for s in sampled]
        for e, s in zip(exact[:-1], sampled[:-1]):
            assert e.t_end == pytest.approx(s.t_end, abs=0.05)

    def test_knn_sets_correct_at_probes(self):
        rng = np.random.default_rng(3)
        candidates = [
            (i, Point(float(rng.uniform(0, 10)), float(rng.uniform(-4, 4))))
            for i in range(10)
        ]
        splits = split_points_knn_sampled(self.SEGMENT, candidates, k=3, step_km=0.05)
        for split in splits:
            if split.length_fraction < 0.02:
                continue  # refinement tolerance
            mid = self.SEGMENT.interpolate((split.t_start + split.t_end) / 2)
            ranked = sorted(candidates, key=lambda c: c[1].squared_distance_to(mid))
            assert set(split.nn_ids) == {c[0] for c in ranked[:3]}

    def test_k_clamped_to_pool(self):
        splits = split_points_knn_sampled(self.SEGMENT, [(1, Point(5, 1))], k=5)
        assert splits[0].nn_ids == (1,)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_points_knn_sampled(self.SEGMENT, [(1, Point(0, 0))], k=0)
        with pytest.raises(ValueError):
            split_points_knn_sampled(self.SEGMENT, [], k=1)

    def test_zero_length_segment(self):
        seg = Segment(Point(3, 3), Point(3, 3))
        splits = split_points_knn_sampled(seg, [(1, Point(0, 0)), (2, Point(5, 5))], k=1)
        assert coverage_is_complete(splits)


class TestCoverageCheck:
    def test_empty_is_incomplete(self):
        assert not coverage_is_complete([])

    def test_gap_detected(self):
        from repro.core.cknn import SplitPoint

        p = Point(0, 0)
        splits = [
            SplitPoint(0.0, 0.4, p, p, (1,)),
            SplitPoint(0.6, 1.0, p, p, (2,)),
        ]
        assert not coverage_is_complete(splits)
