"""Battery charging-curve tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chargers.battery import DEFAULT_CURVE, ChargingCurve


class TestChargingCurve:
    def test_full_acceptance_below_knee(self):
        curve = ChargingCurve(taper_start_soc=0.8)
        for soc in (0.0, 0.3, 0.8):
            assert curve.acceptance_fraction(soc) == 1.0

    def test_floor_at_full(self):
        curve = ChargingCurve(floor_fraction=0.05)
        assert curve.acceptance_fraction(1.0) == pytest.approx(0.05)

    def test_linear_taper_midpoint(self):
        curve = ChargingCurve(taper_start_soc=0.8, floor_fraction=0.0)
        assert curve.acceptance_fraction(0.9) == pytest.approx(0.5)

    def test_accepted_power(self):
        assert DEFAULT_CURVE.accepted_kw(22.0, 0.5) == 22.0
        assert DEFAULT_CURVE.accepted_kw(22.0, 1.0) == pytest.approx(22.0 * 0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChargingCurve(taper_start_soc=0.0)
        with pytest.raises(ValueError):
            ChargingCurve(taper_start_soc=1.0)
        with pytest.raises(ValueError):
            ChargingCurve(floor_fraction=1.5)
        with pytest.raises(ValueError):
            DEFAULT_CURVE.acceptance_fraction(1.2)
        with pytest.raises(ValueError):
            DEFAULT_CURVE.accepted_kw(-1.0, 0.5)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_acceptance_bounded(self, soc):
        fraction = DEFAULT_CURVE.acceptance_fraction(soc)
        assert DEFAULT_CURVE.floor_fraction <= fraction <= 1.0

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_acceptance_non_increasing(self, a, b):
        lo, hi = sorted((a, b))
        assert DEFAULT_CURVE.acceptance_fraction(lo) >= DEFAULT_CURVE.acceptance_fraction(hi)


class TestSessionIntegration:
    def test_taper_slows_topping_up(self, small_registry, small_environment):
        """Charging the last 20 % takes disproportionately long."""
        from repro.chargers.charger import Vehicle
        from repro.chargers.session import ChargingSessionSimulator

        sim = ChargingSessionSimulator(small_environment.sustainable)
        charger = max(small_registry.all(), key=lambda c: c.solar_capacity_kw)
        low = Vehicle(0, battery_kwh=30.0, state_of_charge=0.2)
        high = Vehicle(1, battery_kwh=30.0, state_of_charge=0.85)
        session_low = sim.simulate(charger, low, start_h=12.0, duration_h=1.0)
        session_high = sim.simulate(charger, high, start_h=12.0, duration_h=1.0)
        if session_low.energy_kwh > 0:
            assert session_high.energy_kwh < session_low.energy_kwh

    def test_no_taper_curve_option(self, small_registry, small_environment):
        from repro.chargers.battery import ChargingCurve
        from repro.chargers.charger import Vehicle
        from repro.chargers.session import ChargingSessionSimulator

        flat = ChargingCurve(taper_start_soc=0.999, floor_fraction=1.0)
        sim_flat = ChargingSessionSimulator(small_environment.sustainable, curve=flat)
        sim_taper = ChargingSessionSimulator(small_environment.sustainable)
        charger = max(small_registry.all(), key=lambda c: c.solar_capacity_kw)
        nearly_full = Vehicle(0, battery_kwh=30.0, state_of_charge=0.9)
        flat_kwh = sim_flat.simulate(charger, nearly_full, 12.0, 1.0).energy_kwh
        taper_kwh = sim_taper.simulate(charger, nearly_full, 12.0, 1.0).energy_kwh
        assert taper_kwh <= flat_kwh
