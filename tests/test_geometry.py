"""Unit tests for planar/geographic geometry primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial.geometry import (
    GeoPoint,
    LocalProjection,
    Point,
    Segment,
    centroid,
    haversine_km,
    polyline_length,
)

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)
points = st.builds(Point, finite, finite)


class TestPoint:
    def test_distance_matches_pythagoras(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_squared_distance(self):
        assert Point(1, 1).squared_distance_to(Point(4, 5)) == pytest.approx(25.0)

    def test_manhattan_and_chebyshev(self):
        a, b = Point(0, 0), Point(3, -4)
        assert a.manhattan_distance_to(b) == pytest.approx(7.0)
        assert a.chebyshev_distance_to(b) == pytest.approx(4.0)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_translated(self):
        assert Point(1, 2).translated(-1, 3) == Point(0, 5)

    @given(points, points)
    def test_distance_symmetry(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-7

    @given(points)
    def test_distance_to_self_is_zero(self, a):
        assert a.distance_to(a) == 0.0

    @given(points, points)
    def test_metrics_ordering(self, a, b):
        """Chebyshev <= Euclidean <= Manhattan for any pair."""
        euclid = a.distance_to(b)
        assert a.chebyshev_distance_to(b) <= euclid + 1e-9
        assert euclid <= a.manhattan_distance_to(b) + 1e-9


class TestSegment:
    def test_length(self):
        assert Segment(Point(0, 0), Point(6, 8)).length == pytest.approx(10.0)

    def test_interpolate_endpoints(self):
        seg = Segment(Point(1, 1), Point(3, 5))
        assert seg.interpolate(0.0) == seg.start
        assert seg.interpolate(1.0) == seg.end

    def test_interpolate_midpoint(self):
        seg = Segment(Point(0, 0), Point(2, 2))
        assert seg.interpolate(0.5) == Point(1, 1)

    def test_interpolate_rejects_out_of_range(self):
        seg = Segment(Point(0, 0), Point(1, 0))
        with pytest.raises(ValueError):
            seg.interpolate(1.5)

    def test_project_inside(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        t, closest = seg.project(Point(4, 3))
        assert t == pytest.approx(0.4)
        assert closest == Point(4, 0)

    def test_project_clamps_before_start(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        t, closest = seg.project(Point(-5, 2))
        assert t == 0.0
        assert closest == seg.start

    def test_project_degenerate_segment(self):
        seg = Segment(Point(2, 2), Point(2, 2))
        t, closest = seg.project(Point(5, 5))
        assert t == 0.0
        assert closest == Point(2, 2)

    def test_distance_to_point(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.distance_to_point(Point(5, 7)) == pytest.approx(7.0)

    def test_sample_includes_endpoints(self):
        seg = Segment(Point(0, 0), Point(1, 0))
        samples = list(seg.sample(0.3))
        assert samples[0] == seg.start
        assert samples[-1] == seg.end

    def test_sample_zero_length(self):
        seg = Segment(Point(1, 1), Point(1, 1))
        assert list(seg.sample(0.5)) == [Point(1, 1)]

    def test_sample_rejects_bad_step(self):
        with pytest.raises(ValueError):
            list(Segment(Point(0, 0), Point(1, 0)).sample(0.0))

    @given(points, points, st.floats(min_value=0.0, max_value=1.0))
    def test_interpolated_point_is_on_segment(self, a, b, t):
        seg = Segment(a, b)
        p = seg.interpolate(t)
        # Distance via the point equals the segment length (collinearity).
        assert a.distance_to(p) + p.distance_to(b) == pytest.approx(
            seg.length, abs=1e-6
        )


class TestGeo:
    def test_haversine_zero(self):
        assert haversine_km(50.0, 8.0, 50.0, 8.0) == 0.0

    def test_haversine_known_pair(self):
        # Berlin (52.52, 13.405) to Munich (48.137, 11.575) ~ 504 km.
        assert haversine_km(52.52, 13.405, 48.137, 11.575) == pytest.approx(504, abs=5)

    def test_geopoint_distance(self):
        a, b = GeoPoint(52.52, 13.405), GeoPoint(48.137, 11.575)
        assert a.distance_to(b) == pytest.approx(504, abs=5)

    def test_projection_roundtrip(self):
        proj = LocalProjection(GeoPoint(53.14, 8.21))  # Oldenburg
        geo = GeoPoint(53.20, 8.30)
        back = proj.to_geo(proj.to_plane(geo))
        assert back.lat == pytest.approx(geo.lat, abs=1e-9)
        assert back.lon == pytest.approx(geo.lon, abs=1e-9)

    def test_projection_distance_accuracy(self):
        """Planar distance approximates haversine at city scale."""
        proj = LocalProjection(GeoPoint(53.14, 8.21))
        a, b = GeoPoint(53.10, 8.15), GeoPoint(53.25, 8.35)
        planar = proj.to_plane(a).distance_to(proj.to_plane(b))
        true = a.distance_to(b)
        assert planar == pytest.approx(true, rel=0.01)


class TestPolylineHelpers:
    def test_polyline_length(self):
        pts = [Point(0, 0), Point(3, 4), Point(3, 10)]
        assert polyline_length(pts) == pytest.approx(11.0)

    def test_polyline_length_single_point(self):
        assert polyline_length([Point(1, 1)]) == 0.0

    def test_centroid(self):
        c = centroid([Point(0, 0), Point(2, 0), Point(1, 3)])
        assert c == Point(1.0, 1.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])
