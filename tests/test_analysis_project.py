"""Whole-program passes (R11-R14), the parallel/caching driver, the
baseline ratchet, SARIF export, and the suppression regressions.

Every project rule gets at least one failing and one clean fixture (the
same fixture discipline ``tests/test_analysis.py`` applies to R1-R10),
plus the interprocedural cases the passes exist for: taint chained
through two call hops, helper-mediated interval escapes, and
cross-module layer violations.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import check_paths, check_snippets, check_source
from repro.analysis.__main__ import main
from repro.analysis.baseline import Baseline
from repro.analysis.cache import GLOBAL_CACHE
from repro.analysis.engine import Analyzer
from repro.analysis.rules import ALL_RULES, select_rules
from repro.analysis.sarif import (
    SarifValidationError,
    render_sarif,
    sarif_log,
    validate_sarif,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def rule_ids(violations):
    return [v.rule_id for v in violations]


# ---------------------------------------------------------------------------
# R11 — determinism taint
# ---------------------------------------------------------------------------


class TestR11DeterminismTaint:
    PATH = "src/repro/durability/example.py"

    def test_clock_read_into_journal_append(self):
        snippet = (
            "import time\n"
            "def stamp(journal):\n"
            "    t = time.time()\n"
            "    journal.append(t)\n"
        )
        assert "R11" in rule_ids(check_source(snippet, self.PATH))

    def test_module_alias_clock_read(self):
        snippet = (
            "import time as wallclock\n"
            "def stamp(journal):\n"
            "    journal.append(wallclock.monotonic())\n"
        )
        assert "R11" in rule_ids(check_source(snippet, self.PATH))

    def test_from_import_clock_read(self):
        snippet = (
            "from time import monotonic\n"
            "def stamp(journal):\n"
            "    journal.append(monotonic())\n"
        )
        assert "R11" in rule_ids(check_source(snippet, self.PATH))

    def test_two_hop_interprocedural_taint(self):
        snippet = (
            "import time\n"
            "def _now():\n"
            "    return time.time()\n"
            "def _tag(offset):\n"
            "    return _now() + offset\n"
            "def write(journal):\n"
            "    journal.append(_tag(1.0))\n"
        )
        violations = [
            v for v in check_source(snippet, self.PATH) if v.rule_id == "R11"
        ]
        assert violations, "taint must survive two call hops"
        assert "via" in violations[0].message

    def test_unseeded_global_rng_into_snapshot(self):
        snippet = (
            "import random\n"
            "def snap(SessionSnapshot):\n"
            "    return SessionSnapshot(token=random.random())\n"
        )
        assert "R11" in rule_ids(check_source(snippet, self.PATH))

    def test_seeded_rng_is_clean(self):
        snippet = (
            "import random\n"
            "def snap(journal):\n"
            "    rng = random.Random(42)\n"
            "    journal.append(rng.random())\n"
        )
        assert rule_ids(check_source(snippet, self.PATH)) == []

    def test_unseeded_rng_object_is_tainted(self):
        snippet = (
            "import random\n"
            "def snap(journal):\n"
            "    rng = random.Random()\n"
            "    journal.append(rng.random())\n"
        )
        assert "R11" in rule_ids(check_source(snippet, self.PATH))

    def test_trace_id_keyword_sink(self):
        snippet = (
            "import time\n"
            "def make(span_cls):\n"
            "    return span_cls(trace_id=time.time())\n"
        )
        assert "R11" in rule_ids(check_source(snippet, self.PATH))

    def test_sorted_sanitizes_set_order(self):
        snippet = (
            "def dump(journal, chargers):\n"
            "    pending = set(chargers)\n"
            "    for charger in sorted(pending):\n"
            "        journal.append(charger)\n"
        )
        assert rule_ids(check_source(snippet, self.PATH)) == []

    def test_set_iteration_order_into_journal(self):
        snippet = (
            "def dump(journal, chargers):\n"
            "    pending = set(chargers)\n"
            "    for charger in pending:\n"
            "        journal.append(charger)\n"
        )
        assert "R11" in rule_ids(check_source(snippet, self.PATH))

    def test_test_files_are_exempt(self):
        snippet = (
            "import time\n"
            "def stamp(journal):\n"
            "    journal.append(time.time())\n"
        )
        assert rule_ids(check_source(snippet, "tests/test_example.py")) == []


# ---------------------------------------------------------------------------
# R12 — interval endpoint escape
# ---------------------------------------------------------------------------


class TestR12IntervalEscape:
    CORE = "src/repro/core/example.py"

    def test_public_return_of_raw_lo(self):
        snippet = "def lower(iv):\n    return iv.lo\n"
        assert "R12" in rule_ids(check_source(snippet, self.CORE))

    def test_width_binop_is_derived_quantity(self):
        snippet = "def width(iv):\n    return iv.hi - iv.lo\n"
        assert rule_ids(check_source(snippet, self.CORE)) == []

    def test_private_helper_is_not_a_boundary(self):
        snippet = "def _lower(iv):\n    return iv.lo\n"
        assert rule_ids(check_source(snippet, self.CORE)) == []

    def test_escape_through_private_helper(self):
        snippet = (
            "def _raw(iv):\n"
            "    return iv.lo\n"
            "def lower(iv):\n"
            "    return _raw(iv)\n"
        )
        violations = [
            v for v in check_source(snippet, self.CORE) if v.rule_id == "R12"
        ]
        assert violations, "endpoint must not escape via a private helper"
        assert violations[0].line == 4

    def test_min_preserves_endpoint_identity(self):
        snippet = (
            "def floor_of(a, b):\n"
            "    return min(a.lo, b.lo)\n"
        )
        assert "R12" in rule_ids(check_source(snippet, self.CORE))

    def test_outside_core_is_out_of_scope(self):
        snippet = "def lower(iv):\n    return iv.lo\n"
        assert rule_ids(check_source(snippet, "src/repro/server/example.py")) == []


# ---------------------------------------------------------------------------
# R13 — shared-state mutation
# ---------------------------------------------------------------------------


class TestR13SharedStateMutation:
    SERVER = "src/repro/server/example.py"

    def test_annotated_param_mutation_outside_owner(self):
        snippet = (
            "from repro.core.caching import CacheStats\n"
            "def bump(stats: CacheStats) -> None:\n"
            "    stats.hits += 1\n"
        )
        assert "R13" in rule_ids(check_source(snippet, self.SERVER))

    def test_mutation_inside_owner_module_is_sanctioned(self):
        snippet = (
            "from dataclasses import dataclass\n"
            "def bump(stats: CacheStats) -> None:\n"
            "    stats.hits += 1\n"
        )
        assert "R13" not in rule_ids(
            check_source(snippet, "src/repro/core/caching.py")
        )

    def test_method_call_is_the_sanctioned_api(self):
        snippet = (
            "from repro.resilience.health import EndpointHealth\n"
            "def bump(health: EndpointHealth) -> None:\n"
            "    health.record_call()\n"
        )
        assert rule_ids(check_source(snippet, self.SERVER)) == []

    def test_container_mutator_on_watched_attribute(self):
        snippet = (
            "from repro.observability.metrics import MetricsRegistry\n"
            "def reset(registry: MetricsRegistry) -> None:\n"
            "    registry.counters.clear()\n"
        )
        assert "R13" in rule_ids(check_source(snippet, self.SERVER))

    def test_ctor_inferred_type_mutation(self):
        snippet = (
            "from repro.resilience.health import EndpointHealth\n"
            "def make() -> EndpointHealth:\n"
            "    health = EndpointHealth(endpoint='weather')\n"
            "    health.calls += 1\n"
            "    return health\n"
        )
        assert "R13" in rule_ids(check_source(snippet, self.SERVER))

    def test_unwatched_types_are_ignored(self):
        snippet = (
            "def bump(counter) -> None:\n"
            "    counter.hits += 1\n"
        )
        assert rule_ids(check_source(snippet, self.SERVER)) == []


# ---------------------------------------------------------------------------
# R14 — layer conformance
# ---------------------------------------------------------------------------


class TestR14LayerConformance:
    def test_cross_module_upward_import(self):
        violations = check_snippets(
            {
                "src/repro/core/util.py": "from repro.server.app import serve\n",
                "src/repro/server/app.py": "def serve():\n    return None\n",
            }
        )
        r14 = [v for v in violations if v.rule_id == "R14"]
        assert r14 and r14[0].path == "src/repro/core/util.py"

    def test_downward_import_conforms(self):
        violations = check_snippets(
            {
                "src/repro/server/app.py": "from repro.core.offering import x\n",
                "src/repro/core/offering.py": "x = 1\n",
            }
        )
        assert [v for v in violations if v.rule_id == "R14"] == []

    def test_type_checking_import_is_exempt(self):
        snippet = (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.server.app import serve\n"
        )
        violations = check_source(snippet, "src/repro/core/util.py")
        assert [v for v in violations if v.rule_id == "R14"] == []

    def test_deferred_function_scope_import_is_exempt(self):
        snippet = (
            "def late():\n"
            "    from repro.server.app import serve\n"
            "    return serve\n"
        )
        violations = check_source(snippet, "src/repro/core/util.py")
        assert [v for v in violations if v.rule_id == "R14"] == []

    def test_shared_error_module_is_importable_from_anywhere(self):
        snippet = "from repro.resilience.errors import UpstreamError\n"
        violations = check_source(snippet, "src/repro/core/util.py")
        assert [v for v in violations if v.rule_id == "R14"] == []

    def test_upward_import_names_both_layers(self):
        violations = check_source(
            "from repro.resilience.gateway import ResilienceGateway\n",
            "src/repro/network/routes.py",
        )
        r14 = [v for v in violations if v.rule_id == "R14"]
        assert r14 and "resilience" in r14[0].message


# ---------------------------------------------------------------------------
# Suppression regressions
# ---------------------------------------------------------------------------


class TestSuppressionRegressions:
    def test_disable_next_line(self):
        plain = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Candidate:\n"
            "    score: float = 0.0\n"
        )
        path = "src/repro/core/example.py"
        assert "R3" in rule_ids(check_source(plain, path))
        lines = plain.splitlines(keepends=True)
        flagged_line = check_source(plain, path)[0].line
        lines.insert(flagged_line - 1, "# repro-check: disable-next-line=R3\n")
        assert rule_ids(check_source("".join(lines), path)) == []

    def test_disable_next_line_does_not_leak_to_later_lines(self):
        snippet = (
            "# repro-check: disable-next-line=R4\n"
            "def first(items=[]):\n"
            "    return items\n"
            "def second(extras=[]):\n"
            "    return extras\n"
        )
        violations = check_source(snippet, "src/repro/core/example.py")
        assert rule_ids(violations) == ["R4"]
        assert violations[0].line == 4

    def test_crlf_multi_rule_disable(self):
        body = "def f(a, b, items=[]): return a.lo < b.lo"
        pragma = "  # repro-check: disable=R1,R4"
        path = "src/repro/core/example.py"
        assert sorted(rule_ids(check_source(body + "\r\n", path))) == ["R1", "R4"]
        assert rule_ids(check_source(body + pragma + "\r\n", path)) == []

    def test_cr_only_line_endings(self):
        source = (
            "def f(items=[]):  # repro-check: disable=R4\r"
            "    return items\r"
        )
        assert rule_ids(check_source(source, "src/repro/core/example.py")) == []


# ---------------------------------------------------------------------------
# Baseline ratchet
# ---------------------------------------------------------------------------


class TestBaseline:
    VIOLATING = "def f(items=[]):\n    return items\n"

    def _project(self, tmp_path: Path) -> Path:
        tree = tmp_path / "proj"
        tree.mkdir()
        (tree / "mod.py").write_text(self.VIOLATING, encoding="utf-8")
        return tree

    def test_write_then_absorb(self, tmp_path, capsys):
        tree = self._project(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        assert main(["--baseline", str(baseline_path), "--write-baseline", str(tree)]) == 0
        assert baseline_path.exists()
        # Same findings are grandfathered: exit 0, reported as baselined.
        assert main(["--baseline", str(baseline_path), "--format", "json", str(tree)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == []
        assert len(payload["baselined"]) == 1

    def test_new_finding_still_fails(self, tmp_path, capsys):
        tree = self._project(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        assert main(["--baseline", str(baseline_path), "--write-baseline", str(tree)]) == 0
        (tree / "fresh.py").write_text(self.VIOLATING, encoding="utf-8")
        assert main(["--baseline", str(baseline_path), str(tree)]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out and "mod.py" not in out

    def test_counts_are_a_multiset(self, tmp_path):
        tree = self._project(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        assert main(["--baseline", str(baseline_path), "--write-baseline", str(tree)]) == 0
        # A second identical finding in the same file exceeds the
        # baselined count and must fail the run.
        (tree / "mod.py").write_text(
            self.VIOLATING + "def g(items=[]):\n    return items\n",
            encoding="utf-8",
        )
        assert main(["--baseline", str(baseline_path), str(tree)]) == 1

    def test_missing_baseline_file_is_usage_error(self, tmp_path):
        tree = self._project(tmp_path)
        assert main(["--baseline", str(tmp_path / "absent.json"), str(tree)]) == 2

    def test_round_trip(self, tmp_path):
        report = Analyzer(ALL_RULES).check_source(self.VIOLATING, rel_path="mod.py")
        baseline = Baseline.from_violations(report)
        path = tmp_path / "bl.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        new, grandfathered = loaded.split(report)
        assert new == [] and len(grandfathered) == 1


# ---------------------------------------------------------------------------
# SARIF export
# ---------------------------------------------------------------------------


class TestSarif:
    def test_cli_sarif_is_structurally_valid(self, tmp_path, capsys):
        tree = tmp_path / "proj"
        tree.mkdir()
        (tree / "mod.py").write_text("def f(items=[]):\n    return items\n")
        out_path = tmp_path / "report.sarif"
        assert main(["--format", "sarif", "--output", str(out_path), str(tree)]) == 1
        document = json.loads(out_path.read_text(encoding="utf-8"))
        validate_sarif(document)
        assert document["version"] == "2.1.0"
        results = document["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["R4"]
        assert results[0]["locations"][0]["physicalLocation"]["region"]["startLine"] == 1

    def test_rule_catalogue_is_complete(self):
        report = Analyzer(ALL_RULES).check_paths([SRC / "intervals.py"])
        log = sarif_log(report, ALL_RULES)
        ids = [rule["id"] for rule in log["runs"][0]["tool"]["driver"]["rules"]]
        assert ids == [rule.rule_id for rule in ALL_RULES]
        validate_sarif(log)

    def test_validator_rejects_wrong_version(self):
        with pytest.raises(SarifValidationError):
            validate_sarif({"version": "2.0.0", "runs": []})

    def test_validator_rejects_unknown_rule_id(self):
        report = Analyzer(ALL_RULES).check_paths([SRC / "intervals.py"])
        log = sarif_log(report, ALL_RULES)
        log["runs"][0]["results"] = [
            {"ruleId": "R99", "message": {"text": "ghost"}, "locations": []}
        ]
        with pytest.raises(SarifValidationError):
            validate_sarif(log)

    def test_against_vendored_2_1_0_schema(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        schema = json.loads(
            (SRC / "analysis" / "sarif_schema.json").read_text(encoding="utf-8")
        )
        tree = tmp_path / "proj"
        tree.mkdir()
        (tree / "mod.py").write_text("def f(items=[]):\n    return items\n")
        report = Analyzer(ALL_RULES).check_paths([tree])
        jsonschema.validate(
            json.loads(render_sarif(report, ALL_RULES)), schema
        )

    def test_baselined_findings_are_notes(self, tmp_path, capsys):
        tree = tmp_path / "proj"
        tree.mkdir()
        (tree / "mod.py").write_text("def f(items=[]):\n    return items\n")
        baseline_path = tmp_path / "baseline.json"
        assert main(["--baseline", str(baseline_path), "--write-baseline", str(tree)]) == 0
        out_path = tmp_path / "report.sarif"
        assert (
            main(
                [
                    "--format", "sarif",
                    "--baseline", str(baseline_path),
                    "--output", str(out_path),
                    str(tree),
                ]
            )
            == 0
        )
        document = json.loads(out_path.read_text(encoding="utf-8"))
        validate_sarif(document)
        (result,) = document["runs"][0]["results"]
        assert result["level"] == "note"
        assert result["baselineState"] == "unchanged"


# ---------------------------------------------------------------------------
# Parallel driver + extraction cache
# ---------------------------------------------------------------------------


class TestParallelDriver:
    TARGET = str(SRC / "analysis")

    def test_jobs_two_is_byte_identical_to_serial(self, tmp_path):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(["--format", "json", "--output", str(serial), self.TARGET]) == 0
        assert (
            main(
                ["--format", "json", "--jobs", "2", "--output", str(parallel), self.TARGET]
            )
            == 0
        )
        assert serial.read_bytes() == parallel.read_bytes()

    def test_jobs_auto_resolves(self, tmp_path):
        out = tmp_path / "auto.json"
        assert (
            main(
                ["--format", "json", "--jobs", "auto", "--output", str(out), self.TARGET]
            )
            == 0
        )

    def test_jobs_zero_is_usage_error(self):
        assert main(["--jobs", "0", self.TARGET]) == 2

    def test_jobs_garbage_is_usage_error(self):
        assert main(["--jobs", "lots", self.TARGET]) == 2


class TestExtractionCache:
    def test_repeat_load_hits_cache(self):
        GLOBAL_CACHE.clear()
        target = SRC / "intervals.py"
        check_paths([target])
        misses = GLOBAL_CACHE.stats.misses
        check_paths([target])
        assert GLOBAL_CACHE.stats.hits >= 1
        assert GLOBAL_CACHE.stats.misses == misses

    def test_facts_memoised_by_content(self):
        GLOBAL_CACHE.clear()
        target = SRC / "intervals.py"
        check_paths([target])
        check_paths([target])
        assert GLOBAL_CACHE.stats.facts_hits >= 1

    def test_content_key_tracks_content(self):
        key_a = GLOBAL_CACHE.content_key("m.py", "x = 1\n")
        key_b = GLOBAL_CACHE.content_key("m.py", "x = 2\n")
        assert key_a != key_b


# ---------------------------------------------------------------------------
# Docs stay in sync with the rule catalogue
# ---------------------------------------------------------------------------


class TestDocSync:
    DOC = REPO_ROOT / "docs" / "static_analysis.md"

    def _doc_rows(self):
        rows = {}
        for line in self.DOC.read_text(encoding="utf-8").splitlines():
            cells = [cell.strip() for cell in line.strip().strip("|").split("|")]
            if len(cells) >= 3 and cells[0].startswith("R") and cells[0][1:].isdigit():
                rows[cells[0]] = (cells[1].strip("`"), cells[2])
        return rows

    def test_every_rule_is_documented(self):
        rows = self._doc_rows()
        for rule in ALL_RULES:
            assert rule.rule_id in rows, f"{rule.rule_id} missing from {self.DOC}"

    def test_names_and_summaries_match_list_rules(self):
        rows = self._doc_rows()
        for rule in ALL_RULES:
            doc_name, doc_summary = rows[rule.rule_id]
            assert doc_name == rule.name, f"{rule.rule_id} name drifted in docs"
            assert doc_summary == rule.description, (
                f"{rule.rule_id} summary drifted: docs say {doc_summary!r}, "
                f"--list-rules says {rule.description!r}"
            )

    def test_docs_list_no_ghost_rules(self):
        known = {rule.rule_id for rule in ALL_RULES}
        assert set(self._doc_rows()) <= known


# ---------------------------------------------------------------------------
# The real tree under the full 15-rule battery
# ---------------------------------------------------------------------------


class TestRealTreeProjectRules:
    def test_project_rules_clean_on_src(self):
        report = check_paths([SRC], rule_ids=["R11", "R12", "R13", "R14"])
        assert report.violations == []

    def test_checked_in_baseline_is_empty(self):
        baseline = Baseline.load(REPO_ROOT / ".repro-check-baseline.json")
        assert baseline.counts == {}
