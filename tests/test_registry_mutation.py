"""Registry mutation tests (sites coming online / going offline)."""

import pytest

from repro.chargers.charger import Charger
from repro.chargers.plugshare import CatalogSpec, generate_catalog
from repro.spatial.geometry import Point


@pytest.fixture()
def registry(small_network):
    """Fresh (non-shared) registry per test: these tests mutate it."""
    return generate_catalog(small_network, CatalogSpec(charger_count=20, seed=77))


def _new_charger(cid, x=5.0, y=5.0):
    return Charger(charger_id=cid, point=Point(x, y), node_id=0, rate_kw=22.0)


class TestAdd:
    def test_add_then_query(self, registry):
        before = len(registry)
        charger = _new_charger(999)
        registry.add(charger)
        assert len(registry) == before + 1
        assert registry.nearest(charger.point, 1)[0].charger_id == 999

    def test_add_rebuilds_indexes(self, registry):
        probe = Point(5.0, 5.0)
        registry.nearest(probe, 1)  # build the index first
        registry.add(_new_charger(999, 5.0, 5.0))
        assert registry.nearest(probe, 1)[0].charger_id == 999

    def test_duplicate_rejected(self, registry):
        existing = registry.all()[0]
        with pytest.raises(ValueError, match="duplicate"):
            registry.add(_new_charger(existing.charger_id))

    def test_out_of_bounds_rejected(self, registry):
        with pytest.raises(ValueError, match="outside"):
            registry.add(_new_charger(999, x=1e6, y=1e6))


class TestRemove:
    def test_remove_then_query(self, registry):
        victim = registry.all()[0]
        removed = registry.remove(victim.charger_id)
        assert removed is victim
        assert victim.charger_id not in registry
        hits = registry.within_radius(victim.point, 0.5)
        assert victim.charger_id not in [c.charger_id for c in hits]

    def test_remove_unknown(self, registry):
        with pytest.raises(KeyError):
            registry.remove(123456)

    def test_cannot_empty_registry(self, small_network):
        lone = generate_catalog(small_network, CatalogSpec(charger_count=1, seed=1))
        with pytest.raises(ValueError, match="at least one"):
            lone.remove(lone.all()[0].charger_id)

    def test_ranking_sees_mutation(self, small_network, registry):
        """A removed charger disappears from fresh Offering Tables."""
        from repro.core.baselines import BruteForceRanker
        from repro.core.environment import ChargingEnvironment
        from repro.network.path import Trip

        env = ChargingEnvironment(small_network, registry, seed=3)
        nodes = sorted(small_network.node_ids())
        trip = Trip.route(small_network, nodes[0], nodes[-1], 11.0)
        segment = trip.segments()[0]
        ranker = BruteForceRanker(env, k=3)
        table = ranker.rank_segment(trip, segment, eta_h=11.2, now_h=11.0)
        top = table.best.charger_id
        registry.remove(top)
        again = ranker.rank_segment(trip, segment, eta_h=11.2, now_h=11.0)
        assert top not in again.charger_ids()


class TestMode2ServerRanking:
    def test_rank_trip_centrally(self, small_environment, sample_trip):
        from repro.server.eis import EcoChargeInformationServer
        from repro.core.ecocharge import EcoChargeConfig

        server = EcoChargeInformationServer(small_environment)
        config = EcoChargeConfig(k=3, radius_km=12.0)
        run = server.rank_trip(sample_trip, config)
        assert len(run.tables) == len(sample_trip.segments())
        assert server.requests_served == 1

    def test_ranker_shared_per_config(self, small_environment, sample_trip):
        from repro.server.eis import EcoChargeInformationServer
        from repro.core.ecocharge import EcoChargeConfig

        server = EcoChargeInformationServer(small_environment)
        config = EcoChargeConfig(k=3, radius_km=12.0)
        server.rank_trip(sample_trip, config)
        server.rank_trip(sample_trip, config)
        assert len(server._rankers) == 1
        server.rank_trip(sample_trip, EcoChargeConfig(k=2, radius_km=12.0))
        assert len(server._rankers) == 2

    def test_results_match_local_ranking(self, small_environment, sample_trip):
        """Mode 2 must return the same tables a local Mode-1 client computes."""
        from repro.core.ecocharge import EcoCharge, EcoChargeConfig
        from repro.server.eis import EcoChargeInformationServer

        config = EcoChargeConfig(k=3, radius_km=12.0)
        server_run = EcoChargeInformationServer(small_environment).rank_trip(
            sample_trip, config
        )
        local_run = EcoCharge(small_environment, config).plan(sample_trip)
        for a, b in zip(server_run.tables, local_run.tables):
            assert a.charger_ids() == b.charger_ids()
