"""All-kNN self-join tests (the Mode-2 cloud operator)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aknn import aknn_self_join, knn_graph_edges
from repro.spatial.geometry import Point
from repro.spatial.knn import brute_force_knn


def _points(n, seed=0, span=100.0):
    rng = np.random.default_rng(seed)
    return [
        Point(float(x), float(y))
        for x, y in zip(rng.uniform(0, span, n), rng.uniform(0, span, n))
    ]


def _reference(points, k):
    """Brute-force kNN graph (self excluded)."""
    out = []
    for i, p in enumerate(points):
        entries = [(q, j) for j, q in enumerate(points) if j != i]
        out.append(tuple(
            (d, j) for d, __, j in brute_force_knn(entries, p, min(k, len(entries)))
        ))
    return out


class TestAknnSelfJoin:
    def test_matches_brute_force(self):
        points = _points(150, seed=1)
        result = aknn_self_join(points, k=5)
        want = _reference(points, 5)
        for i in range(len(points)):
            got_d = [round(d, 9) for d, __ in result.of(i)]
            want_d = [round(d, 9) for d, __ in want[i]]
            assert got_d == want_d

    def test_self_excluded(self):
        points = _points(50, seed=2)
        result = aknn_self_join(points, k=3)
        for i in range(len(points)):
            assert i not in result.neighbour_ids(i)

    def test_sorted_ascending(self):
        points = _points(80, seed=3)
        result = aknn_self_join(points, k=6)
        for i in range(len(points)):
            dists = [d for d, __ in result.of(i)]
            assert dists == sorted(dists)

    def test_k_clamped_to_n_minus_one(self):
        points = _points(4, seed=4)
        result = aknn_self_join(points, k=10)
        assert all(len(result.of(i)) == 3 for i in range(4))

    def test_empty_and_singleton(self):
        assert len(aknn_self_join([], 3)) == 0
        single = aknn_self_join([Point(0, 0)], 3)
        assert single.of(0) == ()

    def test_duplicate_points(self):
        points = [Point(1, 1)] * 5 + [Point(2, 2)]
        result = aknn_self_join(points, k=2)
        for i in range(5):
            assert [d for d, __ in result.of(i)][0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            aknn_self_join([Point(0, 0)], 0)

    def test_clustered_data(self):
        """Two distant clusters: neighbours stay within the cluster."""
        a = _points(20, seed=5, span=5.0)
        b = [Point(p.x + 1000.0, p.y) for p in _points(20, seed=6, span=5.0)]
        points = a + b
        result = aknn_self_join(points, k=3)
        for i in range(20):
            assert all(j < 20 for j in result.neighbour_ids(i))
        for i in range(20, 40):
            assert all(j >= 20 for j in result.neighbour_ids(i))

    def test_graph_edges(self):
        points = _points(30, seed=7)
        result = aknn_self_join(points, k=4)
        edges = knn_graph_edges(result)
        assert len(edges) == 30 * 4
        assert all(s != t for s, t, __ in edges)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=50, allow_nan=False),
                st.floats(min_value=0, max_value=50, allow_nan=False),
            ),
            min_size=2,
            max_size=40,
        ),
        st.integers(min_value=1, max_value=6),
    )
    def test_property_distances_match_reference(self, raw, k):
        points = [Point(x, y) for x, y in raw]
        result = aknn_self_join(points, k)
        want = _reference(points, k)
        for i in range(len(points)):
            got_d = [round(d, 9) for d, __ in result.of(i)]
            want_d = [round(d, 9) for d, __ in want[i]]
            assert got_d == want_d
