"""Future-work extension tests: tariff-aware ranking, load balancing."""

import pytest

from repro.core.ecocharge import EcoChargeConfig
from repro.core.extensions import (
    BalancedEcoChargeRanker,
    ChargerLoadBalancer,
    ExtendedWeights,
    TariffAwareRanker,
)
from repro.core.intervals import Interval
from repro.core.ranking import run_over_trip
from repro.core.scoring import ComponentScores


class TestExtendedWeights:
    def test_equal(self):
        w = ExtendedWeights.equal()
        assert w.cost == pytest.approx(0.25)

    def test_sum_enforced(self):
        with pytest.raises(ValueError):
            ExtendedWeights(0.5, 0.5, 0.5, 0.5)

    def test_non_negative(self):
        with pytest.raises(ValueError):
            ExtendedWeights(1.2, -0.2, 0.0, 0.0)

    def test_base_projection_renormalises(self):
        w = ExtendedWeights(0.3, 0.3, 0.2, 0.2)
        base = w.base_weights()
        assert base.sustainable == pytest.approx(0.375)
        assert sum(base.as_tuple()) == pytest.approx(1.0)

    def test_cost_only_projection_falls_back(self):
        base = ExtendedWeights(0.0, 0.0, 0.0, 1.0).base_weights()
        assert sum(base.as_tuple()) == pytest.approx(1.0)


class TestTariffAwareRanker:
    def test_produces_k_entries(self, small_environment, sample_trip):
        ranker = TariffAwareRanker(
            small_environment, EcoChargeConfig(k=3, radius_km=12.0)
        )
        run = run_over_trip(ranker, small_environment, sample_trip)
        assert all(len(table) == 3 for table in run.tables)

    def test_overshoot_validation(self, small_environment):
        with pytest.raises(ValueError):
            TariffAwareRanker(small_environment, overshoot=0)

    def test_rescoring_includes_cost_term(self, small_environment, sample_trip):
        """With all weight on cost, every charger at the same ETA scores
        identically — entries then sort by id (stable deterministic)."""
        ranker = TariffAwareRanker(
            small_environment,
            EcoChargeConfig(k=3, radius_km=12.0),
            weights=ExtendedWeights(0.0, 0.0, 0.0, 1.0),
        )
        segment = sample_trip.segments()[0]
        table = ranker.rank_segment(sample_trip, segment, eta_h=10.2, now_h=10.0)
        scores = {e.score.sc_max for e in table}
        assert len(scores) == 1  # same tariff for everyone

    def test_off_peak_eta_scores_higher(self, small_environment, sample_trip):
        ranker = TariffAwareRanker(
            small_environment,
            EcoChargeConfig(k=3, radius_km=12.0),
            weights=ExtendedWeights(0.0, 0.0, 0.0, 1.0),
        )
        segment = sample_trip.segments()[0]
        peak = ranker.rank_segment(sample_trip, segment, eta_h=18.0, now_h=17.5)
        ranker.reset()
        off = ranker.rank_segment(sample_trip, segment, eta_h=27.0, now_h=26.5)
        assert off.best.score.sc_max > peak.best.score.sc_max


class TestChargerLoadBalancer:
    def test_register_and_load(self):
        balancer = ChargerLoadBalancer(slot_h=0.5)
        balancer.register(7, eta_h=10.1)
        balancer.register(7, eta_h=10.2)  # same slot
        balancer.register(7, eta_h=11.0)  # different slot
        assert balancer.load(7, 10.15) == 2
        assert balancer.load(7, 11.1) == 1
        assert balancer.load(8, 10.1) == 0

    def test_adjusted_availability_dampens(self, small_registry):
        balancer = ChargerLoadBalancer(penalty_per_vehicle=0.25)
        charger = small_registry.all()[0]
        base = Interval(0.8, 0.9)
        assert balancer.adjusted_availability(charger, base, 10.0) == base
        for __ in range(2):
            balancer.register(charger.charger_id, 10.0)
        damped = balancer.adjusted_availability(charger, base, 10.0)
        assert damped.hi < base.hi

    def test_penalty_never_negative(self, small_registry):
        balancer = ChargerLoadBalancer(penalty_per_vehicle=1.0)
        charger = small_registry.all()[0]
        for __ in range(20):
            balancer.register(charger.charger_id, 10.0)
        damped = balancer.adjusted_availability(charger, Interval(0.5, 0.9), 10.0)
        assert damped.lo >= 0.0 and damped.hi >= 0.0

    def test_adjust_components(self, small_registry):
        balancer = ChargerLoadBalancer()
        chargers = small_registry.all()[:3]
        components = [
            ComponentScores(c.charger_id, Interval.exact(0.5), Interval(0.6, 0.8),
                            Interval.exact(0.2))
            for c in chargers
        ]
        balancer.register(chargers[0].charger_id, 10.0)
        adjusted = balancer.adjust_components(chargers, components, 10.0)
        assert adjusted[0].availability.hi < components[0].availability.hi
        assert adjusted[1].availability == components[1].availability

    def test_clear(self):
        balancer = ChargerLoadBalancer()
        balancer.register(1, 10.0)
        balancer.clear()
        assert balancer.load(1, 10.0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ChargerLoadBalancer(slot_h=0.0)
        with pytest.raises(ValueError):
            ChargerLoadBalancer(penalty_per_vehicle=-1.0)


class TestBalancedRanker:
    def test_fleet_spreads_over_chargers(self, small_environment, sample_trip):
        """Without balancing, every vehicle gets the same top charger; with
        it, later vehicles are redirected once the best site queues up."""
        balancer = ChargerLoadBalancer(slot_h=1.0, penalty_per_vehicle=0.5)
        config = EcoChargeConfig(k=5, radius_km=12.0)
        picks = []
        for __ in range(4):
            ranker = BalancedEcoChargeRanker(small_environment, balancer, config)
            segment = sample_trip.segments()[0]
            table = ranker.rank_segment(sample_trip, segment, eta_h=10.2, now_h=10.0)
            picks.append(table.best.charger_id)
        assert len(set(picks)) > 1  # redirection happened

    def test_registers_top_pick(self, small_environment, sample_trip):
        balancer = ChargerLoadBalancer()
        ranker = BalancedEcoChargeRanker(
            small_environment, balancer, EcoChargeConfig(k=3, radius_km=12.0)
        )
        segment = sample_trip.segments()[0]
        table = ranker.rank_segment(sample_trip, segment, eta_h=10.2, now_h=10.0)
        assert balancer.load(table.best.charger_id, 10.2) == 1

    def test_runs_over_trip(self, small_environment, sample_trip):
        balancer = ChargerLoadBalancer()
        ranker = BalancedEcoChargeRanker(
            small_environment, balancer, EcoChargeConfig(k=3, radius_km=12.0)
        )
        run = run_over_trip(ranker, small_environment, sample_trip)
        assert len(run.tables) == len(sample_trip.segments())
