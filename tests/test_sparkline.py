"""Terminal chart rendering tests."""

import pytest

from repro.ui.sparkline import bar_chart, series_table, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert list(line) == sorted(line)

    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_extremes_hit_first_and_last_glyph(self):
        line = sparkline([0.0, 100.0])
        assert line[0] == "▁" and line[-1] == "█"


class TestBarChart:
    def test_empty(self):
        assert bar_chart({}) == ""

    def test_one_row_per_label(self):
        chart = bar_chart({"a": 1.0, "b": 2.0})
        assert len(chart.splitlines()) == 2

    def test_max_fills_width(self):
        chart = bar_chart({"big": 10.0, "small": 5.0}, width=10)
        lines = {l.split()[0]: l for l in chart.splitlines()}
        assert lines["big"].count("█") == 10
        assert lines["small"].count("█") == 5

    def test_values_printed(self):
        assert "12.5ms" in bar_chart({"x": 12.5}, unit="ms")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({"x": -1.0})

    def test_width_validation(self):
        with pytest.raises(ValueError):
            bar_chart({"x": 1.0}, width=0)

    def test_all_zero(self):
        chart = bar_chart({"x": 0.0}, width=5)
        assert "█" not in chart


class TestSeriesTable:
    def test_empty(self):
        assert series_table({}) == ""

    def test_shows_first_and_last(self):
        table = series_table({"ft": [10.0, 20.0, 30.0]})
        assert "10.0 → 30.0" in table

    def test_empty_series_marked(self):
        assert "(empty)" in series_table({"x": []})

    def test_alignment(self):
        table = series_table({"a": [1.0], "longer": [2.0]})
        lines = table.splitlines()
        assert lines[0].index("▄") == lines[1].index("▄")
