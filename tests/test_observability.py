"""Unified telemetry: clocks, metrics, tracing, exporters, integration.

Covers the observability package in layers:

1. unit behaviour of the injected clocks, the metrics registry, the
   tracer, and both exporters,
2. failure semantics — spans close ``error`` when an upstream fault or a
   session crash lands mid-segment,
3. the six-tier integration criterion: one durable trip produces one
   trace tree spanning server/gateway/ranker/engine/cache/journal under
   a single content-hashed trip correlation ID, with the registry
   reconciling *exactly* against the legacy counters — including across
   a crash/resume boundary (no double counting).
"""

from __future__ import annotations

import json

import pytest

from repro.chargers.plugshare import CatalogSpec, generate_catalog
from repro.core.ecocharge import EcoChargeConfig, EcoChargeRanker
from repro.core.environment import ChargingEnvironment
from repro.core.ranking import run_over_trip
from repro.durability.session import DurabilityConfig
from repro.network.builders import NetworkSpec, build_city_network
from repro.network.path import Trip
from repro.observability import (
    NOOP_TELEMETRY,
    MetricError,
    MetricsRegistry,
    SimulatedClock,
    SystemClock,
    Telemetry,
    Tracer,
    canonical_json,
    iso_utc,
    json_round_trips,
    mirror_all,
    parse_prometheus,
    reconcile,
    render_json,
    render_prometheus,
)
from repro.observability.export import ExpositionError
from repro.observability.tracing import trip_correlation_id
from repro.resilience.errors import TransientUpstreamError
from repro.resilience.faults import CrashPoint, FaultInjector, SessionCrash
from repro.server.eis import EcoChargeInformationServer
from repro.server.sessions import DurableSessionService

# ---------------------------------------------------------------------------
# clocks
# ---------------------------------------------------------------------------


class TestClocks:
    def test_system_clock_is_monotonic(self):
        clock = SystemClock()
        a = clock.monotonic()
        b = clock.monotonic()
        assert b >= a
        assert clock.now() > 1.6e9  # sanity: past 2020

    def test_simulated_clock_ticks_on_monotonic(self):
        clock = SimulatedClock(start_s=100.0, tick_s=0.5)
        assert clock.monotonic() == 100.0
        assert clock.monotonic() == 100.5
        assert clock.now() == 101.0  # now() reads without advancing? no:
        # now() tracks the same simulated instant the monotonic reads
        # advanced to — two reads above moved time to 101.0.

    def test_simulated_clock_advance(self):
        clock = SimulatedClock(start_s=0.0, tick_s=0.0)
        clock.advance(2.5)
        assert clock.monotonic() == 2.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_simulated_clock_rejects_negative_tick(self):
        with pytest.raises(ValueError):
            SimulatedClock(tick_s=-0.1)

    def test_iso_utc_is_stable(self):
        assert iso_utc(1700000000.0) == "2023-11-14T22:13:20.000Z"
        assert iso_utc(0.0) == "1970-01-01T00:00:00.000Z"


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_and_gauge_samples(self):
        registry = MetricsRegistry()
        requests = registry.counter("requests_total", "requests", labels=("route",))
        requests.labels(route="/rank").inc()
        requests.labels(route="/rank").inc(2.0)
        depth = registry.gauge("queue_depth", "depth")
        depth.set(7.0)
        depth.dec(2.0)
        assert registry.sample_value("requests_total", {"route": "/rank"}) == 3.0
        assert registry.sample_value("queue_depth") == 5.0

    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("c_total", "c").inc(-1.0)

    def test_label_schema_is_validated(self):
        registry = MetricsRegistry()
        family = registry.counter("hits_total", "hits", labels=("kind",))
        with pytest.raises(MetricError):
            family.labels(wrong="x")
        with pytest.raises(MetricError):
            family.inc()  # labelled family needs labels()

    def test_registration_is_idempotent_but_collision_safe(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "x")
        assert registry.counter("x_total", "x") is first
        with pytest.raises(MetricError):
            registry.gauge("x_total", "x")
        with pytest.raises(MetricError):
            registry.counter("x_total", "x", labels=("other",))

    def test_bad_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.counter("9starts_with_digit", "bad")
        with pytest.raises(MetricError):
            registry.counter("ok_total", "bad label", labels=("__reserved",))

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        latency = registry.histogram("lat_seconds", "lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            latency.observe(value)
        (sample,) = latency.samples()
        # Integral bounds render without the trailing ".0" (format_float).
        assert sample["buckets"] == {"0.1": 1, "1": 3, "+Inf": 4}
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(6.05)

    def test_histogram_bounds_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.histogram("h_seconds", "h", buckets=(1.0, 1.0))
        with pytest.raises(MetricError):
            registry.histogram("h2_seconds", "h", buckets=())

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "a").inc()
        registry.histogram("b_seconds", "b", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["a_total"]["type"] == "counter"


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------


def _tracer() -> Tracer:
    return Tracer(SimulatedClock(tick_s=0.001))


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = _tracer()
        with tracer.span("root", tier="server"):
            with tracer.span("child", tier="ranker"):
                pass
            with tracer.span("sibling", tier="cache"):
                pass
        (root,) = tracer.traces
        assert [c.name for c in root.children] == ["child", "sibling"]
        assert root.tiers() == {"server", "ranker", "cache"}

    def test_span_ids_are_deterministic(self):
        names_a = [s.span_id for s in _run_three(_tracer())]
        names_b = [s.span_id for s in _run_three(_tracer())]
        assert names_a == names_b

    def test_children_inherit_trace_id_even_when_overridden(self):
        tracer = _tracer()
        with tracer.span("root", tier="server", trace_id="trip-abc"):
            with tracer.span("child", tier="ranker", trace_id="trip-IGNORED"):
                pass
        (root,) = tracer.traces
        assert root.trace_id == "trip-abc"
        assert root.children[0].trace_id == "trip-abc"

    def test_self_time_excludes_children(self):
        clock = SimulatedClock(tick_s=0.0)
        tracer = Tracer(clock)
        with tracer.span("root", tier="server"):
            clock.advance(1.0)
            with tracer.span("child", tier="ranker"):
                clock.advance(3.0)
        (root,) = tracer.traces
        assert root.duration_s == pytest.approx(4.0)
        assert root.self_time_s == pytest.approx(1.0)

    def test_hot_spans_ranked_by_self_time(self):
        clock = SimulatedClock(tick_s=0.0)
        tracer = Tracer(clock)
        with tracer.span("fast", tier="a"):
            clock.advance(0.1)
        with tracer.span("slow", tier="b"):
            clock.advance(2.0)
        rows = tracer.hot_spans(2)
        assert [row["name"] for row in rows] == ["slow", "fast"]
        assert rows[0]["count"] == 1

    def test_exception_marks_error_and_reraises(self):
        tracer = _tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom", tier="server"):
                raise RuntimeError("kaput")
        (root,) = tracer.traces
        assert root.status == "error"
        assert "kaput" in (root.error or "")

    def test_mark_error_without_propagation(self):
        tracer = _tracer()
        with tracer.span("handled", tier="ranker"):
            tracer.mark_error(ValueError("soft failure"))
        (root,) = tracer.traces
        assert root.status == "error"

    def test_events_attach_to_active_span(self):
        tracer = _tracer()
        with tracer.span("fetch", tier="gateway"):
            tracer.event("gateway.ladder", level="cached")
        (root,) = tracer.traces
        assert [e.name for e in root.events] == ["gateway.ladder"]
        assert root.events[0].attributes["level"] == "cached"

    def test_traces_are_bounded(self):
        tracer = Tracer(SimulatedClock(tick_s=0.001), max_traces=3)
        for index in range(5):
            with tracer.span(f"t{index}", tier="server"):
                pass
        assert [t.name for t in tracer.traces] == ["t2", "t3", "t4"]

    def test_render_trace_shows_tree(self):
        tracer = _tracer()
        with tracer.span("root", tier="server"):
            with tracer.span("leaf", tier="cache"):
                pass
        text = tracer.render_trace(tracer.traces[0])
        assert "root" in text and "leaf" in text and "<cache>" in text

    def test_as_dict_round_trips_through_json(self):
        tracer = _tracer()
        with tracer.span("root", tier="server", k=3):
            tracer.event("hello", n=1)
        payload = tracer.traces[0].as_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestTripCorrelationId:
    def test_same_trip_same_id(self, small_environment, sample_trip):
        assert trip_correlation_id(sample_trip) == trip_correlation_id(sample_trip)
        assert trip_correlation_id(sample_trip).startswith("trip-")

    def test_different_departure_different_id(self, small_environment):
        network = small_environment.network
        nodes = sorted(network.node_ids())
        early = Trip.route(network, nodes[0], nodes[-1], departure_time_h=8.0)
        late = Trip.route(network, nodes[0], nodes[-1], departure_time_h=9.0)
        assert trip_correlation_id(early) != trip_correlation_id(late)


def _run_three(tracer: Tracer):
    with tracer.span("a", tier="x"):
        with tracer.span("b", tier="x"):
            pass
    with tracer.span("c", tier="x"):
        pass
    return list(tracer.finished_spans())


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


class TestExporters:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("reqs_total", "requests", labels=("route",)).labels(
            route="/rank"
        ).inc(3)
        registry.gauge("depth", "queue depth").set(2.5)
        registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0)).observe(0.5)
        return registry

    def test_prometheus_render_parses(self):
        text = render_prometheus(self._registry())
        families = parse_prometheus(text)
        assert set(families) == {"reqs_total", "depth", "lat_seconds"}
        assert families["lat_seconds"]["type"] == "histogram"

    def test_histogram_exposition_has_bucket_sum_count(self):
        text = render_prometheus(self._registry())
        assert 'lat_seconds_bucket{le="0.1"} 0' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.5" in text
        assert "lat_seconds_count 1" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "c", labels=("path",)).labels(
            path='a"b\\c\nd'
        ).inc()
        text = render_prometheus(registry)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        parse_prometheus(text)  # still well-formed

    @pytest.mark.parametrize(
        "bad",
        [
            "no_type_header 1\n",
            "# TYPE x counter\nx{unclosed 1\n",
            "# TYPE x counter\nx not-a-number\n",
            "# TYPE x counter\ny 1\n",  # sample without declared family
        ],
    )
    def test_malformed_exposition_rejected(self, bad):
        with pytest.raises(ExpositionError):
            parse_prometheus(bad)

    def test_json_snapshot_is_canonical(self):
        text = render_json(self._registry())
        assert json_round_trips(text)
        assert json.loads(text)["metrics"]["depth"]["type"] == "gauge"

    def test_json_includes_traces_and_extra(self):
        tracer = _tracer()
        with tracer.span("root", tier="server"):
            pass
        text = render_json(
            self._registry(), traces=list(tracer.traces), extra={"report": "obs"}
        )
        payload = json.loads(text)
        assert payload["report"] == "obs"
        assert payload["traces"][0]["name"] == "root"
        assert json_round_trips(text)

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


# ---------------------------------------------------------------------------
# telemetry facade / disabled path
# ---------------------------------------------------------------------------


class TestTelemetryFacade:
    def test_noop_records_nothing(self):
        assert not NOOP_TELEMETRY.enabled
        with NOOP_TELEMETRY.span("anything", tier="server"):
            NOOP_TELEMETRY.event("ignored")
            NOOP_TELEMETRY.inc("ecocharge_trips_total")
            NOOP_TELEMETRY.observe("ecocharge_segment_seconds", 0.1)
        assert list(NOOP_TELEMETRY.tracer.finished_spans()) == []
        assert list(NOOP_TELEMETRY.registry.families()) == []

    def test_native_families_predeclared(self):
        telemetry = Telemetry.simulated()
        names = {family.name for family in telemetry.registry.families()}
        assert "ecocharge_trips_total" in names
        assert "ecocharge_segment_seconds" in names
        assert "ecocharge_gateway_ladder_total" in names

    def test_inc_on_unknown_metric_raises(self):
        telemetry = Telemetry.simulated()
        with pytest.raises(MetricError):
            telemetry.inc("never_declared_total")

    def test_environment_default_is_noop(self, small_network, small_registry):
        environment = ChargingEnvironment(small_network, small_registry, seed=5)
        assert environment.telemetry is NOOP_TELEMETRY
        assert environment.engine.telemetry is NOOP_TELEMETRY

    def test_set_telemetry_reaches_engine(self, small_network, small_registry):
        environment = ChargingEnvironment(small_network, small_registry, seed=5)
        telemetry = Telemetry.simulated()
        environment.set_telemetry(telemetry)
        assert environment.engine.telemetry is telemetry


# ---------------------------------------------------------------------------
# integration: failure semantics + six-tier trace + reconciliation
# ---------------------------------------------------------------------------

CONFIG = EcoChargeConfig(k=3, segment_km=2.0)


def _build_environment() -> ChargingEnvironment:
    network = build_city_network(
        NetworkSpec(width_km=16.0, height_km=12.0, block_km=1.5, seed=42)
    )
    registry = generate_catalog(
        network, CatalogSpec(charger_count=60, hotspots=3, seed=7)
    )
    return ChargingEnvironment(network, registry, seed=5)


def _trip_for(environment: ChargingEnvironment) -> Trip:
    nodes = sorted(environment.network.node_ids())
    return Trip.route(environment.network, nodes[0], nodes[-1], departure_time_h=10.0)


class FailingRanker:
    """Delegates to EcoCharge but dies with an upstream error once."""

    def __init__(self, inner: EcoChargeRanker, fail_at: int):
        self.inner = inner
        self.fail_at = fail_at
        self.name = inner.name

    def rank_segment(self, trip, segment, eta_h, now_h, next_segment=None):
        table = self.inner.rank_segment(
            trip, segment, eta_h=eta_h, now_h=now_h, next_segment=next_segment
        )
        if segment.index == self.fail_at:
            raise TransientUpstreamError("busy", "provider died mid-segment")
        return table

    def reset(self):
        self.inner.reset()

    def checkpoint_state(self):
        return self.inner.checkpoint_state()

    def restore_state(self, state):
        self.inner.restore_state(state)


class TestFailureTelemetry:
    def test_upstream_error_marks_segment_span_error(self):
        environment = _build_environment()
        telemetry = Telemetry.simulated()
        environment.set_telemetry(telemetry)
        trip = _trip_for(environment)
        fail_at = trip.segments(CONFIG.segment_km)[2].index
        ranker = FailingRanker(EcoChargeRanker(environment, CONFIG), fail_at)
        run = run_over_trip(ranker, environment, trip, segment_km=CONFIG.segment_km)
        assert fail_at in run.failed_segments

        (root,) = telemetry.tracer.traces
        assert root.status == "ok"  # the trip survived the segment failure
        segment_spans = [s for s in root.walk() if s.name == "ranker.segment"]
        failed = [s for s in segment_spans if s.attributes["segment"] == fail_at]
        assert [s.status for s in failed] == ["error"]
        assert all(
            s.status == "ok" for s in segment_spans if s.attributes["segment"] != fail_at
        )
        assert telemetry.registry.sample_value(
            "ecocharge_segments_total", {"outcome": "failed"}
        ) == 1.0
        assert telemetry.registry.sample_value(
            "ecocharge_segments_total", {"outcome": "ok"}
        ) == float(len(run.tables))

    def test_session_crash_closes_spans_as_error(self, tmp_path):
        environment = _build_environment()
        telemetry = Telemetry.simulated()
        environment.set_telemetry(telemetry)
        injector = FaultInjector(
            seed=0, crash_plan=[CrashPoint("mid-segment", at_occurrence=2)]
        )
        server = EcoChargeInformationServer(environment, injector=injector)
        service = DurableSessionService(
            server, tmp_path, DurabilityConfig(snapshot_every=2, fsync=False)
        )
        trip = _trip_for(environment)
        with pytest.raises(SessionCrash):
            service.rank_trip_durably("s1", trip, CONFIG)

        (root,) = telemetry.tracer.traces
        assert root.name == "server.rank_trip_durably"
        assert root.status == "error"
        # Every ancestor of the crash point closed as error too.
        trip_span = next(s for s in root.walk() if s.name == "ranker.trip")
        assert trip_span.status == "error"

    def test_gateway_fetch_emits_exactly_one_ladder_event(self):
        environment = _build_environment()
        telemetry = Telemetry.simulated()
        environment.set_telemetry(telemetry)
        server = EcoChargeInformationServer(environment)
        trip = _trip_for(environment)
        server.rank_trip(trip, CONFIG)
        fetches = [
            s
            for root in telemetry.tracer.traces
            for s in root.walk()
            if s.name == "gateway.fetch"
        ]
        assert fetches, "server-side ranking must exercise the gateway"
        for span in fetches:
            ladder = [e for e in span.events if e.name == "gateway.ladder"]
            assert len(ladder) == 1
            level = ladder[0].attributes["level"]
            assert telemetry.registry.sample_value(
                "ecocharge_gateway_ladder_total",
                {"endpoint": span.attributes["endpoint"], "level": level},
            ) >= 1.0


class TestSixTierIntegration:
    REQUIRED = {"server", "gateway", "ranker", "engine", "cache", "journal"}

    def test_durable_trip_covers_all_tiers_under_one_trace(self, tmp_path):
        environment = _build_environment()
        telemetry = Telemetry.simulated()
        environment.set_telemetry(telemetry)
        server = EcoChargeInformationServer(environment)
        service = DurableSessionService(
            server, tmp_path, DurabilityConfig(snapshot_every=2, fsync=False)
        )
        trip = _trip_for(environment)
        run = service.rank_trip_durably("s1", trip, CONFIG)
        assert run.tables

        (root,) = telemetry.tracer.traces
        assert root.tiers() >= self.REQUIRED
        ids = {span.trace_id for span in root.walk()}
        assert ids == {trip_correlation_id(trip)}

        assert telemetry.registry.sample_value("ecocharge_trips_total") == 1.0
        assert telemetry.registry.sample_value(
            "ecocharge_segments_total", {"outcome": "ok"}
        ) == float(len(run.tables))
        appended = telemetry.registry.sample_value(
            "ecocharge_journal_appends_total", {"record_type": "segment"}
        )
        assert appended == float(len(run.tables))

    def test_crash_resume_does_not_double_count(self, tmp_path):
        telemetry = Telemetry.simulated()

        environment = _build_environment()
        environment.set_telemetry(telemetry)
        injector = FaultInjector(
            seed=0, crash_plan=[CrashPoint("mid-segment", at_occurrence=2)]
        )
        server = EcoChargeInformationServer(environment, injector=injector)
        service = DurableSessionService(
            server, tmp_path, DurabilityConfig(snapshot_every=2, fsync=False)
        )
        trip = _trip_for(environment)
        with pytest.raises(SessionCrash):
            service.rank_trip_durably("s1", trip, CONFIG)

        # Restarted process: fresh environment + server, same recorder.
        environment2 = _build_environment()
        environment2.set_telemetry(telemetry)
        server2 = EcoChargeInformationServer(environment2)
        service2 = DurableSessionService(
            server2, tmp_path, DurabilityConfig(snapshot_every=2, fsync=False)
        )
        run = service2.resume_and_finish("s1")
        segments = trip.segments(CONFIG.segment_km)
        assert len(run.tables) == len(segments)

        # One logical trip -> one trips_total, despite two processes.
        assert telemetry.registry.sample_value("ecocharge_trips_total") == 1.0
        # Restored segments are not re-ranked, so ok-segments counted
        # across both processes equals the segment count exactly.
        assert telemetry.registry.sample_value(
            "ecocharge_segments_total", {"outcome": "ok"}
        ) == float(len(segments))

        # Both processes' traces share the content-hashed trip ID.
        ids = {root.trace_id for root in telemetry.tracer.traces}
        assert ids == {trip_correlation_id(trip)}
        assert len(telemetry.tracer.traces) == 2

    def test_reconciles_exactly_after_resume(self, tmp_path):
        telemetry = Telemetry.simulated()
        environment = _build_environment()
        environment.set_telemetry(telemetry)
        injector = FaultInjector(
            seed=0, crash_plan=[CrashPoint("mid-journal-append", at_occurrence=2)]
        )
        server = EcoChargeInformationServer(environment, injector=injector)
        service = DurableSessionService(
            server, tmp_path, DurabilityConfig(snapshot_every=2, fsync=False)
        )
        trip = _trip_for(environment)
        with pytest.raises(SessionCrash):
            service.rank_trip_durably("s1", trip, CONFIG)

        environment2 = _build_environment()
        environment2.set_telemetry(telemetry)
        server2 = EcoChargeInformationServer(environment2)
        service2 = DurableSessionService(
            server2, tmp_path, DurabilityConfig(snapshot_every=2, fsync=False)
        )
        session = service2.resume("s1")
        try:
            session.run()
        finally:
            service2.close(session)

        mirror_all(
            telemetry.registry,
            cache_stats=session.ranker.cache_stats,
            engine_stats=environment2.engine.stats,
            api_usage=server2.usage,
            health=server2.health,
            breaker_states=server2.gateway.breaker_states(),
            journal_accounting=session.accounting,
        )
        mismatches = reconcile(
            telemetry.registry,
            cache_stats=session.ranker.cache_stats,
            engine_stats=environment2.engine.stats,
            api_usage=server2.usage,
            journal_accounting=session.accounting,
        )
        assert mismatches == []

        text = render_prometheus(telemetry.registry)
        parse_prometheus(text)
        assert json_round_trips(render_json(telemetry.registry))


# ---------------------------------------------------------------------------
# perf history timestamps ride the injected clock (the satellite bug fix)
# ---------------------------------------------------------------------------


class TestPerfHistoryClock:
    def test_merge_history_stamps_via_injected_clock(self, tmp_path):
        from repro.experiments.perf_trajectory import _merge_history

        clock = SimulatedClock(start_s=1700000000.0, tick_s=0.0)
        path = tmp_path / "BENCH_perf.json"
        history = _merge_history(path, 2.5, 1.2, clock=clock)
        assert history[-1] == {
            "at": 1700000000.0,
            "at_iso": "2023-11-14T22:13:20.000Z",
            "speedup": 2.5,
            "speedup_warm": 1.2,
        }

    def test_merge_history_appends_to_existing_report(self, tmp_path):
        from repro.experiments.perf_trajectory import _merge_history

        path = tmp_path / "BENCH_perf.json"
        path.write_text(
            json.dumps({"history": [{"at": 1.0, "at_iso": iso_utc(1.0), "speedup": 1.5}]})
        )
        clock = SimulatedClock(start_s=2.0, tick_s=0.0)
        history = _merge_history(path, 3.0, 1.1, clock=clock)
        assert [entry["speedup"] for entry in history] == [1.5, 3.0]
        assert history[-1]["at_iso"] == iso_utc(2.0)
