"""Cross-validation of core algorithms against independent oracles.

networkx validates the routing stack; scipy's cKDTree validates the
spatial stack (the R-tree suite has its own scipy checks; here the
quadtree and grid get the same treatment on clustered data, where index
bugs typically hide).
"""

import networkx as nx
import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.network.builders import NetworkSpec, build_city_network
from repro.network.graph import RoadNetwork
from repro.network.shortest_path import (
    NoPathError,
    astar,
    bidirectional_dijkstra,
    dijkstra,
    dijkstra_all,
)
from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import Point
from repro.spatial.grid import GridIndex
from repro.spatial.quadtree import QuadTree


def _random_directed_network(seed: int, n: int = 40, extra_edges: int = 80) -> RoadNetwork:
    """A random strongly-connected-ish directed graph with varied weights."""
    rng = np.random.default_rng(seed)
    network = RoadNetwork()
    for i in range(n):
        network.add_node(i, Point(float(rng.uniform(0, 50)), float(rng.uniform(0, 50))))

    def road_length(a: int, b: int) -> float:
        # Physical roads: at least the straight-line gap (A*'s Euclidean
        # heuristic is only admissible under this invariant).
        gap = network.node(a).point.distance_to(network.node(b).point)
        return gap * float(rng.uniform(1.0, 1.8)) + 1e-6

    # A ring guarantees strong connectivity.
    for i in range(n):
        network.add_edge(i, (i + 1) % n, length_km=road_length(i, (i + 1) % n))
    added = 0
    while added < extra_edges:
        a, b = rng.integers(0, n, size=2)
        if a == b or network.has_edge(int(a), int(b)):
            continue
        network.add_edge(int(a), int(b), length_km=road_length(int(a), int(b)))
        added += 1
    return network


def _to_networkx(network: RoadNetwork) -> nx.DiGraph:
    graph = nx.DiGraph()
    for node in network.nodes():
        graph.add_node(node.node_id)
    for edge in network.edges():
        graph.add_edge(edge.source, edge.target, weight=edge.length_km)
    return graph


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
class TestRoutingAgainstNetworkx:
    def test_dijkstra_distances(self, seed):
        network = _random_directed_network(seed)
        graph = _to_networkx(network)
        rng = np.random.default_rng(seed + 100)
        for __ in range(10):
            s, t = rng.integers(0, network.node_count, size=2)
            want = nx.shortest_path_length(graph, int(s), int(t), weight="weight")
            got = dijkstra(network, int(s), int(t)).cost
            assert got == pytest.approx(want)

    def test_all_variants_agree(self, seed):
        network = _random_directed_network(seed)
        rng = np.random.default_rng(seed + 200)
        for __ in range(6):
            s, t = rng.integers(0, network.node_count, size=2)
            d = dijkstra(network, int(s), int(t)).cost
            assert astar(network, int(s), int(t)).cost == pytest.approx(d)
            assert bidirectional_dijkstra(network, int(s), int(t)).cost == pytest.approx(d)

    def test_single_source_table(self, seed):
        network = _random_directed_network(seed)
        graph = _to_networkx(network)
        source = 0
        want = nx.single_source_dijkstra_path_length(graph, source, weight="weight")
        got = dijkstra_all(network, source)
        assert set(got) == set(want)
        for node in want:
            assert got[node] == pytest.approx(want[node])


class TestRoutingOnBuiltCity:
    def test_city_network_against_networkx(self):
        city = build_city_network(NetworkSpec(width_km=15, height_km=12, seed=77))
        graph = _to_networkx(city)
        nodes = list(city.node_ids())
        rng = np.random.default_rng(0)
        for __ in range(10):
            s, t = rng.choice(nodes, size=2, replace=False)
            want = nx.shortest_path_length(graph, int(s), int(t), weight="weight")
            assert dijkstra(city, int(s), int(t)).cost == pytest.approx(want)

    def test_unreachable_agrees(self):
        network = RoadNetwork()
        network.add_node(0, Point(0, 0))
        network.add_node(1, Point(1, 0))
        network.add_edge(0, 1)
        with pytest.raises(NoPathError):
            dijkstra(network, 1, 0)


class TestSpatialAgainstScipy:
    @pytest.fixture(scope="class")
    def clustered(self):
        """Three tight clusters plus sparse noise — adversarial for cell
        and quadrant boundaries."""
        rng = np.random.default_rng(11)
        clusters = [
            rng.normal(loc, 1.5, size=(120, 2))
            for loc in ((10, 10), (80, 15), (45, 85))
        ]
        noise = rng.uniform(0, 100, size=(40, 2))
        coords = np.clip(np.vstack(clusters + [noise]), 0, 100)
        return [(Point(float(x), float(y)), i) for i, (x, y) in enumerate(coords)]

    @pytest.fixture(scope="class")
    def reference(self, clustered):
        return cKDTree(np.array([[p.x, p.y] for p, __ in clustered]))

    def test_quadtree_on_clusters(self, clustered, reference):
        tree: QuadTree[int] = QuadTree(BoundingBox(0, 0, 100, 100), capacity=4)
        for point, item in clustered:
            tree.insert(point, item)
        rng = np.random.default_rng(12)
        for __ in range(20):
            q = (float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            k = int(rng.integers(1, 15))
            ref_d, __ = reference.query(q, k=k)
            got_d = [d for d, __, __ in tree.nearest(Point(*q), k)]
            assert np.allclose(sorted(got_d), sorted(np.atleast_1d(ref_d)))

    def test_grid_on_clusters(self, clustered, reference):
        grid: GridIndex[int] = GridIndex(BoundingBox(0, 0, 100, 100), 6.0)
        for point, item in clustered:
            grid.insert(point, item)
        rng = np.random.default_rng(13)
        for __ in range(20):
            q = (float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            r = float(rng.uniform(1, 15))
            want = len(reference.query_ball_point(q, r))
            assert len(grid.query_radius(Point(*q), r)) == want
