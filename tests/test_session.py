"""Charging-session simulator tests."""

import pytest

from repro.chargers.charger import Charger, PlugType, Vehicle
from repro.chargers.registry import ChargerRegistry
from repro.chargers.session import ChargingSessionSimulator
from repro.estimation.sustainable import SustainableChargingEstimator
from repro.estimation.weather import WeatherModel
from repro.spatial.geometry import Point


@pytest.fixture(scope="module")
def simulator():
    chargers = [
        Charger(0, Point(0, 0), 0, rate_kw=22.0, solar_capacity_kw=40.0),
        Charger(1, Point(1, 0), 0, rate_kw=11.0, solar_capacity_kw=5.0),
        Charger(2, Point(2, 0), 0, rate_kw=150.0, plug_type=PlugType.CCS,
                solar_capacity_kw=50.0),
    ]
    registry = ChargerRegistry(chargers)
    estimator = SustainableChargingEstimator(registry, WeatherModel(seed=0))
    return ChargingSessionSimulator(estimator), registry


def _vehicle(soc=0.5, battery=60.0):
    return Vehicle(vehicle_id=0, battery_kwh=battery, state_of_charge=soc)


class TestSession:
    def test_midday_session_delivers_energy(self, simulator):
        sim, registry = simulator
        result = sim.simulate(registry.get(0), _vehicle(), start_h=12.0, duration_h=1.0)
        assert result.energy_kwh > 0
        assert result.final_soc > 0.5
        assert result.co2_avoided_kg == pytest.approx(result.energy_kwh * 0.25)

    def test_night_session_delivers_nothing(self, simulator):
        sim, registry = simulator
        result = sim.simulate(registry.get(0), _vehicle(), start_h=2.0, duration_h=1.0)
        assert result.energy_kwh == 0.0
        assert result.final_soc == pytest.approx(0.5)

    def test_energy_bounded_by_plug_limit(self, simulator):
        sim, registry = simulator
        ev = _vehicle()
        result = sim.simulate(registry.get(2), ev, start_h=12.0, duration_h=1.0)
        # DC fast charger: bounded by the vehicle's 100 kW DC ceiling.
        assert result.average_kw <= ev.max_dc_kw + 1e-9

    def test_ac_session_bounded_by_ac_limit(self, simulator):
        sim, registry = simulator
        ev = _vehicle()
        result = sim.simulate(registry.get(0), ev, start_h=12.0, duration_h=1.0)
        assert result.average_kw <= ev.max_ac_kw + 1e-9

    def test_full_battery_stops_early(self, simulator):
        sim, registry = simulator
        nearly_full = _vehicle(soc=0.995, battery=10.0)
        result = sim.simulate(registry.get(2), nearly_full, start_h=12.0, duration_h=4.0)
        assert result.final_soc == pytest.approx(1.0)
        assert result.duration_h < 4.0

    def test_curtailment_reported(self, simulator):
        sim, registry = simulator
        # Tiny battery at a big-solar site: most production is curtailed.
        tiny = _vehicle(soc=0.9, battery=5.0)
        result = sim.simulate(registry.get(0), tiny, start_h=12.0, duration_h=2.0)
        assert result.curtailed_kwh > 0.0

    def test_longer_session_never_less_energy(self, simulator):
        sim, registry = simulator
        short = sim.simulate(registry.get(0), _vehicle(), 11.0, 1.0)
        long = sim.simulate(registry.get(0), _vehicle(), 11.0, 3.0)
        assert long.energy_kwh >= short.energy_kwh - 1e-9

    def test_duration_validation(self, simulator):
        sim, registry = simulator
        with pytest.raises(ValueError):
            sim.simulate(registry.get(0), _vehicle(), 12.0, 0.0)

    def test_soc_never_exceeds_one(self, simulator):
        sim, registry = simulator
        result = sim.simulate(registry.get(2), _vehicle(soc=0.98, battery=20.0),
                              start_h=13.0, duration_h=3.0)
        assert result.final_soc <= 1.0
