"""Resilience tier tests: faults, retries, breakers, and the ladder.

The degradation ladder's contract is *wider-but-correct*: under any
fault regime the serving stack still answers every query, intervals only
ever widen, and the health counters reconcile exactly with what the
providers saw.
"""

from random import Random
from types import SimpleNamespace

import pytest

from repro.core.ecocharge import EcoChargeConfig, EcoChargeRanker
from repro.core.ranking import run_over_trip
from repro.estimation.component import DEFAULT_CONFIDENCE
from repro.intervals import Interval
from repro.resilience import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
    EndpointPolicy,
    FaultInjector,
    FaultProfile,
    FaultTolerantEnvironment,
    OutageWindow,
    ResilienceConfig,
    ResilienceGateway,
    ResilientEndpoint,
    RetriesExhaustedError,
    RetryPolicy,
    ServiceLevel,
    StalenessPolicy,
    TransientUpstreamError,
    UpstreamTimeoutError,
)
from repro.server.eis import EcoChargeInformationServer
from repro.simulation.scenarios import ChaosSpec, run_chaos


class TestRetryPolicy:
    def test_backoff_schedule_without_jitter(self):
        policy = RetryPolicy(
            base_delay_ms=50.0, multiplier=2.0, max_delay_ms=150.0, jitter=0.0
        )
        rng = Random(0)
        assert policy.backoff_ms(1, rng) == 50.0
        assert policy.backoff_ms(2, rng) == 100.0
        assert policy.backoff_ms(3, rng) == 150.0  # capped
        assert policy.backoff_ms(4, rng) == 150.0

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay_ms=100.0, multiplier=1.0, jitter=0.5)
        rng = Random(7)
        for _ in range(50):
            delay = policy.backoff_ms(1, rng)
            assert 50.0 <= delay <= 100.0

    def test_jitter_deterministic_under_seed(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.backoff_ms(i, Random(3)) for i in range(1, 4)]
        b = [policy.backoff_ms(i, Random(3)) for i in range(1, 4)]
        assert a == b

    def test_delays_count_matches_attempts(self):
        policy = RetryPolicy(max_attempts=4, jitter=0.0)
        assert len(list(policy.delays_ms(Random(0)))) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_ms=0.0)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_ms(0, Random(0))


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=3))
        for _ in range(2):
            breaker.record_failure(10.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(10.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 1

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=2))
        breaker.record_failure(10.0)
        breaker.record_success(10.0)
        breaker.record_failure(10.0)
        assert breaker.state is BreakerState.CLOSED

    def test_open_rejects_until_cooldown(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=1, cooldown_h=0.5))
        breaker.record_failure(10.0)
        assert not breaker.allow(10.1)
        assert breaker.rejections == 1
        # Cooldown elapsed: the next call is admitted as a probe.
        assert breaker.allow(10.6)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_closes_after_probe_successes(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, cooldown_h=0.1, close_after=2)
        )
        breaker.record_failure(10.0)
        assert breaker.allow(10.2)
        breaker.record_success(10.2)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(10.3)
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=1, cooldown_h=0.5))
        breaker.record_failure(10.0)
        assert breaker.allow(10.6)  # half-open probe
        breaker.record_failure(10.6)
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 2
        assert not breaker.allow(10.7)  # cooldown restarted at 10.6
        assert breaker.allow(11.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_h=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(close_after=0)


class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        def schedule(seed):
            injector = FaultInjector(
                seed=seed, default=FaultProfile(error_rate=0.5)
            )
            outcomes = []
            for i in range(40):
                try:
                    injector.roll("weather", 10.0 + i * 0.01)
                    outcomes.append(True)
                except TransientUpstreamError:
                    outcomes.append(False)
            return outcomes

        assert schedule(1) == schedule(1)
        assert schedule(1) != schedule(2)

    def test_endpoints_fail_independently(self):
        injector = FaultInjector(seed=0, default=FaultProfile(error_rate=0.5))
        # Draining one endpoint's stream must not shift another's.
        for i in range(25):
            try:
                injector.roll("weather", 10.0 + i * 0.01)
            except TransientUpstreamError:
                pass
        first = []
        for i in range(10):
            try:
                injector.roll("busy", 10.0 + i * 0.01)
                first.append(True)
            except TransientUpstreamError:
                first.append(False)

        fresh = FaultInjector(seed=0, default=FaultProfile(error_rate=0.5))
        second = []
        for i in range(10):
            try:
                fresh.roll("busy", 10.0 + i * 0.01)
                second.append(True)
            except TransientUpstreamError:
                second.append(False)
        assert first == second

    def test_outage_window_always_fails(self):
        injector = FaultInjector(
            profiles={"weather": FaultProfile(outages=(OutageWindow(10.0, 11.0),))}
        )
        from repro.resilience import UpstreamOutageError

        with pytest.raises(UpstreamOutageError):
            injector.roll("weather", 10.5)
        assert injector.roll("weather", 11.5) >= 0.0  # outside the window

    def test_latency_spikes_raise_timeouts(self):
        injector = FaultInjector(default=FaultProfile(latency_spike_rate=1.0))
        with pytest.raises(UpstreamTimeoutError):
            injector.roll("traffic", 10.0)

    def test_stats_identity(self):
        injector = FaultInjector(seed=0, default=FaultProfile(error_rate=0.3))
        for i in range(60):
            try:
                injector.roll("busy", 10.0 + i * 0.01)
            except TransientUpstreamError:
                pass
        stats = injector.stats_for("busy")
        assert stats.rolls == 60
        assert stats.rolls == stats.delivered + stats.injected
        assert injector.total_injected == stats.injected > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultProfile(error_rate=1.5)
        with pytest.raises(ValueError):
            OutageWindow(11.0, 10.0)


class TestResilientEndpoint:
    @staticmethod
    def _flaky(failures, value="ok"):
        """A thunk failing ``failures`` times before succeeding."""
        state = {"left": failures}

        def fn():
            if state["left"] > 0:
                state["left"] -= 1
                raise TransientUpstreamError("x", "flap", latency_ms=10.0)
            return value

        return fn

    def test_first_attempt_success_is_live(self):
        endpoint = ResilientEndpoint("x")
        assert endpoint.call(self._flaky(0), 10.0) == "ok"
        assert endpoint.health.live == 1
        assert endpoint.health.retried == 0

    def test_retry_recovers_and_counts(self):
        endpoint = ResilientEndpoint("x", policy=RetryPolicy(max_attempts=3))
        assert endpoint.call(self._flaky(2), 10.0) == "ok"
        health = endpoint.health
        assert health.retried == 1
        assert health.attempts == 3
        assert health.retries == 2
        assert health.failures == 2 and health.successes == 1

    def test_exhaustion_raises_with_cause(self):
        endpoint = ResilientEndpoint("x", policy=RetryPolicy(max_attempts=2))
        with pytest.raises(RetriesExhaustedError) as excinfo:
            endpoint.call(self._flaky(5), 10.0)
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.last_error, TransientUpstreamError)
        assert endpoint.health.exhausted == 1

    def test_deadline_cuts_retries_short(self):
        # Each failure costs 10 ms; a 15 ms deadline admits no backoff.
        policy = RetryPolicy(
            max_attempts=5, base_delay_ms=50.0, jitter=0.0, deadline_ms=15.0
        )
        endpoint = ResilientEndpoint("x", policy=policy)
        with pytest.raises(RetriesExhaustedError) as excinfo:
            endpoint.call(self._flaky(5), 10.0)
        assert excinfo.value.attempts == 1

    def test_breaker_opens_and_fails_fast(self):
        endpoint = ResilientEndpoint(
            "x",
            policy=RetryPolicy(max_attempts=1),
            breaker=BreakerConfig(failure_threshold=2, cooldown_h=1.0),
        )
        for _ in range(2):
            with pytest.raises(RetriesExhaustedError):
                endpoint.call(self._flaky(1), 10.0)
        assert endpoint.state is BreakerState.OPEN
        attempts_before = endpoint.health.attempts
        with pytest.raises(CircuitOpenError):
            endpoint.call(self._flaky(0), 10.1)
        # Rejected locally: no upstream attempt was made.
        assert endpoint.health.attempts == attempts_before
        assert endpoint.health.breaker_rejections == 1

    def test_breaker_recovers_through_half_open(self):
        endpoint = ResilientEndpoint(
            "x",
            policy=RetryPolicy(max_attempts=1),
            breaker=BreakerConfig(failure_threshold=1, cooldown_h=0.5, close_after=1),
        )
        with pytest.raises(RetriesExhaustedError):
            endpoint.call(self._flaky(1), 10.0)
        assert endpoint.state is BreakerState.OPEN
        assert endpoint.call(self._flaky(0), 10.6) == "ok"  # probe succeeds
        assert endpoint.state is BreakerState.CLOSED

    def test_programming_errors_bypass_breaker(self):
        endpoint = ResilientEndpoint("x")

        def broken():
            raise KeyError("not an upstream failure")

        with pytest.raises(KeyError):
            endpoint.call(broken, 10.0)
        assert endpoint.breaker.consecutive_failures == 0

    def test_health_identities(self):
        endpoint = ResilientEndpoint("x", policy=RetryPolicy(max_attempts=3))
        endpoint.call(self._flaky(0), 10.0)
        endpoint.call(self._flaky(1), 10.1)
        with pytest.raises(RetriesExhaustedError):
            endpoint.call(self._flaky(9), 10.2)
        health = endpoint.health
        assert health.attempts == health.successes + health.failures
        assert health.calls == 3


class TestDegradationLadder:
    """Gateway-level walk down fresh -> cached -> stale -> fallback."""

    @pytest.fixture()
    def gateway(self, small_environment):
        # Busy-times goes hard down at 10.5; everything else is healthy.
        injector = FaultInjector(
            seed=0,
            profiles={"busy": FaultProfile(outages=(OutageWindow(10.5, 24.0),))},
        )
        return ResilienceGateway.build(small_environment, injector=injector)

    @pytest.fixture()
    def charger(self, small_registry):
        return min(small_registry.all(), key=lambda c: c.charger_id)

    def test_live_then_cached(self, gateway, charger):
        first = gateway.availability(charger, 11.0, 10.0)
        assert first.level is ServiceLevel.LIVE
        second = gateway.availability(charger, 11.0, 10.1)
        assert second.level is ServiceLevel.CACHED
        assert second.value == first.value
        health = gateway.health.for_endpoint("busy")
        assert health.live == 1 and health.cache_hits == 1

    def test_stale_serve_widens_interval(self, gateway, charger):
        fresh = gateway.availability(charger, 11.0, 10.0)
        # 10.9 is past the cache TTL (0.5 h) and inside the outage, but
        # the 0.9 h age is within the 2 h staleness bound.
        stale = gateway.availability(charger, 11.0, 10.9)
        assert stale.level is ServiceLevel.STALE
        assert stale.age_h == pytest.approx(0.9)
        assert stale.value.lo <= fresh.value.lo
        assert stale.value.hi >= fresh.value.hi
        assert stale.value.width > fresh.value.width
        assert gateway.health.for_endpoint("busy").stale_served == 1

    def test_fallback_is_admissible_floor(self, gateway, charger):
        # No cache entry exists for this query and busy is in outage.
        result = gateway.availability(charger, 15.0, 11.0)
        assert result.level is ServiceLevel.FALLBACK
        assert result.value == Interval(0.0, 1.0)
        assert gateway.health.for_endpoint("busy").fallbacks == 1

    def test_staleness_bound_is_enforced(self, small_environment, charger):
        injector = FaultInjector(
            profiles={"busy": FaultProfile(outages=(OutageWindow(10.5, 24.0),))}
        )
        config = ResilienceConfig(
            busy=EndpointPolicy(staleness=StalenessPolicy(max_stale_h=0.6))
        )
        gateway = ResilienceGateway.build(
            small_environment, config=config, injector=injector
        )
        gateway.availability(charger, 11.0, 10.0)
        # Age 2.0 h exceeds the 0.6 h bound: the entry may not be served.
        result = gateway.availability(charger, 11.0, 12.0)
        assert result.level is ServiceLevel.FALLBACK

    def test_degraded_results_never_cached(self, gateway, charger):
        gateway.availability(charger, 15.0, 11.0)  # fallback (outage, no entry)
        follow_up = gateway.availability(charger, 15.0, 11.01)
        # Still degraded — the fallback was not stored as if it were fresh.
        assert follow_up.level is ServiceLevel.FALLBACK

    def test_fallback_forecast_covers_all_skies(self, small_environment):
        from repro.estimation.weather import ATTENUATION
        from repro.spatial.geometry import Point

        injector = FaultInjector(default=FaultProfile(error_rate=1.0))
        gateway = ResilienceGateway.build(small_environment, injector=injector)
        result = gateway.forecast(Point(5.0, 5.0), 12.0, 10.0)
        assert result.level is ServiceLevel.FALLBACK
        assert result.value.degraded
        for attenuation in ATTENUATION.values():
            assert attenuation in result.value.attenuation

    def test_accounting_reconciles(self, gateway, charger):
        gateway.availability(charger, 11.0, 10.0)
        gateway.availability(charger, 11.0, 10.1)
        gateway.availability(charger, 11.0, 10.9)
        gateway.availability(charger, 15.0, 11.0)
        gateway.traffic_snapshot(10.0)
        from repro.spatial.geometry import Point

        gateway.nearby(Point(5.0, 5.0), 6.0, 10.0)
        assert gateway.accounting_ok()


class TestEndpointHealthRatios:
    """Zero-traffic endpoints must report well-defined ratios (no division
    by zero on a dashboard scrape before the first request lands)."""

    def test_zero_calls_availability_is_one(self):
        from repro.resilience.health import EndpointHealth

        health = EndpointHealth(endpoint="weather")
        assert health.calls == 0
        assert health.availability_ratio == 1.0
        assert health.degraded == 0

    def test_zero_calls_accounts_for_zero_provider_calls(self):
        from repro.resilience.health import EndpointHealth

        health = EndpointHealth(endpoint="weather")
        assert health.accounts_for(0)

    def test_ratio_after_traffic(self):
        from repro.resilience.health import EndpointHealth

        health = EndpointHealth(endpoint="traffic", calls=4, stale_served=1)
        assert health.availability_ratio == pytest.approx(0.75)


class TestEndpointHealthRecordingAPI:
    """The recording methods are the only sanctioned mutation path
    (repro-check R13): each one must move exactly its counters, and a
    realistic call sequence must keep ``accounts_for`` reconciling."""

    def _health(self):
        from repro.resilience.health import EndpointHealth

        return EndpointHealth(endpoint="weather")

    def test_record_call_counts_one_logical_call(self):
        health = self._health()
        health.record_call()
        assert health.calls == 1 and health.cache_hits == 0

    def test_record_cache_hit_lands_on_the_ladder(self):
        # A cache hit both counts the call and lands the rung, so the
        # ladder identity (calls == sum of rungs) holds with no
        # separate record_call() from the caller.
        health = self._health()
        health.record_cache_hit()
        assert health.calls == 1 and health.cache_hits == 1
        assert health.accounts_for(0)

    def test_record_success_first_attempt_is_live(self):
        health = self._health()
        health.record_call()
        health.record_attempt()
        health.record_success(retried=False, elapsed_ms=5.0)
        assert (health.live, health.retried) == (1, 0)
        assert health.successes == 1
        assert health.simulated_ms == pytest.approx(5.0)
        assert health.accounts_for(1)

    def test_record_success_after_retry_is_retried(self):
        health = self._health()
        health.record_call()
        health.record_attempt()
        health.record_failure()
        health.record_retry()
        health.record_attempt()
        health.record_success(retried=True, elapsed_ms=12.0)
        assert (health.live, health.retried) == (0, 1)
        assert health.retries == 1
        assert health.attempts == 2
        assert health.accounts_for(1)

    def test_record_exhausted_then_stale_served(self):
        health = self._health()
        health.record_call()
        health.record_attempt()
        health.record_failure()
        health.record_exhausted(elapsed_ms=30.0)
        health.record_stale_served()
        assert health.exhausted == 1 and health.stale_served == 1
        assert health.degraded == 1
        assert health.accounts_for(0)

    def test_record_breaker_rejection_then_fallback(self):
        health = self._health()
        health.record_call()
        health.record_breaker_rejection()
        health.record_fallback()
        assert health.breaker_rejections == 1 and health.fallbacks == 1
        assert health.attempts == 0, "a rejected call never reaches upstream"
        assert health.accounts_for(0)

    def test_mixed_sequence_reconciles(self):
        health = self._health()
        # one cache hit, one live success, one retried success, one
        # exhausted->fallback: 4 logical calls, 2 delivered upstream.
        health.record_cache_hit()
        health.record_call()
        health.record_attempt()
        health.record_success(retried=False, elapsed_ms=4.0)
        health.record_call()
        health.record_attempt()
        health.record_failure()
        health.record_retry()
        health.record_attempt()
        health.record_success(retried=True, elapsed_ms=9.0)
        health.record_call()
        health.record_attempt()
        health.record_failure()
        health.record_exhausted(elapsed_ms=20.0)
        health.record_fallback()
        assert health.calls == 4
        assert health.accounts_for(2)


class TestFaultTolerantEnvironment:
    def test_total_outage_floors_availability(self, small_environment, small_registry):
        injector = FaultInjector(default=FaultProfile(error_rate=1.0))
        gateway = ResilienceGateway.build(small_environment, injector=injector)
        environment = FaultTolerantEnvironment(small_environment, gateway)
        charger = next(iter(small_registry.all()))
        assert environment.availability.estimate(charger, 11.0, 10.0) == Interval(
            0.0, 1.0
        )

    def test_healthy_estimates_match_inner(self, small_environment, small_registry):
        environment = FaultTolerantEnvironment.build(small_environment)
        charger = next(iter(small_registry.all()))
        assert environment.availability.estimate(
            charger, 11.0, 10.0
        ) == small_environment.availability.estimate(charger, 11.0, 10.0)
        assert environment.sustainable.estimate(
            charger, 11.0, 10.0
        ) == small_environment.sustainable.estimate(charger, 11.0, 10.0)

    def test_ranking_completes_under_heavy_faults(self, small_environment, sample_trip):
        injector = FaultInjector(
            seed=3, default=FaultProfile(error_rate=0.4, latency_spike_rate=0.1)
        )
        gateway = ResilienceGateway.build(small_environment, injector=injector)
        environment = FaultTolerantEnvironment(small_environment, gateway)
        config = EcoChargeConfig(k=3, radius_km=12.0)
        ranker = EcoChargeRanker(environment, config)
        run = run_over_trip(ranker, environment, sample_trip, segment_km=config.segment_km)
        assert run.completed_cleanly
        assert len(run.tables) > 0
        for table in run.tables:
            assert len(table.entries) > 0


class TestChaosScenario:
    def test_chaos_run_completes_cleanly(self, small_environment, sample_trip):
        workload = SimpleNamespace(
            environment=small_environment, trips=[sample_trip]
        )
        spec = ChaosSpec(
            error_rate=0.25,
            latency_spike_rate=0.05,
            weather_outage=OutageWindow(10.0, 10.5),
            fleet_size=1,
            seed=1,
        )
        report = run_chaos(workload, spec)
        assert report.completed_cleanly
        assert report.trips_ranked == 1
        assert report.tables_produced > 0
        assert report.faults_injected > 0
        assert report.accounting_ok
        assert set(report.breaker_openings) == {"busy", "catalog", "traffic", "weather"}

    def test_no_faults_means_no_degradation(self, small_environment, sample_trip):
        workload = SimpleNamespace(
            environment=small_environment, trips=[sample_trip]
        )
        report = run_chaos(workload, ChaosSpec(error_rate=0.0, latency_spike_rate=0.0))
        assert report.completed_cleanly
        assert report.faults_injected == 0
        assert report.degraded_served == 0
        assert report.accounting_ok


class TestServerUnderFaults:
    def test_server_serves_degraded_snapshots(self, small_environment):
        from repro.spatial.geometry import Point

        injector = FaultInjector(seed=0, default=FaultProfile(error_rate=1.0))
        server = EcoChargeInformationServer(small_environment, injector=injector)
        snapshot = server.region_snapshot(Point(5, 5), 6.0, eta_h=11.0, now_h=10.0)
        assert snapshot.is_degraded
        assert "weather" in snapshot.degraded_components

    def test_degraded_interval_is_superset_of_healthy(self, small_environment):
        from repro.spatial.geometry import Point

        healthy = EcoChargeInformationServer(small_environment)
        broken = EcoChargeInformationServer(
            small_environment,
            injector=FaultInjector(
                profiles={"busy": FaultProfile(error_rate=1.0)}
            ),
        )
        a = healthy.region_snapshot(Point(5, 5), 6.0, eta_h=11.0, now_h=10.0)
        b = broken.region_snapshot(Point(5, 5), 6.0, eta_h=11.0, now_h=10.0)
        assert b.is_degraded and not a.is_degraded
        for charger_id, interval in a.availability.items():
            degraded = b.availability[charger_id]
            assert interval.lo in degraded or degraded.lo <= interval.lo
            assert interval.hi in degraded or degraded.hi >= interval.hi

    def test_health_exposed_alongside_usage(self, small_environment):
        from repro.spatial.geometry import Point

        server = EcoChargeInformationServer(small_environment)
        server.region_snapshot(Point(5, 5), 6.0, eta_h=11.0, now_h=10.0)
        assert server.gateway.accounting_ok()
        rendered = server.health.render()
        assert "endpoint" in rendered and "weather" in rendered

    def test_rank_trip_completes_at_twenty_percent_faults(
        self, small_environment, sample_trip
    ):
        injector = FaultInjector(seed=5, default=FaultProfile(error_rate=0.2))
        server = EcoChargeInformationServer(small_environment, injector=injector)
        run = server.rank_trip(sample_trip, EcoChargeConfig(k=3, radius_km=12.0))
        assert run.completed_cleanly
        assert len(run.tables) > 0
        assert server.gateway.accounting_ok()


class TestConfidenceDegradation:
    def test_stale_interval_contains_original(self):
        original = Interval(0.4, 0.6)
        widened = DEFAULT_CONFIDENCE.stale_interval(original, age_h=1.0)
        assert original.lo in widened and original.hi in widened
        assert widened.width > original.width

    def test_stale_margin_grows_with_age(self):
        original = Interval(0.5, 0.5)
        young = DEFAULT_CONFIDENCE.stale_interval(original, age_h=0.1)
        old = DEFAULT_CONFIDENCE.stale_interval(original, age_h=1.9)
        assert old.width > young.width

    def test_fallback_is_full_admissible_range(self):
        assert DEFAULT_CONFIDENCE.fallback_interval(0.0, 1.0) == Interval(0.0, 1.0)
        with pytest.raises(ValueError):
            DEFAULT_CONFIDENCE.fallback_interval(1.0, 0.0)

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIDENCE.degraded_half_width(-0.1)
