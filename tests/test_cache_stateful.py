"""Model-based (stateful) testing of the dynamic cache.

Hypothesis drives random sequences of store/lookup/advance operations
against :class:`DynamicCache` while a simple reference model predicts
hit/miss outcomes; any divergence is a cache bug.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.caching import CachedSolution, DynamicCache
from repro.spatial.geometry import Point

RANGE_KM = 5.0
TTL_H = 1.0


class CacheMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cache = DynamicCache(range_km=RANGE_KM, ttl_h=TTL_H)
        self.clock = 10.0
        self.model_origin: Point | None = None
        self.model_stored_at: float | None = None
        self.expected_hits = 0
        self.expected_misses = 0

    @rule(x=st.floats(0, 40), y=st.floats(0, 40))
    def store(self, x, y):
        origin = Point(x, y)
        self.cache.store(
            CachedSolution(
                segment_index=0,
                origin=origin,
                generated_at_h=self.clock,
                eta_h=self.clock,
                radius_km=50.0,
                pool=(),
                components=(),
            )
        )
        self.model_origin = origin
        self.model_stored_at = self.clock

    @rule(dt=st.floats(0.01, 0.6))
    def advance(self, dt):
        self.clock += dt

    @rule(x=st.floats(0, 40), y=st.floats(0, 40))
    def lookup(self, x, y):
        probe = Point(x, y)
        result = self.cache.lookup(probe, now_h=self.clock)
        fresh = (
            self.model_stored_at is not None
            and self.clock - self.model_stored_at <= TTL_H
        )
        near = (
            self.model_origin is not None
            and probe.distance_to(self.model_origin) <= RANGE_KM
        )
        if fresh and near:
            self.expected_hits += 1
            assert result is not None
        else:
            self.expected_misses += 1
            assert result is None
            if self.model_stored_at is not None and not fresh:
                # Expiry evicts the entry in both model and implementation.
                self.model_origin = None
                self.model_stored_at = None

    @invariant()
    def stats_match_model(self):
        assert self.cache.stats.hits == self.expected_hits
        assert self.cache.stats.misses == self.expected_misses


CacheMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestDynamicCacheStateful = CacheMachine.TestCase
