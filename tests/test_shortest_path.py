"""Shortest-path algorithm tests: Dijkstra variants, A*, bidirectional."""

import math

import numpy as np
import pytest

from repro.network.builders import NetworkSpec, build_city_network, build_grid_network
from repro.network.graph import EdgeWeight, RoadNetwork
from repro.network.shortest_path import (
    NoPathError,
    astar,
    bidirectional_dijkstra,
    dijkstra,
    dijkstra_all,
    dijkstra_all_backward,
    dijkstra_to_targets,
    path_cost,
)
from repro.spatial.geometry import Point


@pytest.fixture(scope="module")
def city():
    return build_city_network(NetworkSpec(width_km=14, height_km=11, seed=17))


class TestDijkstra:
    def test_grid_manhattan_distance(self, unit_grid):
        # Corner to corner of a 6x6 unit grid: 5 + 5 = 10 km.
        result = dijkstra(unit_grid, 0, 35)
        assert result.cost == pytest.approx(10.0)
        assert result.hops == 10

    def test_path_endpoints(self, unit_grid):
        result = dijkstra(unit_grid, 0, 35)
        assert result.nodes[0] == 0 and result.nodes[-1] == 35

    def test_path_edges_exist(self, unit_grid):
        result = dijkstra(unit_grid, 3, 32)
        for a, b in zip(result.nodes, result.nodes[1:]):
            assert unit_grid.has_edge(a, b)

    def test_source_equals_target(self, unit_grid):
        result = dijkstra(unit_grid, 4, 4)
        assert result.cost == 0.0 and result.nodes == (4,)

    def test_no_path_raises(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(5, 0))
        with pytest.raises(NoPathError):
            dijkstra(net, 0, 1)

    def test_negative_cost_rejected(self, unit_grid):
        with pytest.raises(ValueError):
            dijkstra(unit_grid, 0, 35, weight=lambda e: -1.0)

    def test_custom_cost_function(self, unit_grid):
        doubled = dijkstra(unit_grid, 0, 35, weight=lambda e: 2 * e.length_km)
        assert doubled.cost == pytest.approx(20.0)

    def test_path_cost_consistency(self, unit_grid):
        result = dijkstra(unit_grid, 0, 35)
        assert path_cost(unit_grid, result.nodes) == pytest.approx(result.cost)


class TestSingleSourceVariants:
    def test_all_distances_include_source(self, unit_grid):
        dist = dijkstra_all(unit_grid, 0)
        assert dist[0] == 0.0
        assert len(dist) == unit_grid.node_count

    def test_all_matches_pointwise(self, city):
        dist = dijkstra_all(city, 0)
        rng = np.random.default_rng(0)
        for target in rng.choice(list(city.node_ids()), size=10, replace=False):
            assert dist[int(target)] == pytest.approx(dijkstra(city, 0, int(target)).cost)

    def test_max_cost_prunes(self, unit_grid):
        dist = dijkstra_all(unit_grid, 0, max_cost=2.0)
        assert all(d <= 2.0 for d in dist.values())
        assert len(dist) < unit_grid.node_count

    def test_backward_equals_forward_on_symmetric_graph(self, unit_grid):
        # Roads are symmetric, so distance to == distance from.
        forward = dijkstra_all(unit_grid, 17)
        backward = dijkstra_all_backward(unit_grid, 17)
        assert forward == pytest.approx(backward)

    def test_backward_on_one_way(self):
        net = RoadNetwork()
        for i in range(3):
            net.add_node(i, Point(i, 0))
        net.add_edge(0, 1)
        net.add_edge(1, 2)
        to_2 = dijkstra_all_backward(net, 2)
        assert to_2 == {2: 0.0, 1: 1.0, 0: 2.0}
        assert dijkstra_all(net, 2) == {2: 0.0}  # nothing reachable from 2

    def test_to_targets_early_exit(self, city):
        nodes = list(city.node_ids())
        targets = nodes[5:10]
        found = dijkstra_to_targets(city, nodes[0], targets)
        assert set(found) == set(targets)
        full = dijkstra_all(city, nodes[0])
        for t in targets:
            assert found[t] == pytest.approx(full[t])

    def test_to_targets_empty(self, city):
        assert dijkstra_to_targets(city, 0, []) == {}

    def test_to_targets_respects_budget(self, unit_grid):
        found = dijkstra_to_targets(unit_grid, 0, [35], max_cost=3.0)
        assert found == {}  # node 35 is 10 km away


class TestBudgetTermination:
    """The budgeted searches stop *at the budget*, not after draining the
    frontier — regression tests counting cost-function invocations."""

    @staticmethod
    def _counting(weight_fn):
        calls = [0]

        def cost(edge):
            calls[0] += 1
            return weight_fn(edge)

        return cost, calls

    def test_dijkstra_all_stops_at_budget(self, city):
        by_length = lambda e: e.length_km
        cost, calls = self._counting(by_length)
        pruned = dijkstra_all(city, 0, cost, max_cost=2.0)
        pruned_calls = calls[0]
        cost, calls = self._counting(by_length)
        full = dijkstra_all(city, 0, cost)
        assert pruned == {n: d for n, d in full.items() if d <= 2.0}
        assert pruned_calls < calls[0] / 2  # small ball, not the whole city

    def test_to_targets_stops_when_all_settled(self, city):
        nodes = sorted(city.node_ids())
        full = dijkstra_all(city, nodes[0], lambda e: e.length_km)
        near = sorted(full, key=full.get)[1:4]
        cost, calls = self._counting(lambda e: e.length_km)
        found = dijkstra_to_targets(city, nodes[0], near, cost)
        assert set(found) == set(near)
        # Settling three nearby targets must not expand the whole graph.
        assert calls[0] < city.node_count

    def test_to_targets_stops_on_budget_with_unreachable_target(self, city):
        # A target that is never found must not force a full drain once
        # the heap minimum passes the budget.
        cost, calls = self._counting(lambda e: e.length_km)
        found = dijkstra_to_targets(city, 0, [-1], cost, max_cost=1.5)
        assert found == {}
        cost, calls_full = self._counting(lambda e: e.length_km)
        dijkstra_all(city, 0, cost)
        assert calls[0] < calls_full[0]

    def test_backward_stops_at_budget(self, city):
        cost, calls = self._counting(lambda e: e.length_km)
        pruned = dijkstra_all_backward(city, 0, cost, max_cost=2.0)
        pruned_calls = calls[0]
        cost, calls = self._counting(lambda e: e.length_km)
        full = dijkstra_all_backward(city, 0, cost)
        assert pruned == {n: d for n, d in full.items() if d <= 2.0}
        assert pruned_calls < calls[0] / 2


class TestAStar:
    def test_matches_dijkstra_distance(self, city):
        nodes = list(city.node_ids())
        rng = np.random.default_rng(1)
        for __ in range(10):
            s, t = rng.choice(nodes, size=2, replace=False)
            a = astar(city, int(s), int(t), EdgeWeight.DISTANCE_KM)
            d = dijkstra(city, int(s), int(t), EdgeWeight.DISTANCE_KM)
            assert a.cost == pytest.approx(d.cost)

    def test_matches_dijkstra_travel_time(self, city):
        nodes = list(city.node_ids())
        rng = np.random.default_rng(2)
        for __ in range(10):
            s, t = rng.choice(nodes, size=2, replace=False)
            a = astar(city, int(s), int(t), EdgeWeight.TRAVEL_TIME_H)
            d = dijkstra(city, int(s), int(t), EdgeWeight.TRAVEL_TIME_H)
            assert a.cost == pytest.approx(d.cost)

    def test_energy_weight_degrades_to_dijkstra(self, city):
        a = astar(city, 0, list(city.node_ids())[-1], EdgeWeight.ENERGY_KWH)
        d = dijkstra(city, 0, list(city.node_ids())[-1], EdgeWeight.ENERGY_KWH)
        assert a.cost == pytest.approx(d.cost)

    def test_no_path_raises(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(5, 0))
        with pytest.raises(NoPathError):
            astar(net, 0, 1)


class TestBidirectional:
    def test_matches_dijkstra(self, city):
        nodes = list(city.node_ids())
        rng = np.random.default_rng(3)
        for __ in range(10):
            s, t = rng.choice(nodes, size=2, replace=False)
            b = bidirectional_dijkstra(city, int(s), int(t))
            d = dijkstra(city, int(s), int(t))
            assert b.cost == pytest.approx(d.cost)

    def test_path_is_valid(self, city):
        nodes = list(city.node_ids())
        result = bidirectional_dijkstra(city, nodes[0], nodes[-1])
        assert result.nodes[0] == nodes[0] and result.nodes[-1] == nodes[-1]
        assert path_cost(city, result.nodes) == pytest.approx(result.cost)

    def test_trivial_query(self, city):
        assert bidirectional_dijkstra(city, 0, 0).cost == 0.0

    def test_no_path_raises(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(5, 0))
        with pytest.raises(NoPathError):
            bidirectional_dijkstra(net, 0, 1)

    def test_asymmetric_costs(self):
        """Directed triangle with asymmetric weights still resolves."""
        net = RoadNetwork()
        for i, p in enumerate([Point(0, 0), Point(1, 0), Point(0.5, 1)]):
            net.add_node(i, p)
        net.add_edge(0, 1, length_km=10.0)
        net.add_edge(0, 2, length_km=1.0)
        net.add_edge(2, 1, length_km=1.0)
        result = bidirectional_dijkstra(net, 0, 1)
        assert result.cost == pytest.approx(2.0)
        assert result.nodes == (0, 2, 1)
