"""Dynamic cache unit tests (Q-range and TTL validity, statistics)."""

import pytest

from repro.core.caching import CachedSolution, CacheStats, DynamicCache
from repro.spatial.geometry import Point


def _solution(origin=Point(0, 0), at_h=10.0, segment_index=0):
    return CachedSolution(
        segment_index=segment_index,
        origin=origin,
        generated_at_h=at_h,
        eta_h=at_h,
        radius_km=50.0,
        pool=(),
        components=(),
    )


class TestDynamicCache:
    def test_empty_lookup_misses(self):
        cache = DynamicCache(range_km=5.0, ttl_h=1.0)
        assert cache.lookup(Point(0, 0), now_h=10.0) is None
        assert cache.stats.misses == 1 and cache.stats.hits == 0

    def test_hit_within_range_and_ttl(self):
        cache = DynamicCache(range_km=5.0, ttl_h=1.0)
        cache.store(_solution())
        hit = cache.lookup(Point(3.0, 0.0), now_h=10.5)
        assert hit is not None
        assert cache.stats.hits == 1

    def test_miss_beyond_q(self):
        cache = DynamicCache(range_km=5.0, ttl_h=1.0)
        cache.store(_solution())
        assert cache.lookup(Point(6.0, 0.0), now_h=10.1) is None
        assert cache.stats.out_of_range == 1
        # Entry survives an out-of-range miss (a later nearby query may hit).
        assert cache.current is not None

    def test_miss_after_ttl_evicts(self):
        cache = DynamicCache(range_km=5.0, ttl_h=1.0)
        cache.store(_solution(at_h=10.0))
        assert cache.lookup(Point(0.0, 0.0), now_h=11.5) is None
        assert cache.stats.expirations == 1
        assert cache.current is None

    def test_boundary_conditions_inclusive(self):
        cache = DynamicCache(range_km=5.0, ttl_h=1.0)
        cache.store(_solution(at_h=10.0))
        # Exactly Q away and exactly TTL old still hits.
        assert cache.lookup(Point(5.0, 0.0), now_h=11.0) is not None

    def test_store_replaces(self):
        cache = DynamicCache(range_km=5.0, ttl_h=1.0)
        cache.store(_solution(segment_index=0))
        cache.store(_solution(segment_index=1))
        assert cache.current.segment_index == 1

    def test_clear_resets_stats(self):
        cache = DynamicCache(range_km=5.0, ttl_h=1.0)
        cache.store(_solution())
        cache.lookup(Point(0, 0), now_h=10.0)
        cache.clear()
        assert cache.current is None
        assert cache.stats.lookups == 0

    def test_hit_rate_zero_lookups_is_zero(self):
        # Regression: a never-queried cache reports 0.0, never ZeroDivisionError.
        stats = CacheStats()
        assert stats.lookups == 0
        assert stats.hit_rate == 0.0

    def test_hit_rate(self):
        cache = DynamicCache(range_km=5.0, ttl_h=1.0)
        assert cache.stats.hit_rate == 0.0
        cache.store(_solution())
        cache.lookup(Point(0, 0), 10.0)
        cache.lookup(Point(100, 0), 10.0)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicCache(range_km=0.0)
        with pytest.raises(ValueError):
            DynamicCache(range_km=1.0, ttl_h=0.0)
