"""GeoJSON export tests."""

import json

import pytest

from repro.core.baselines import BruteForceRanker
from repro.core.ranking import run_over_trip
from repro.io.geojson_io import (
    network_to_geojson,
    offerings_to_geojson,
    trajectory_to_geojson,
    trip_to_geojson,
    write_geojson,
)
from repro.spatial.geometry import GeoPoint
from repro.trajectories.brinkhoff import trip_to_trajectory


@pytest.fixture(scope="module")
def run(small_environment, sample_trip):
    return run_over_trip(
        BruteForceRanker(small_environment, k=3), small_environment, sample_trip
    )


def _assert_valid_feature_collection(payload):
    assert payload["type"] == "FeatureCollection"
    for feature in payload["features"]:
        assert feature["type"] == "Feature"
        geometry = feature["geometry"]
        assert geometry["type"] in ("Point", "LineString")
        coords = geometry["coordinates"]
        flat = [coords] if geometry["type"] == "Point" else coords
        for lon, lat in flat:
            assert -180.0 <= lon <= 180.0
            assert -90.0 <= lat <= 90.0


class TestNetworkGeojson:
    def test_valid_and_one_feature_per_road(self, small_network):
        payload = network_to_geojson(small_network)
        _assert_valid_feature_collection(payload)
        # Bidirectional pairs collapse into one LineString.
        assert len(payload["features"]) == small_network.edge_count / 2

    def test_properties(self, small_network):
        payload = network_to_geojson(small_network)
        props = payload["features"][0]["properties"]
        assert {"source", "target", "length_km", "speed_kmh", "oneway"} <= set(props)

    def test_serialisable(self, small_network):
        json.dumps(network_to_geojson(small_network))

    def test_custom_origin_shifts_coordinates(self, small_network):
        europe = network_to_geojson(small_network, GeoPoint(53.14, 8.21))
        asia = network_to_geojson(small_network, GeoPoint(39.9, 116.4))
        lon_eu = europe["features"][0]["geometry"]["coordinates"][0][0]
        lon_cn = asia["features"][0]["geometry"]["coordinates"][0][0]
        assert abs(lon_eu - lon_cn) > 50.0


class TestTripAndTrajectoryGeojson:
    def test_trip(self, sample_trip):
        payload = trip_to_geojson(sample_trip)
        _assert_valid_feature_collection(payload)
        props = payload["features"][0]["properties"]
        assert props["length_km"] == pytest.approx(sample_trip.length_km, abs=0.01)

    def test_trajectory_times_align(self, sample_trip):
        trace = trip_to_trajectory(sample_trip, object_id=3)
        payload = trajectory_to_geojson(trace)
        _assert_valid_feature_collection(payload)
        feature = payload["features"][0]
        assert len(feature["properties"]["times_h"]) == len(
            feature["geometry"]["coordinates"]
        )


class TestOfferingsGeojson:
    def test_one_point_per_entry(self, run):
        payload = offerings_to_geojson(run.tables)
        _assert_valid_feature_collection(payload)
        assert len(payload["features"]) == sum(len(t) for t in run.tables)

    def test_properties_carry_scores(self, run):
        payload = offerings_to_geojson(run.tables)
        props = payload["features"][0]["properties"]
        assert {"rank", "charger_id", "sc_min", "sc_max", "L", "A", "D"} <= set(props)

    def test_write(self, tmp_path, run):
        path = write_geojson(offerings_to_geojson(run.tables), tmp_path / "o.geojson")
        assert path.exists()
        loaded = json.loads(path.read_text())
        assert loaded["type"] == "FeatureCollection"
