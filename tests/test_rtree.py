"""STR R-tree tests, including cross-validation against scipy's cKDTree."""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import Point
from repro.spatial.knn import brute_force_knn, brute_force_radius
from repro.spatial.rtree import RTree


def _entries(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (Point(float(x), float(y)), i)
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, 100, n), rng.uniform(0, 100, n))
        )
    ]


@pytest.fixture(scope="module")
def entries():
    return _entries(500, seed=4)


@pytest.fixture(scope="module")
def tree(entries):
    return RTree(entries, leaf_capacity=8)


class TestStructure:
    def test_size(self, tree, entries):
        assert len(tree) == len(entries)

    def test_empty_tree(self):
        empty: RTree[int] = RTree([])
        assert len(empty) == 0
        assert empty.nearest(Point(0, 0), 3) == []
        assert empty.query_radius(Point(0, 0), 10) == []
        assert empty.query_range(BoundingBox(0, 0, 1, 1)) == []
        assert empty.height() == 0

    def test_single_entry(self):
        tree = RTree([(Point(1, 1), "x")])
        assert tree.nearest(Point(0, 0), 1)[0][2] == "x"
        assert tree.height() == 1

    def test_height_grows_logarithmically(self, entries):
        tree = RTree(entries, leaf_capacity=4)
        # 500 entries / capacity 4 => ~125 leaves => height around 4-5.
        assert 3 <= tree.height() <= 6

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RTree([], leaf_capacity=1)


class TestQueries:
    def test_knn_matches_brute_force(self, tree, entries):
        rng = np.random.default_rng(5)
        for __ in range(25):
            q = Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            k = int(rng.integers(1, 12))
            got = [item for __, __, item in tree.nearest(q, k)]
            want = [item for __, __, item in brute_force_knn(entries, q, k)]
            assert got == want

    def test_radius_matches_brute_force(self, tree, entries):
        rng = np.random.default_rng(6)
        for __ in range(25):
            q = Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            r = float(rng.uniform(1, 25))
            got = {item for __, item in tree.query_radius(q, r)}
            want = {item for __, item in brute_force_radius(entries, q, r)}
            assert got == want

    def test_range_query(self, tree, entries):
        box = BoundingBox(10, 30, 55, 70)
        got = {item for __, item in tree.query_range(box)}
        want = {item for point, item in entries if box.contains(point)}
        assert got == want

    def test_negative_radius(self, tree):
        with pytest.raises(ValueError):
            tree.query_radius(Point(0, 0), -1)

    def test_k_validation(self, tree):
        with pytest.raises(ValueError):
            tree.nearest(Point(0, 0), 0)


class TestAgainstScipy:
    """Cross-validation with an independent implementation."""

    def test_knn_distances_match_ckdtree(self, entries, tree):
        coords = np.array([[p.x, p.y] for p, __ in entries])
        reference = cKDTree(coords)
        rng = np.random.default_rng(7)
        for __ in range(20):
            q = (float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            k = int(rng.integers(1, 10))
            ref_d, __ = reference.query(q, k=k)
            ref_d = np.atleast_1d(ref_d)
            got_d = [d for d, __, __ in tree.nearest(Point(*q), k)]
            assert np.allclose(sorted(got_d), sorted(ref_d))

    def test_radius_counts_match_ckdtree(self, entries, tree):
        coords = np.array([[p.x, p.y] for p, __ in entries])
        reference = cKDTree(coords)
        rng = np.random.default_rng(8)
        for __ in range(20):
            q = (float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            r = float(rng.uniform(1, 20))
            want = len(reference.query_ball_point(q, r))
            got = len(tree.query_radius(Point(*q), r))
            assert got == want
