"""The SLO stack: windows, burn rates, alerts, tail sampling, exemplars.

Unit evidence for the live-ops layer that ``python -m repro.experiments
slo`` exercises end-to-end:

* window deltas over the metrics registry are exact and prune-safe;
* burn-rate math matches the SRE-workbook definition (capped, finite);
* the alert state machine walks inactive → pending → firing → resolved
  deterministically, with ``for_s`` maturation on the injected clock;
* tail sampling never evicts an error/deadline/degraded trace — the
  regression the old FIFO ring failed (documented here too);
* ``histogram_quantile`` agrees with the nearest-rank ``percentile``
  oracle when observations sit exactly on bucket bounds (hypothesis);
* the cardinality guard accounts every overflow exactly;
* Prometheus exposition escaping round-trips ``\\``, ``"``, newlines and
  braces inside quoted label values;
* firing alerts raise the brownout floor only behind the
  ``alert_driven_brownout`` flag.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import (
    STATE_CODES,
    AlertManager,
    HistogramWindow,
    MetricsRegistry,
    SimulatedClock,
    Span,
    Telemetry,
    Tracer,
    WindowedAggregator,
)
from repro.observability.export import (
    ExpositionError,
    parse_prometheus,
    parse_sample_line,
    render_prometheus,
    unescape_label,
)
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    OVERFLOW_BUCKET,
    OVERFLOW_COUNTER,
    Histogram,
    MetricError,
    histogram_quantile,
)
from repro.observability.sampling import (
    MUST_KEEP_REASONS,
    REASON_ATTRIBUTE,
    SamplingPolicy,
    TailSampler,
    collect_exemplars,
    hash_fraction,
    retained_trace_ids,
)
from repro.observability.slo import (
    BURN_CAP,
    BurnSignal,
    BurnWindowPair,
    EventRatioSLO,
    LatencyBucketSLO,
    SLOEngine,
    ZeroEventSLO,
    default_serving_slos,
)
from repro.server.scheduling import BrownoutController, BrownoutLevel
from repro.server.scheduling.brownout import floor_for_alert_severities
from repro.simulation.load import percentile


def _clock() -> SimulatedClock:
    return SimulatedClock(start_s=0.0, tick_s=0.0)


# ---------------------------------------------------------------------------
# Sliding windows


class TestWindowedAggregator:
    def test_counter_delta_over_windows(self):
        clock = _clock()
        registry = MetricsRegistry()
        family = registry.counter("reqs_total", "requests", labels=("outcome",))
        agg = WindowedAggregator(registry, clock, horizon_s=600.0)

        agg.sample()  # t=0 baseline
        family.labels(outcome="ok").inc(5)
        clock.advance(10.0)
        agg.sample()  # t=10
        assert agg.counter_delta("reqs_total", {"outcome": "ok"}, 10.0) == 5.0

        family.labels(outcome="ok").inc(2)
        clock.advance(10.0)
        agg.sample()  # t=20
        # Trailing 10 s: 7 - 5; trailing 30 s reaches before birth: full 7.
        assert agg.counter_delta("reqs_total", {"outcome": "ok"}, 10.0) == 2.0
        assert agg.counter_delta("reqs_total", {"outcome": "ok"}, 30.0) == 7.0

    def test_reads_before_any_sample_are_zero(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", "requests")
        agg = WindowedAggregator(registry, _clock())
        assert agg.counter_delta("reqs_total", None, 60.0) == 0.0
        assert len(agg) == 0

    def test_series_born_mid_horizon_reads_full_value(self):
        # A label set that first appears after the baseline sample must
        # read its whole total as the delta (past lookup finds nothing).
        clock = _clock()
        registry = MetricsRegistry()
        family = registry.counter("reqs_total", "requests", labels=("outcome",))
        agg = WindowedAggregator(registry, clock)
        agg.sample()
        family.labels(outcome="late").inc(3)
        clock.advance(5.0)
        agg.sample()
        assert agg.counter_delta("reqs_total", {"outcome": "late"}, 60.0) == 3.0

    def test_unknown_metric_rejected(self):
        agg = WindowedAggregator(MetricsRegistry(), _clock())
        agg.sample()
        with pytest.raises(ValueError, match="not registered"):
            agg.counter_delta("nope_total", None, 10.0)
        with pytest.raises(ValueError, match="not a registered histogram"):
            agg.histogram_delta("nope_total", None, 10.0)

    def test_out_of_order_samples_rejected(self):
        class Rewindable:
            now = 10.0

            def monotonic(self) -> float:
                return self.now

        clock = Rewindable()
        agg = WindowedAggregator(MetricsRegistry(), clock)
        agg.sample()
        clock.now = 5.0
        with pytest.raises(ValueError, match="clock order"):
            agg.sample()

    def test_histogram_delta(self):
        clock = _clock()
        registry = MetricsRegistry()
        family = registry.histogram("lat_seconds", "latency", buckets=(1.0, 2.0))
        agg = WindowedAggregator(registry, clock)
        family.observe(0.5)
        clock.advance(10.0)
        agg.sample()  # t=10: cum (1, 1, 1)
        family.observe(1.5)
        family.observe(9.0)
        clock.advance(10.0)
        agg.sample()  # t=20: cum (1, 2, 3)
        window = agg.histogram_delta("lat_seconds", None, 10.0)
        assert window == HistogramWindow(
            bounds=(1.0, 2.0), cumulative=(0, 1, 2), sum=10.5, count=2
        )
        full = agg.histogram_delta("lat_seconds", None, 60.0)
        assert full.cumulative == (1, 2, 3)
        assert full.count == 3

    def test_histogram_delta_before_any_sample_is_zero(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", "latency", buckets=(1.0,))
        agg = WindowedAggregator(registry, _clock())
        window = agg.histogram_delta("lat_seconds", None, 10.0)
        assert window.cumulative == (0, 0)
        assert window.count == 0

    def test_pruning_keeps_full_horizon_baseline(self):
        clock = _clock()
        registry = MetricsRegistry()
        family = registry.counter("reqs_total", "requests")
        agg = WindowedAggregator(registry, clock, horizon_s=30.0)
        for _ in range(20):
            family.inc()
            clock.advance(10.0)
            agg.sample()
        # Samples older than the horizon are pruned (plus one baseline)...
        assert len(agg) <= 5
        # ...but the full-horizon window still subtracts a real baseline:
        # 3 increments land inside the trailing 30 s.
        assert agg.counter_delta("reqs_total", None, 30.0) == 3.0

    def test_positive_horizon_required(self):
        with pytest.raises(ValueError):
            WindowedAggregator(MetricsRegistry(), _clock(), horizon_s=0.0)


# ---------------------------------------------------------------------------
# Burn-rate math


def _ratio_fixture(good: int, bad: int, target: float = 0.9):
    clock = _clock()
    registry = MetricsRegistry()
    family = registry.counter("reqs_total", "requests", labels=("outcome",))
    agg = WindowedAggregator(registry, clock)
    agg.sample()
    if good:
        family.labels(outcome="completed").inc(good)
    if bad:
        family.labels(outcome="failed").inc(bad)
    clock.advance(60.0)
    agg.sample()
    slo = EventRatioSLO(
        name="availability",
        metric="reqs_total",
        good_labels=[{"outcome": "completed"}],
        total_labels=[{"outcome": "completed"}, {"outcome": "failed"}],
        target=target,
    )
    return slo, agg


class TestBurnMath:
    def test_burn_one_consumes_budget_exactly(self):
        # 10% bad against a 90% target: burn == 1.0 by definition.
        slo, agg = _ratio_fixture(good=9, bad=1, target=0.9)
        assert slo.burn_rate(agg, 60.0) == pytest.approx(1.0)

    def test_burn_scales_with_bad_fraction(self):
        slo, agg = _ratio_fixture(good=5, bad=5, target=0.9)
        assert slo.burn_rate(agg, 60.0) == pytest.approx(5.0)

    def test_no_traffic_burns_nothing(self):
        slo, agg = _ratio_fixture(good=0, bad=0)
        assert slo.burn_rate(agg, 60.0) == 0.0

    def test_zero_budget_burn_is_capped_not_infinite(self):
        slo, agg = _ratio_fixture(good=9, bad=1, target=1.0)
        assert slo.burn_rate(agg, 60.0) == BURN_CAP

    def test_zero_event_slo(self):
        clock = _clock()
        registry = MetricsRegistry()
        family = registry.counter("unsound_total", "unsound tables")
        agg = WindowedAggregator(registry, clock)
        agg.sample()
        slo = ZeroEventSLO(name="soundness", metric="unsound_total")
        clock.advance(10.0)
        agg.sample()
        assert slo.burn_rate(agg, 10.0) == 0.0
        family.inc()
        clock.advance(10.0)
        agg.sample()
        assert slo.burn_rate(agg, 10.0) == BURN_CAP

    def test_latency_slo_counts_bucket_bound(self):
        clock = _clock()
        registry = MetricsRegistry()
        family = registry.histogram("lat_seconds", "latency", buckets=(0.5, 1.0, 2.0))
        agg = WindowedAggregator(registry, clock)
        agg.sample()
        for value in (0.1, 0.9, 1.0, 1.5):  # 3 of 4 at-or-under 1.0
            family.observe(value)
        clock.advance(30.0)
        agg.sample()
        slo = LatencyBucketSLO(
            name="latency", metric="lat_seconds", threshold_s=1.0, target=0.5
        )
        good, bad = slo.good_bad(agg, 30.0)
        assert (good, bad) == (3.0, 1.0)
        assert slo.burn_rate(agg, 30.0) == pytest.approx(0.5)

    def test_latency_threshold_must_be_a_bucket_bound(self):
        clock = _clock()
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", "latency", buckets=(0.5, 1.0))
        agg = WindowedAggregator(registry, clock)
        agg.sample()
        slo = LatencyBucketSLO(
            name="latency", metric="lat_seconds", threshold_s=0.75, target=0.5
        )
        with pytest.raises(MetricError, match="not .* bucket bound"):
            slo.good_bad(agg, 30.0)

    def test_pair_and_objective_validation(self):
        with pytest.raises(ValueError):
            BurnWindowPair("page", long_s=1.0, short_s=2.0, threshold=1.0, for_s=0.0)
        with pytest.raises(ValueError):
            BurnWindowPair("page", long_s=10.0, short_s=5.0, threshold=0.0, for_s=0.0)
        with pytest.raises(ValueError):
            BurnWindowPair("page", long_s=10.0, short_s=5.0, threshold=1.0, for_s=-1.0)
        with pytest.raises(ValueError):
            ZeroEventSLO(name="x", metric="m", pairs=())
        with pytest.raises(ValueError):
            EventRatioSLO("x", "m", [], [], target=1.5)

    def test_engine_signal_order_and_names(self):
        clock = _clock()
        registry = MetricsRegistry()
        registry.counter("reqs_total", "requests", labels=("outcome",))
        agg = WindowedAggregator(registry, clock)
        agg.sample()
        pairs = (
            BurnWindowPair("page", 10.0, 5.0, 2.0, 0.0),
            BurnWindowPair("ticket", 30.0, 10.0, 1.0, 0.0),
        )
        engine = SLOEngine(
            agg,
            [
                EventRatioSLO(
                    "availability",
                    "reqs_total",
                    [{"outcome": "completed"}],
                    [{"outcome": "completed"}, {"outcome": "failed"}],
                    target=0.9,
                    pairs=pairs,
                ),
            ],
        )
        signals = engine.evaluate()
        assert [s.alert for s in signals] == [
            "availability:page",
            "availability:ticket",
        ]
        assert all(not s.active for s in signals)

    def test_engine_rejects_duplicates_and_empty(self):
        agg = WindowedAggregator(MetricsRegistry(), _clock())
        slo = ZeroEventSLO(name="x", metric="m")
        with pytest.raises(ValueError):
            SLOEngine(agg, [])
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine(agg, [slo, ZeroEventSLO(name="x", metric="n")])

    def test_default_serving_slos_cover_three_objectives(self):
        slos = default_serving_slos()
        assert [slo.name for slo in slos] == [
            "serving-availability",
            "serving-latency",
            "interval-soundness",
        ]
        # Soundness is the zero-budget objective.
        assert slos[2].target == 1.0


# ---------------------------------------------------------------------------
# Alert lifecycle


def _signal(active: bool, for_s: float = 2.0, name: str = "slo:page") -> BurnSignal:
    burn = 10.0 if active else 0.0
    return BurnSignal(
        alert=name,
        severity="page",
        active=active,
        burn_long=burn,
        burn_short=burn,
        for_s=for_s,
    )


class TestAlertLifecycle:
    def test_full_lifecycle(self):
        clock = _clock()
        manager = AlertManager(clock)
        manager.update([_signal(True)])  # t=0: inactive -> pending
        assert manager.states() == {"slo:page": "pending"}
        clock.advance(1.0)
        manager.update([_signal(True)])  # t=1: held 1 < for_s 2
        assert manager.states() == {"slo:page": "pending"}
        clock.advance(1.0)
        manager.update([_signal(True)])  # t=2: matured -> firing
        assert manager.states() == {"slo:page": "firing"}
        assert manager.firing() == [("slo:page", "page")]
        clock.advance(1.0)
        manager.update([_signal(False)])  # t=3: firing -> resolved
        assert manager.states() == {"slo:page": "resolved"}
        clock.advance(1.0)
        manager.update([_signal(False)])  # resolved is sticky
        assert manager.states() == {"slo:page": "resolved"}
        assert [(t["from"], t["to"], t["t"]) for t in manager.transitions] == [
            ("inactive", "pending", 0.0),
            ("pending", "firing", 2.0),
            ("firing", "resolved", 3.0),
        ]

    def test_pending_without_maturation_never_fires(self):
        clock = _clock()
        manager = AlertManager(clock)
        manager.update([_signal(True)])
        clock.advance(0.5)
        manager.update([_signal(False)])  # cleared before for_s
        assert manager.states() == {"slo:page": "inactive"}
        assert manager.firing() == []
        # ...but a previously-fired alert falls back to resolved instead.
        clock.advance(0.5)
        manager.update([_signal(True, for_s=0.0)])
        assert manager.states() == {"slo:page": "firing"}
        clock.advance(0.5)
        manager.update([_signal(True)])  # firing stays firing
        assert manager.states() == {"slo:page": "firing"}
        clock.advance(0.5)
        manager.update([_signal(False)])
        clock.advance(0.5)
        manager.update([_signal(True)])  # resolved -> pending
        clock.advance(0.5)
        manager.update([_signal(False)])  # pending, ever_fired -> resolved
        assert manager.states() == {"slo:page": "resolved"}

    def test_zero_for_s_fires_immediately(self):
        manager = AlertManager(_clock())
        new = manager.update([_signal(True, for_s=0.0)])
        assert manager.states() == {"slo:page": "firing"}
        assert [t["to"] for t in new] == ["firing"]

    def test_transition_log_is_deterministic(self):
        def run() -> list[dict]:
            clock = _clock()
            manager = AlertManager(clock)
            for active in (True, True, False, True, True, False):
                manager.update([_signal(active, for_s=1.0)])
                clock.advance(1.0)
            return manager.transitions

        assert run() == run()

    def test_registry_mirroring(self):
        clock = _clock()
        registry = MetricsRegistry()
        manager = AlertManager(clock, registry)
        manager.update([_signal(True, for_s=0.0)])
        assert registry.sample_value(
            "ecocharge_alert_state", {"alertname": "slo:page", "severity": "page"}
        ) == STATE_CODES["firing"]
        clock.advance(1.0)
        manager.update([_signal(False)])
        assert registry.sample_value(
            "ecocharge_alert_state", {"alertname": "slo:page", "severity": "page"}
        ) == STATE_CODES["resolved"]
        assert registry.sample_value(
            "ecocharge_alert_transitions_total",
            {"alertname": "slo:page", "to": "firing"},
        ) == 1.0
        assert registry.sample_value(
            "ecocharge_alert_transitions_total",
            {"alertname": "slo:page", "to": "resolved"},
        ) == 1.0

    def test_engine_to_alerts_integration(self):
        # Bad traffic through windows -> engine -> alerts, end to end.
        clock = _clock()
        registry = MetricsRegistry()
        family = registry.counter("reqs_total", "requests", labels=("outcome",))
        agg = WindowedAggregator(registry, clock)
        engine = SLOEngine(
            agg,
            [
                EventRatioSLO(
                    "availability",
                    "reqs_total",
                    [{"outcome": "completed"}],
                    [{"outcome": "completed"}, {"outcome": "failed"}],
                    target=0.9,
                    pairs=(BurnWindowPair("page", 10.0, 5.0, 2.0, 0.0),),
                )
            ],
        )
        manager = AlertManager(clock, registry)
        agg.sample()
        family.labels(outcome="failed").inc(10)
        clock.advance(1.0)
        agg.sample()
        manager.update(engine.evaluate())
        assert manager.firing() == [("availability:page", "page")]
        # Burn decays once the bleeding stops and the windows slide past.
        family.labels(outcome="completed").inc(500)
        clock.advance(11.0)
        agg.sample()
        manager.update(engine.evaluate())
        assert manager.states() == {"availability:page": "resolved"}


# ---------------------------------------------------------------------------
# Tail-based trace sampling


def _tracer(max_traces: int, policy: SamplingPolicy) -> tuple[SimulatedClock, Tracer]:
    clock = _clock()
    return clock, Tracer(clock, max_traces=max_traces, sampler=TailSampler(policy))


def _id_where(predicate) -> str:
    for i in range(10_000):
        candidate = f"probe-{i}"
        if predicate(hash_fraction(candidate)):
            return candidate
    raise AssertionError("no trace id found for predicate")


class TestTailSampling:
    def test_hash_fraction_deterministic_and_unit_range(self):
        ids = [f"t-{i:04d}" for i in range(100)]
        draws = [hash_fraction(trace_id) for trace_id in ids]
        assert draws == [hash_fraction(trace_id) for trace_id in ids]
        assert all(0.0 <= d < 1.0 for d in draws)
        # Not constant: the draws actually spread over the unit interval.
        assert max(draws) - min(draws) > 0.5

    def test_error_trace_classified_and_stamped(self):
        _, tracer = _tracer(8, SamplingPolicy(slow_k=0, sample_rate=0.0))
        with pytest.raises(RuntimeError):
            with tracer.span("req", "server"):
                raise RuntimeError("boom")
        assert len(tracer.traces) == 1
        assert tracer.traces[0].attributes[REASON_ATTRIBUTE] == "error"

    def test_deadline_and_degraded_classification(self):
        _, tracer = _tracer(8, SamplingPolicy(slow_k=0, sample_rate=0.0))
        with tracer.span("req", "server", outcome="shed-deadline", detail="mid-run"):
            pass
        with tracer.span("req", "server", outcome="stale"):
            pass
        with tracer.span("req", "server", outcome="completed", widened=True):
            pass
        with tracer.span("req", "server", outcome="completed", brownout=1):
            pass
        with tracer.span("req", "server", outcome="completed", epoch_degraded=True):
            pass
        reasons = [t.attributes[REASON_ATTRIBUTE] for t in tracer.traces]
        assert reasons == ["deadline", "degraded", "degraded", "degraded", "degraded"]
        assert set(reasons) <= MUST_KEEP_REASONS

    def test_healthy_traces_hash_sampled(self):
        keep_id = _id_where(lambda f: f < 0.15)
        drop_id = _id_where(lambda f: f >= 0.15)
        _, tracer = _tracer(8, SamplingPolicy(slow_k=0, sample_rate=0.15))
        with tracer.span("req", "server", trace_id=keep_id, outcome="completed"):
            pass
        with tracer.span("req", "server", trace_id=drop_id, outcome="completed"):
            pass
        assert retained_trace_ids(tracer.traces) == {keep_id}
        sampler = tracer.sampler
        assert sampler.stats.kept == {"sampled": 1}
        assert sampler.stats.dropped == 1

    def test_top_k_slowest_kept_per_window(self):
        clock, tracer = _tracer(8, SamplingPolicy(slow_k=1, slow_window_s=60.0, sample_rate=0.0))
        with tracer.span("req", "server", outcome="completed"):
            clock.advance(0.5)
        with tracer.span("req", "server", outcome="completed"):
            clock.advance(0.1)  # faster than the current seat: dropped
        with tracer.span("req", "server", outcome="completed"):
            clock.advance(2.0)  # slower: takes the seat
        reasons = [t.attributes.get(REASON_ATTRIBUTE) for t in tracer.traces]
        assert reasons == ["slow", "slow"]
        assert tracer.sampler.stats.kept == {"slow": 2}
        assert tracer.sampler.stats.dropped == 1

    def test_regression_must_keep_traces_survive_overflow(self):
        # The retention invariant the FIFO ring violated: a storm of
        # healthy traces must never flush out the anomalous ones.
        _, tracer = _tracer(2, SamplingPolicy(slow_k=0, sample_rate=1.0))
        error_ids = []
        for i in range(6):
            with pytest.raises(RuntimeError):
                with tracer.span("req", "server") as span:
                    error_ids.append(span.trace_id)
                    raise RuntimeError("boom")
            with tracer.span("req", "server", outcome="completed"):
                pass
        retained = retained_trace_ids(tracer.traces)
        assert set(error_ids) <= retained
        # Must-keeps exceed the bound: the ring grows rather than lies.
        assert len(tracer.traces) == 6 > 2
        stats = tracer.sampler.stats
        assert stats.kept == {"error": 6, "sampled": 6}
        assert stats.evicted == 6
        assert stats.dropped == 0
        assert stats.must_keep_total() == 6
        assert stats.kept_total() - stats.evicted == len(tracer.traces)

    def test_preexisting_fifo_eviction_without_sampler(self):
        # Documents the legacy behaviour the tail sampler replaces: with
        # no sampler the ring is FIFO and evicts even an error trace.
        clock = _clock()
        tracer = Tracer(clock, max_traces=3, sampler=None)
        with pytest.raises(RuntimeError):
            with tracer.span("req", "server") as span:
                error_id = span.trace_id
                raise RuntimeError("boom")
        for _ in range(4):
            with tracer.span("req", "server", outcome="completed"):
                pass
        assert len(tracer.traces) == 3
        assert error_id not in retained_trace_ids(tracer.traces)

    def test_error_anywhere_in_tree_is_must_keep(self):
        _, tracer = _tracer(8, SamplingPolicy(slow_k=0, sample_rate=0.0))
        with tracer.span("req", "server", outcome="completed"):
            with tracer.span("fetch", "gateway"):
                tracer.mark_error(TimeoutError("upstream"))
        assert tracer.traces[0].attributes[REASON_ATTRIBUTE] == "error"

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SamplingPolicy(slow_k=-1)
        with pytest.raises(ValueError):
            SamplingPolicy(slow_window_s=0.0)
        with pytest.raises(ValueError):
            SamplingPolicy(sample_rate=1.5)


# ---------------------------------------------------------------------------
# Histogram quantiles vs the nearest-rank oracle


class TestHistogramQuantile:
    def test_interpolates_within_bucket(self):
        # 4 observations spread across (0, 1]: rank 2 of 4 at q=0.5 sits
        # halfway through the first bucket's span.
        assert histogram_quantile((1.0, 2.0), (4, 4, 4), 0.5) == 0.5

    def test_inf_bucket_returns_last_finite_bound(self):
        assert histogram_quantile((1.0, 2.0), (0, 0, 3), 0.99) == 2.0

    def test_empty_histogram_is_zero(self):
        assert histogram_quantile((1.0,), (0, 0), 0.5) == 0.0

    def test_validation(self):
        with pytest.raises(MetricError):
            histogram_quantile((1.0,), (1, 1), 1.5)
        with pytest.raises(MetricError):
            histogram_quantile((1.0, 2.0), (1, 1), 0.5)
        with pytest.raises(MetricError):
            histogram_quantile((1.0, 2.0), (2, 1, 3), 0.5)

    @settings(max_examples=200, deadline=None)
    @given(
        bounds=st.sets(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=20),
        q=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_matches_nearest_rank_on_bucket_bounds(self, bounds, q):
        # When every observation sits exactly on its own bucket bound the
        # interpolation is exact, so the bucket estimate *equals* the
        # nearest-rank oracle from repro.simulation (integer-valued
        # bounds keep the float arithmetic exact).
        values = sorted(float(v) for v in bounds)
        histogram = Histogram(values)
        for value in values:
            histogram.observe(value)
        estimate = histogram_quantile(tuple(values), tuple(histogram.cumulative()), q)
        assert estimate == percentile(values, q)

    def test_default_buckets_approximate_oracle(self):
        # Real-shaped bounds (non-integer) agree to float tolerance.
        values = list(DEFAULT_LATENCY_BUCKETS)
        histogram = Histogram(DEFAULT_LATENCY_BUCKETS)
        for value in values:
            histogram.observe(value)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            estimate = histogram_quantile(
                DEFAULT_LATENCY_BUCKETS, tuple(histogram.cumulative()), q
            )
            assert estimate == pytest.approx(percentile(values, q), rel=1e-12)


# ---------------------------------------------------------------------------
# Cardinality guard


class TestCardinalityGuard:
    def test_overflow_is_bucketed_and_counted_exactly(self):
        registry = MetricsRegistry()
        family = registry.counter(
            "tenant_reqs_total",
            "requests by tenant",
            labels=("tenant",),
            max_label_values={"tenant": 2},
        )
        for tenant in ("a", "b", "c", "d", "c"):
            family.labels(tenant=tenant).inc()
        assert family.admitted_values("tenant") == frozenset({"a", "b"})
        samples = {s["labels"]["tenant"]: s["value"] for s in family.samples()}
        assert samples == {"a": 1.0, "b": 1.0, OVERFLOW_BUCKET: 3.0}
        # Every rewrite counted: 3 over-limit resolutions ("c", "d", "c").
        assert registry.sample_value(
            OVERFLOW_COUNTER, {"label": "tenant", "metric": "tenant_reqs_total"}
        ) == 3.0
        # Totals stay exact across the guard.
        assert sum(samples.values()) == 5.0

    def test_admitted_values_requires_a_guard(self):
        registry = MetricsRegistry()
        family = registry.counter("reqs_total", "requests", labels=("tenant",))
        with pytest.raises(MetricError, match="no guard"):
            family.admitted_values("tenant")

    def test_guard_schema_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError, match="not in"):
            registry.counter(
                "reqs_total", "requests", labels=("outcome",), max_label_values={"tenant": 2}
            )
        with pytest.raises(MetricError, match="positive"):
            registry.counter(
                "caps_total", "requests", labels=("tenant",), max_label_values={"tenant": 0}
            )
        with pytest.raises(MetricError, match="bad label name"):
            registry.counter("dunder_total", "reserved prefix", labels=("__other",))

    def test_re_registration_with_different_limits_rejected(self):
        registry = MetricsRegistry()
        registry.counter(
            "reqs_total", "requests", labels=("tenant",), max_label_values={"tenant": 2}
        )
        again = registry.counter(
            "reqs_total", "requests", labels=("tenant",), max_label_values={"tenant": 2}
        )
        assert again is registry.get("reqs_total")
        with pytest.raises(MetricError, match="cardinality limits"):
            registry.counter(
                "reqs_total", "requests", labels=("tenant",), max_label_values={"tenant": 4}
            )

    def test_telemetry_tenant_label_is_guarded(self):
        telemetry = Telemetry.simulated(tick_s=0.0)
        family = telemetry.registry.get("ecocharge_tenant_requests_total")
        assert family is not None
        from repro.observability.recorder import TENANT_LABEL_LIMIT

        for i in range(TENANT_LABEL_LIMIT + 3):
            telemetry.inc(
                "ecocharge_tenant_requests_total",
                tenant=f"tenant-{i}",
                outcome="completed",
            )
        assert len(family.admitted_values("tenant")) == TENANT_LABEL_LIMIT
        assert telemetry.registry.sample_value(
            OVERFLOW_COUNTER,
            {"label": "tenant", "metric": "ecocharge_tenant_requests_total"},
        ) == 3.0


# ---------------------------------------------------------------------------
# Exemplars


class TestExemplars:
    def test_histogram_exemplars_last_writer_wins(self):
        histogram = Histogram((1.0, 2.0))
        histogram.observe(0.5, exemplar="t-0001")
        histogram.observe(0.7, exemplar="t-0002")
        histogram.observe(5.0, exemplar="t-0003")
        assert histogram.exemplars == {0: "t-0002", 2: "t-0003"}

    def test_collect_exemplars_filters_to_retained(self):
        registry = MetricsRegistry()
        family = registry.histogram("lat_seconds", "latency", buckets=(1.0,))
        family.labels().observe(0.5, exemplar="kept")
        family.labels().observe(5.0, exemplar="evicted")
        links = collect_exemplars(registry, retained={"kept"})
        assert links == [
            {"metric": "lat_seconds", "labels": {}, "le": "1", "trace_id": "kept"}
        ]

    def test_served_latency_exemplar_via_telemetry(self):
        telemetry = Telemetry.simulated(tick_s=0.0)
        telemetry.observe("ecocharge_served_latency_seconds", 0.2, exemplar="trip-ab")
        sample = telemetry.registry.get("ecocharge_served_latency_seconds").samples()[0]
        assert "trip-ab" in sample["exemplars"].values()


# ---------------------------------------------------------------------------
# Prometheus exposition escaping


class TestExpositionEscaping:
    @pytest.mark.parametrize(
        "value",
        [
            'quote "inside"',
            "back\\slash",
            "new\nline",
            "curly {braces} stay",
            "comma, separated",
            'all \\ of " it {x,y}\ntogether',
        ],
    )
    def test_label_value_round_trips(self, value):
        registry = MetricsRegistry()
        registry.counter("escapes_total", "escaping", labels=("detail",)).labels(
            detail=value
        ).inc()
        text = render_prometheus(registry)
        parse_prometheus(text)  # the validator accepts the exposition
        sample_line = [
            line for line in text.splitlines() if line.startswith("escapes_total{")
        ][0]
        name, labels, raw_value = parse_sample_line(sample_line)
        assert name == "escapes_total"
        assert labels == {"detail": value}
        assert raw_value == "1"

    def test_unescape_rejects_bad_sequences(self):
        assert unescape_label(r"a\\b\"c\n") == 'a\\b"c\n'
        with pytest.raises(ExpositionError, match="bad escape"):
            unescape_label(r"\t")
        with pytest.raises(ExpositionError, match="dangling"):
            unescape_label("trailing\\")

    def test_brace_inside_quoted_value_regression(self):
        # The old label-block regex used [^{}]* and rejected this line.
        name, labels, value = parse_sample_line('m_total{a="x{y}z",b="w"} 4')
        assert (name, value) == ("m_total", "4")
        assert labels == {"a": "x{y}z", "b": "w"}

    def test_malformed_lines_rejected(self):
        with pytest.raises(ExpositionError, match="unterminated label block"):
            parse_sample_line('m_total{a="x" 1')
        with pytest.raises(ExpositionError, match="unterminated label block"):
            # The } sits inside the open quote, so the block never closes.
            parse_sample_line('m_total{a="x} 1')
        with pytest.raises(ExpositionError, match="malformed sample"):
            parse_sample_line("m_total")
        with pytest.raises(ExpositionError, match="malformed label pair"):
            parse_sample_line("m_total{a=unquoted} 1")

    def test_help_text_newline_escaped(self):
        registry = MetricsRegistry()
        registry.counter("multi_total", "first line\nsecond line")
        text = render_prometheus(registry)
        assert "# HELP multi_total first line\\nsecond line" in text
        parse_prometheus(text)


# ---------------------------------------------------------------------------
# Alert-driven brownout


class TestAlertDrivenBrownout:
    def test_floor_for_alert_severities(self):
        assert floor_for_alert_severities([]) == BrownoutLevel.NORMAL
        assert floor_for_alert_severities(["ticket"]) == BrownoutLevel.NORMAL
        assert floor_for_alert_severities(["page"]) == BrownoutLevel.SERVE_STALE
        assert floor_for_alert_severities(["page", "ticket"]) == BrownoutLevel.SERVE_STALE
        assert floor_for_alert_severities(["page", "page"]) == BrownoutLevel.WIDEN
        assert (
            floor_for_alert_severities(["ticket", "page", "page", "page"])
            == BrownoutLevel.WIDEN
        )

    def test_floor_maxes_with_queue_ladder(self):
        controller = BrownoutController()
        controller.set_alert_floor(BrownoutLevel.SERVE_STALE)
        # Empty queue: the floor alone degrades.
        assert controller.level_for(0, 10) == BrownoutLevel.SERVE_STALE
        # Deep queue: queue pressure wins over a lower floor.
        assert controller.level_for(8, 10) == BrownoutLevel.WIDEN
        controller.set_alert_floor(BrownoutLevel.NORMAL)
        assert controller.level_for(0, 10) == BrownoutLevel.NORMAL

    def _firing_manager(self, pages: int) -> AlertManager:
        manager = AlertManager(_clock())
        signals = [
            _signal(True, for_s=0.0, name=f"slo-{i}:page") for i in range(pages)
        ]
        manager.update(signals)
        return manager

    def test_scheduler_flag_gates_alert_floor(self, small_network, small_registry):
        from repro.core.ecocharge import EcoChargeConfig
        from repro.core.environment import ChargingEnvironment
        from repro.server.scheduling import SchedulerConfig, ShardedScheduler

        def factory() -> ChargingEnvironment:
            return ChargingEnvironment(small_network, small_registry, seed=5)

        def build(flag: bool) -> ShardedScheduler:
            telemetry = Telemetry.simulated(tick_s=0.0)
            return ShardedScheduler(
                factory,
                SchedulerConfig(shards=1, alert_driven_brownout=flag),
                EcoChargeConfig(k=3, segment_km=6.0),
                clock=telemetry.clock,
                telemetry=telemetry,
            )

        firing_two_pages = self._firing_manager(2)
        gated = build(False)
        assert gated.apply_alert_state(firing_two_pages) == BrownoutLevel.NORMAL
        assert gated.brownout.alert_floor == BrownoutLevel.NORMAL

        driven = build(True)
        assert driven.apply_alert_state(firing_two_pages) == BrownoutLevel.WIDEN
        assert driven.brownout.alert_floor == BrownoutLevel.WIDEN
        assert driven.apply_alert_state(self._firing_manager(1)) == BrownoutLevel.SERVE_STALE
        # All clear: the floor drops back to NORMAL.
        assert driven.apply_alert_state(self._firing_manager(0)) == BrownoutLevel.NORMAL
        assert driven.brownout.alert_floor == BrownoutLevel.NORMAL
