"""Shared fixtures: a small deterministic world every suite can query.

The module-scoped fixtures build one compact city (16x12 km grid, 60
chargers) reused across integration tests — constructing a fresh
environment per test would dominate the suite's runtime without buying
isolation (everything is immutable or reset between uses).
"""

from __future__ import annotations

import pytest

from repro.chargers.plugshare import CatalogSpec, generate_catalog
from repro.core.environment import ChargingEnvironment
from repro.network.builders import NetworkSpec, build_city_network, build_grid_network
from repro.network.path import Trip


@pytest.fixture(scope="session")
def small_network():
    """A perturbed-grid city of ~100 nodes."""
    return build_city_network(
        NetworkSpec(width_km=16.0, height_km=12.0, block_km=1.5, seed=42)
    )


@pytest.fixture(scope="session")
def small_registry(small_network):
    """60 chargers over the small network."""
    return generate_catalog(
        small_network, CatalogSpec(charger_count=60, hotspots=3, seed=7)
    )


@pytest.fixture(scope="session")
def small_environment(small_network, small_registry):
    return ChargingEnvironment(small_network, small_registry, seed=5)


@pytest.fixture(scope="session")
def sample_trip(small_environment):
    """A cross-town trip of at least 10 km departing at 10:00."""
    network = small_environment.network
    nodes = sorted(network.node_ids())
    # Opposite corners of the grid are guaranteed far apart.
    return Trip.route(network, nodes[0], nodes[-1], departure_time_h=10.0)


@pytest.fixture(scope="session")
def unit_grid():
    """A perfectly regular 6x6 grid with 1 km blocks (closed-form tests)."""
    return build_grid_network(6, 6, block_km=1.0, speed_kmh=60.0)
