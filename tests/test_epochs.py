"""Live-graph epochs: atomic bumps, ratio bounds, fencing, widening.

Three guarantees from ``docs/live_graph.md`` are pinned here:

* :class:`GraphEpochManager` bumps ``epoch`` on every apply but
  ``weights_version`` only on real edge-cost changes, and every
  transition's ``[ratio_lo, ratio_hi]`` brackets how far any
  shortest-path cost can have moved;
* the :class:`DistanceEngine` pair-join cache and whole-query memo can
  never serve distances across a weight change, even when a
  ``WeightSpec`` key is *reused* with different semantics (the PR 8
  cache audit);
* degraded-mode widened Offering Tables contain the fresh-epoch
  intervals and never reverse a certain ordering, across random incident
  sequences (Hypothesis property).
"""

from __future__ import annotations

import itertools
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chargers.plugshare import CatalogSpec, generate_catalog
from repro.core.ecocharge import EcoChargeConfig
from repro.core.environment import ChargingEnvironment
from repro.network.builders import build_grid_network
from repro.network.distance_engine import BACKENDS, DistanceEngine, WeightSpec
from repro.network.epochs import (
    VACUOUS_BOUND,
    GraphEpochManager,
    Incident,
    IncidentStream,
)
from repro.network.graph import EdgeWeight
from repro.network.path import Trip
from repro.server.eis import EcoChargeInformationServer
from repro.server.scheduling.brownout import widen_table_for_epoch


@pytest.fixture(scope="module")
def grid():
    return build_grid_network(6, 6, block_km=1.0, speed_kmh=60.0)


@pytest.fixture(scope="module")
def edges(grid):
    return sorted((e.source, e.target) for e in grid.edges())


@pytest.fixture(scope="module")
def registry(grid):
    return generate_catalog(grid, CatalogSpec(charger_count=20, hotspots=2, seed=7))


# ---------------------------------------------------------------------------
# Incident
# ---------------------------------------------------------------------------


class TestIncident:
    def test_rejects_nonpositive_multiplier(self):
        with pytest.raises(ValueError, match="positive"):
            Incident(0, 1, 0.0)
        with pytest.raises(ValueError, match="positive"):
            Incident(0, 1, -2.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            Incident(0, 1, math.nan)

    def test_congestion_must_be_finite(self):
        with pytest.raises(ValueError, match="finite"):
            Incident.congestion(0, 1, math.inf)

    def test_closure_and_reopening(self):
        closure = Incident.closure(0, 1)
        assert closure.is_closure and math.isinf(closure.multiplier)
        reopening = Incident.reopening(0, 1)
        assert reopening.is_reopening and reopening.multiplier == 1.0


# ---------------------------------------------------------------------------
# GraphEpochManager
# ---------------------------------------------------------------------------


class TestGraphEpochManager:
    def test_epoch_bumps_every_apply_weights_only_on_change(self, grid, edges):
        manager = GraphEpochManager(grid)
        s, t = edges[0]
        manager.apply(())
        assert (manager.epoch, manager.weights_version) == (1, 0)
        manager.apply([Incident.congestion(s, t, 2.0)])
        assert (manager.epoch, manager.weights_version) == (2, 1)

    def test_noop_transition_record(self, grid):
        manager = GraphEpochManager(grid)
        transition = manager.apply(())
        assert transition.is_noop and not transition.is_vacuous
        assert (transition.ratio_lo, transition.ratio_hi) == (1.0, 1.0)
        assert manager.stats.noop_epochs == 1

    def test_net_unchanged_batch_is_noop(self, grid, edges):
        """Congest-then-reopen in one batch nets to nothing — the bump
        must be a no-op so serving can prove zero cache cost."""
        manager = GraphEpochManager(grid)
        s, t = edges[0]
        transition = manager.apply(
            [Incident.congestion(s, t, 2.0), Incident.reopening(s, t)]
        )
        assert transition.is_noop
        assert manager.weights_version == 0
        assert manager.factor(s, t) == 1.0

    def test_unknown_edge_rejected_before_any_mutation(self, grid, edges):
        manager = GraphEpochManager(grid)
        s, t = edges[0]
        with pytest.raises(KeyError):
            manager.apply(
                [Incident.congestion(s, t, 2.0), Incident.congestion(-1, -2, 2.0)]
            )
        assert manager.epoch == 0
        assert manager.factor(s, t) == 1.0

    def test_factor_table_is_copy_on_write(self, grid, edges):
        """A captured factor table keeps pricing its admission epoch —
        later bumps must never mutate it (torn reads impossible)."""
        manager = GraphEpochManager(grid)
        s, t = edges[0]
        version, captured = manager.snapshot()
        manager.apply([Incident.congestion(s, t, 3.0)])
        assert version == 0 and (s, t) not in captured
        assert manager.factor(s, t) == 3.0

    def test_reopening_clears_factor(self, grid, edges):
        manager = GraphEpochManager(grid)
        s, t = edges[0]
        manager.apply([Incident.congestion(s, t, 2.0)])
        manager.apply([Incident.reopening(s, t)])
        assert manager.factor(s, t) == 1.0
        assert manager.active_incidents() == {}

    def test_bound_since_multiplies_per_transition_brackets(self, grid, edges):
        manager = GraphEpochManager(grid)
        s, t = edges[0]
        manager.apply([Incident.congestion(s, t, 2.0)])   # ratio 2.0
        assert manager.bound_since(0) == (1.0, 2.0)
        manager.apply([Incident.congestion(s, t, 0.5)])   # ratio 0.25
        assert manager.bound_since(0) == (0.25, 2.0)
        assert manager.bound_since(1) == (0.25, 1.0)
        assert manager.bound_since(manager.epoch) == (1.0, 1.0)

    def test_closure_is_vacuous_and_reopening_ratio_zero(self, grid, edges):
        manager = GraphEpochManager(grid)
        s, t = edges[0]
        closure = manager.apply([Incident.closure(s, t)])
        assert closure.is_vacuous and math.isinf(manager.bound_since(0)[1])
        assert manager.is_closed(s, t)
        reopening = manager.apply([Incident.reopening(s, t)])
        assert reopening.ratio_lo == 0.0
        assert not manager.is_closed(s, t)

    def test_future_epoch_rejected(self, grid):
        manager = GraphEpochManager(grid)
        with pytest.raises(ValueError, match="future"):
            manager.bound_since(5)

    def test_history_eviction_returns_vacuous_bound(self, grid, edges):
        manager = GraphEpochManager(grid, max_history=1)
        s, t = edges[0]
        manager.apply([Incident.congestion(s, t, 2.0)])
        manager.apply([Incident.congestion(s, t, 3.0)])
        assert manager.bound_since(0) == VACUOUS_BOUND
        assert manager.bound_since(1) == (1.0, 1.5)

    def test_stats_counters(self, grid, edges):
        manager = GraphEpochManager(grid)
        s, t = edges[0]
        manager.apply(())
        manager.apply([Incident.closure(s, t)])
        manager.apply([Incident.reopening(s, t)])
        stats = manager.stats.as_dict()
        assert stats["epochs"] == 3
        assert stats["noop_epochs"] == 1
        assert stats["weight_epochs"] == 2
        assert stats["incidents_applied"] == 2
        assert stats["closures_applied"] == 1
        assert stats["reopenings_applied"] == 1


# ---------------------------------------------------------------------------
# IncidentStream
# ---------------------------------------------------------------------------


class TestIncidentStream:
    def test_same_seed_same_storm(self, grid):
        a = IncidentStream(grid, seed=3)
        b = IncidentStream(grid, seed=3)
        assert [a.next_batch(4) for _ in range(5)] == [b.next_batch(4) for _ in range(5)]

    def test_batches_apply_cleanly_and_closures_stay_bounded(self, grid):
        manager = GraphEpochManager(grid)
        stream = IncidentStream(grid, seed=1, max_closed=2)
        for _ in range(12):
            manager.apply(stream.next_batch(4))
            closed = sum(
                1 for factor in manager.active_incidents().values()
                if math.isinf(factor)
            )
            assert closed <= 2

    def test_empty_batch_supports_noop_proofs(self, grid):
        stream = IncidentStream(grid, seed=0, closure_rate=0.0)
        assert stream.next_batch(0) == ()


# ---------------------------------------------------------------------------
# satellite audit: the engine's pair-join cache and whole-query memo can
# never serve distances across a weight change
# ---------------------------------------------------------------------------


class TestWeightChangeCacheAudit:
    """PR 8 keyed the pair cache and whole-query memo by an interned
    weight id; these tests pin that a reused key (same id, different
    metric) fences all of that state instead of serving stale joins."""

    @staticmethod
    def _endpoints(grid):
        nodes = sorted(grid.node_ids())
        return nodes[0], nodes[1:12]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reused_key_never_serves_old_distances(self, grid, backend):
        engine = DistanceEngine(grid, backend=backend)
        source, targets = self._endpoints(grid)

        def base_cost(edge):
            return edge.weight(EdgeWeight.TRAVEL_TIME_H)

        spec_v0 = WeightSpec(key=("live", "tt"), fn=base_cost, epoch_version=0)
        first = engine.one_to_many(source, targets, spec_v0)
        again = engine.one_to_many(source, targets, spec_v0)  # warm the memo
        assert again == first

        spec_v1 = WeightSpec(
            key=("live", "tt"),                       # the *same* interned key
            fn=lambda edge: 2.0 * base_cost(edge),    # but a changed metric
            epoch_version=1,
        )
        doubled = engine.one_to_many(source, targets, spec_v1)
        assert set(doubled) == set(first)
        for node, distance in first.items():
            assert doubled[node] == pytest.approx(2.0 * distance, abs=1e-6)
        assert engine.stats.epoch_invalidations > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_many_to_one_is_fenced_too(self, grid, backend):
        engine = DistanceEngine(grid, backend=backend)
        target, sources = self._endpoints(grid)

        def base_cost(edge):
            return edge.weight(EdgeWeight.TRAVEL_TIME_H)

        spec_v0 = WeightSpec(key="m2o", fn=base_cost, epoch_version=0)
        first = engine.many_to_one(sources, target, spec_v0)
        spec_v1 = WeightSpec(
            key="m2o", fn=lambda edge: 3.0 * base_cost(edge), epoch_version=1
        )
        tripled = engine.many_to_one(sources, target, spec_v1)
        for node, distance in first.items():
            assert tripled[node] == pytest.approx(3.0 * distance, abs=1e-6)

    def test_same_key_same_version_reuses_cached_state(self, grid):
        engine = DistanceEngine(grid, backend="ch")
        source, targets = self._endpoints(grid)
        spec = WeightSpec(
            key="stable",
            fn=lambda edge: edge.weight(EdgeWeight.TRAVEL_TIME_H),
            epoch_version=7,
        )
        first = engine.one_to_many(source, targets, spec)
        fences_before = engine.stats.epoch_invalidations
        clone = WeightSpec(
            key="stable",
            fn=lambda edge: edge.weight(EdgeWeight.TRAVEL_TIME_H),
            epoch_version=7,
        )
        assert engine.one_to_many(source, targets, clone) == first
        assert engine.stats.epoch_invalidations == fences_before

    def test_static_specs_never_fence(self, grid):
        engine = DistanceEngine(grid, backend="dijkstra")
        source, targets = self._endpoints(grid)
        first = engine.one_to_many(source, targets, EdgeWeight.TRAVEL_TIME_H)
        assert engine.one_to_many(source, targets, EdgeWeight.TRAVEL_TIME_H) == first
        assert engine.stats.epoch_invalidations == 0


# ---------------------------------------------------------------------------
# environment integration: no-op transparency and weight-change fencing
# ---------------------------------------------------------------------------


class TestEnvironmentEpochs:
    @staticmethod
    def _trip(grid):
        nodes = sorted(grid.node_ids())
        return Trip.route(grid, nodes[0], nodes[-1], departure_time_h=10.0)

    def test_noop_bump_is_bitwise_free(self, grid, registry):
        environment = ChargingEnvironment(grid, registry, seed=5)
        manager = GraphEpochManager(grid)
        environment.set_epochs(manager)
        server = EcoChargeInformationServer(environment)
        config = EcoChargeConfig(k=3, radius_km=10.0)
        trip = self._trip(grid)
        before = server.rank_trip(trip, config).tables
        manager.apply(())
        after = server.rank_trip(trip, config).tables
        assert after == before
        assert environment.engine.stats.epoch_invalidations == 0
        assert environment.current_epoch() == 1
        assert environment.weights_token() == 0

    def test_real_incident_fences_and_recomputes(self, grid, registry, edges):
        environment = ChargingEnvironment(grid, registry, seed=5)
        manager = GraphEpochManager(grid)
        environment.set_epochs(manager)
        server = EcoChargeInformationServer(environment)
        config = EcoChargeConfig(k=3, radius_km=10.0)
        trip = self._trip(grid)
        server.rank_trip(trip, config)
        manager.apply([Incident.congestion(s, t, 4.0) for s, t in edges[:8]])
        assert environment.weights_token() == 1
        tables = server.rank_trip(trip, config).tables
        assert tables and all(table.entries for table in tables)
        assert environment.engine.stats.epoch_invalidations > 0


# ---------------------------------------------------------------------------
# satellite property: widened tables contain fresh-epoch intervals and
# preserve certainly-better ordering (Hypothesis, random incident runs)
# ---------------------------------------------------------------------------


def _score_bounds(entry) -> tuple[float, float]:
    lo = min(entry.score.sc_min, entry.score.sc_max)
    hi = max(entry.score.sc_min, entry.score.sc_max)
    return lo, hi


def _certainly_better(a, b) -> bool:
    """True when every scenario scores ``a`` strictly above ``b``."""
    a_lo, _ = _score_bounds(a)
    _, b_hi = _score_bounds(b)
    return a_lo > b_hi


class TestWidenedTableProperty:
    CONFIG = EcoChargeConfig(k=3, radius_km=10.0)

    @pytest.fixture(scope="class")
    def base(self, grid, registry):
        """Epoch-0 tables: what a degraded serve would widen."""
        environment = ChargingEnvironment(grid, registry, seed=5)
        server = EcoChargeInformationServer(environment)
        trip = TestEnvironmentEpochs._trip(grid)
        return trip, server.rank_trip(trip, self.CONFIG).tables

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_widened_contains_fresh_and_preserves_certain_order(
        self, data, grid, registry, edges, base
    ):
        trip, base_tables = base
        picks = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from(edges),
                    st.floats(
                        0.4, 4.0, allow_nan=False, allow_infinity=False
                    ),
                ),
                min_size=1,
                max_size=5,
            )
        )
        batches = data.draw(st.integers(1, 3))

        manager = GraphEpochManager(grid)
        for index in range(batches):
            manager.apply(
                tuple(
                    Incident.congestion(s, t, multiplier)
                    for (s, t), multiplier in picks[index::batches]
                )
            )
        lo, hi = manager.bound_since(0)
        assert 0.0 < lo <= 1.0 <= hi < math.inf

        environment = ChargingEnvironment(grid, registry, seed=5)
        environment.set_epochs(manager)
        fresh_tables = {
            table.segment_index: table
            for table in EcoChargeInformationServer(environment).rank_trip(
                trip, self.CONFIG
            ).tables
        }
        for table in base_tables:
            fresh = fresh_tables.get(table.segment_index)
            if fresh is None:
                continue
            widened = widen_table_for_epoch(table, lo, hi, self.CONFIG.weights)
            common = [
                (entry, fresh.get(entry.charger_id))
                for entry in widened.entries
                if fresh.get(entry.charger_id) is not None
            ]
            # Containment: widened ⊇ fresh, per charger served both ways.
            for entry, truth in common:
                assert truth.derouting.within_bounds(
                    entry.derouting.lo, entry.derouting.hi, tol=1e-8
                )
            # Ordering: widening may only *lose* certainty, never invert
            # a certain preference the fresh epoch holds.
            for (wide_a, fresh_a), (wide_b, fresh_b) in itertools.combinations(
                common, 2
            ):
                if _certainly_better(fresh_a, fresh_b):
                    assert not _certainly_better(wide_b, wide_a)
                if _certainly_better(fresh_b, fresh_a):
                    assert not _certainly_better(wide_a, wide_b)
