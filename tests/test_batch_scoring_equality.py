"""Bitwise equality of the batched scoring path against the scalar path.

The vectorised modules (:mod:`repro.interval_array`,
:func:`repro.core.scoring.sc_score_batch`,
:func:`repro.core.scoring.intersect_top_k_batch`, and the flat-array
table build) promise results *bitwise identical* to the scalar
dataclass pipeline — the same contract PR 3 established between the
engine backends.  These property tests drive both pipelines over
generated inputs (including ``-0.0``, infinities, and quantisation
edges) and compare raw float bit patterns, not ``==`` (which would let
``-0.0 == 0.0`` slide).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scoring import (
    ComponentScores,
    Weights,
    intersect_top_k,
    intersect_top_k_batch,
    sc_score,
    sc_score_batch,
)
from repro.interval_array import ComponentArrays, IntervalArray, quantize
from repro.intervals import Interval
from repro.network.distance_engine import DISTANCE_DECIMALS


def bits(value: float) -> bytes:
    """The raw IEEE-754 bit pattern (distinguishes -0.0 from 0.0)."""
    return np.float64(value).tobytes()


def assert_bitequal(a: float, b: float) -> None:
    assert bits(a) == bits(b), f"{a!r} and {b!r} differ bitwise"


def assert_interval_rows_match(array: IntervalArray, scalars: list[Interval]) -> None:
    assert len(array) == len(scalars)
    for i, interval in enumerate(scalars):
        assert_bitequal(float(array.lo[i]), interval.lo)
        assert_bitequal(float(array.hi[i]), interval.hi)


finite = st.floats(
    allow_nan=False, allow_infinity=False, width=64, min_value=-1e100, max_value=1e100
)
#: Endpoints including signed zeros and infinities (legal Interval inputs).
endpoint = st.floats(allow_nan=False, allow_infinity=True, width=64)
unit = st.floats(min_value=0.0, max_value=1.0, width=64)


@st.composite
def intervals(draw, values=finite):
    a, b = draw(values), draw(values)
    return Interval(min(a, b), max(a, b))


@st.composite
def interval_lists(draw, values=finite, min_size=0, max_size=12):
    return draw(
        st.lists(intervals(values=values), min_size=min_size, max_size=max_size)
    )


class TestIntervalArrayOps:
    """Every IntervalArray operation mirrors the scalar Interval op
    elementwise, bit for bit."""

    @given(interval_lists(values=endpoint))
    def test_pack_unpack_roundtrip(self, rows):
        array = IntervalArray.from_intervals(rows)
        assert_interval_rows_match(array, rows)
        assert [iv for iv in array.to_intervals()] == rows

    @given(interval_lists(), interval_lists())
    def test_add(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        got = IntervalArray.from_intervals(a).add(IntervalArray.from_intervals(b))
        assert_interval_rows_match(got, [x + y for x, y in zip(a, b)])

    @given(interval_lists(), finite)
    def test_add_scalar(self, rows, c):
        got = IntervalArray.from_intervals(rows).add(c)
        assert_interval_rows_match(got, [iv + c for iv in rows])

    @given(interval_lists(), finite)
    def test_mul_scalar_sign_aware(self, rows, c):
        got = IntervalArray.from_intervals(rows).mul_scalar(c)
        assert_interval_rows_match(got, [iv * c for iv in rows])

    @given(interval_lists(), interval_lists())
    def test_mul_four_products(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        got = IntervalArray.from_intervals(a).mul(IntervalArray.from_intervals(b))
        assert_interval_rows_match(got, [x * y for x, y in zip(a, b)])

    def test_mul_signed_zero_ties_match_scalar(self):
        # 0 * negative = -0.0: the four-products reduction must keep
        # Python's first-minimal-wins tie behaviour, not IEEE's.
        a = [Interval(0.0, 0.0), Interval(-1.0, 0.0)]
        b = [Interval(-1.0, 1.0), Interval(0.0, 0.0)]
        got = IntervalArray.from_intervals(a).mul(IntervalArray.from_intervals(b))
        assert_interval_rows_match(got, [x * y for x, y in zip(a, b)])

    @given(interval_lists())
    def test_negate(self, rows):
        got = IntervalArray.from_intervals(rows).negate()
        assert_interval_rows_match(got, [-iv for iv in rows])

    @given(interval_lists(values=unit))
    def test_complement_to_one(self, rows):
        got = IntervalArray.from_intervals(rows).complement_to_one()
        assert_interval_rows_match(got, [iv.complement_to_one() for iv in rows])

    @given(interval_lists(), st.tuples(finite, finite))
    def test_clamp(self, rows, bounds):
        lo, hi = min(bounds), max(bounds)
        got = IntervalArray.from_intervals(rows).clamp(lo, hi)
        assert_interval_rows_match(got, [iv.clamp(lo, hi) for iv in rows])

    @given(interval_lists(), finite)
    def test_scaled_by_max(self, rows, maximum):
        got = IntervalArray.from_intervals(rows).scaled_by_max(maximum)
        assert_interval_rows_match(got, [iv.scaled_by_max(maximum) for iv in rows])

    @given(
        interval_lists(),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False, width=64),
    )
    def test_widened(self, rows, factor):
        got = IntervalArray.from_intervals(rows).widened(factor)
        assert_interval_rows_match(got, [iv.widened(factor) for iv in rows])

    @given(interval_lists(values=endpoint), interval_lists(values=endpoint))
    def test_hull_and_intersects(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        arr_a, arr_b = IntervalArray.from_intervals(a), IntervalArray.from_intervals(b)
        assert_interval_rows_match(arr_a.hull(arr_b), [x.hull(y) for x, y in zip(a, b)])
        got = arr_a.intersects(arr_b)
        assert got.tolist() == [x.intersects(y) for x, y in zip(a, b)]

    @given(interval_lists(values=endpoint), finite, finite, unit)
    def test_within_bounds(self, rows, a, b, tol):
        lo, hi = min(a, b), max(a, b)
        got = IntervalArray.from_intervals(rows).within_bounds(lo, hi, tol=tol)
        assert got.tolist() == [iv.within_bounds(lo, hi, tol=tol) for iv in rows]

    def test_signed_zero_survives_packing(self):
        rows = [Interval(-0.0, 0.0), Interval(-0.0, -0.0)]
        array = IntervalArray.from_intervals(rows)
        assert_interval_rows_match(array, rows)
        assert math.copysign(1.0, float(array.lo[0])) == -1.0

    def test_infinite_endpoints_allowed_like_scalar(self):
        # Interval allows [inf, inf] (inf > inf is False); so must the array.
        rows = [Interval(math.inf, math.inf), Interval(-math.inf, 3.0)]
        assert_interval_rows_match(IntervalArray.from_intervals(rows), rows)

    @given(st.lists(finite, max_size=16))
    def test_validation_matches_scalar(self, values):
        # lo > hi rejected exactly like Interval's own post-init.
        if len(values) >= 2 and values[0] > values[1]:
            with pytest.raises(ValueError):
                IntervalArray(
                    np.array([values[0]]), np.array([values[1]])
                )

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            IntervalArray(np.array([math.nan]), np.array([1.0]))


class TestQuantize:
    """Array quantisation must match the engine's scalar round exactly."""

    @given(st.lists(finite, max_size=32))
    def test_matches_scalar_round(self, values):
        got = quantize(values)
        for v, q in zip(values, got.tolist()):
            assert_bitequal(q, round(v, DISTANCE_DECIMALS))

    def test_quantisation_edges(self):
        # Values straddling the 1e-9 quantum, where np.round's
        # scale-rint-unscale can disagree with Python's decimal round.
        edges = [0.5e-9, 1.5e-9, 2.5e-9, 1.0000000005, -0.0, 123.4567890125]
        got = quantize(edges)
        for v, q in zip(edges, got.tolist()):
            assert_bitequal(q, round(v, DISTANCE_DECIMALS))


@st.composite
def weight_triples(draw):
    named = draw(st.sampled_from([None, "AWE", "OSC", "OA", "ODC"]))
    if named == "AWE":
        return Weights.equal()
    if named == "OSC":
        return Weights.only_sustainable()
    if named == "OA":
        return Weights.only_availability()
    if named == "ODC":
        return Weights.only_derouting()
    w1 = draw(st.floats(min_value=0.0, max_value=1.0, width=64))
    w2 = draw(st.floats(min_value=0.0, max_value=1.0, width=64))
    if w1 + w2 > 1.0:
        w1, w2 = w1 / 2.0, w2 / 2.0
    # (1.0 - w1) - w2 can land an ulp below zero even when w1 + w2 <= 1.0.
    return Weights(w1, w2, max(0.0, 1.0 - w1 - w2))


@st.composite
def component_pools(draw, min_size=1, max_size=16):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    pool = []
    for cid in ids:
        rows = []
        for __ in range(3):
            a, b = draw(unit), draw(unit)
            rows.append(Interval(min(a, b), max(a, b)))
        pool.append(
            ComponentScores(
                charger_id=cid,
                sustainable=rows[0],
                availability=rows[1],
                derouting=rows[2],
            )
        )
    return pool


class TestScScoreBatch:
    @settings(max_examples=200)
    @given(component_pools(), weight_triples())
    def test_bitwise_equal_to_scalar(self, pool, weights):
        arrays = ComponentArrays.from_scores(pool)
        sc_min, sc_max = sc_score_batch(arrays, weights)
        for i, comp in enumerate(pool):
            scalar = sc_score(comp, weights)
            assert int(arrays.charger_ids[i]) == comp.charger_id
            assert_bitequal(float(sc_min[i]), scalar.sc_min)
            assert_bitequal(float(sc_max[i]), scalar.sc_max)


class TestIntersectTopKBatch:
    @settings(max_examples=200)
    @given(
        component_pools(),
        weight_triples(),
        st.integers(min_value=1, max_value=8),
        st.booleans(),
    )
    def test_same_selection_and_order(self, pool, weights, k, pad):
        arrays = ComponentArrays.from_scores(pool)
        sc_min, sc_max = sc_score_batch(arrays, weights)
        scalar_scores = [sc_score(comp, weights) for comp in pool]
        chosen = intersect_top_k(scalar_scores, k, pad=pad)
        rows = intersect_top_k_batch(arrays.charger_ids, sc_min, sc_max, k, pad=pad)
        got = [int(arrays.charger_ids[r]) for r in rows]
        assert got == [s.charger_id for s in chosen]
        for row, scalar in zip(rows, chosen):
            assert_bitequal(float(sc_min[row]), scalar.sc_min)
            assert_bitequal(float(sc_max[row]), scalar.sc_max)


class TestEndToEndTables:
    """Scalar vs flat-array pipelines over a seeded scenario: every
    delivered Offering Table must match bit for bit, on both engine
    backends, through computes *and* cache adaptations."""

    @pytest.fixture(scope="class")
    def world(self):
        from repro.chargers.plugshare import CatalogSpec, generate_catalog
        from repro.network.builders import NetworkSpec, build_city_network
        from repro.network.path import Trip

        network = build_city_network(
            NetworkSpec(width_km=14.0, height_km=10.0, block_km=1.5, seed=11)
        )
        registry = generate_catalog(
            network, CatalogSpec(charger_count=24, hotspots=2, seed=3)
        )
        nodes = sorted(network.node_ids())
        trip = Trip.route(network, nodes[0], nodes[-1], departure_time_h=9.0)
        return network, registry, trip

    @staticmethod
    def _tables(world, scoring: str, backend: str):
        from repro.core.ecocharge import EcoChargeConfig, EcoChargeRanker
        from repro.core.environment import ChargingEnvironment
        from repro.core.ranking import run_over_trip

        network, registry, trip = world
        environment = ChargingEnvironment(network, registry, seed=5, engine=backend)
        ranker = EcoChargeRanker(
            environment,
            EcoChargeConfig(k=4, radius_km=9.0, range_km=5.0, scoring=scoring),
        )
        return run_over_trip(ranker, environment, trip).tables

    @staticmethod
    def _assert_tables_bitequal(scalar_tables, batch_tables):
        assert len(scalar_tables) == len(batch_tables)
        for a, b in zip(scalar_tables, batch_tables):
            assert a.segment_index == b.segment_index
            assert a.adapted_from == b.adapted_from
            assert len(a.entries) == len(b.entries)
            for ea, eb in zip(a.entries, b.entries):
                assert ea.charger_id == eb.charger_id
                assert ea.rank == eb.rank
                assert_bitequal(ea.score.sc_min, eb.score.sc_min)
                assert_bitequal(ea.score.sc_max, eb.score.sc_max)
                for field in ("sustainable", "availability", "derouting"):
                    iva, ivb = getattr(ea, field), getattr(eb, field)
                    assert_bitequal(iva.lo, ivb.lo)
                    assert_bitequal(iva.hi, ivb.hi)

    @pytest.mark.parametrize("backend", ["dijkstra", "ch"])
    def test_ranker_tables_bitequal(self, world, backend):
        scalar = self._tables(world, "scalar", backend)
        batch = self._tables(world, "batch", backend)
        assert any(t.is_adapted for t in batch)  # adaptations are covered
        self._assert_tables_bitequal(scalar, batch)

    def test_refine_pool_bitequal(self, world):
        from repro.core.environment import ChargingEnvironment
        from repro.core.ranking import refine_pool

        network, registry, trip = world
        segments = trip.segments()
        pool = registry.within_radius(segments[0].midpoint, 9.0)
        tables = {}
        for scoring in ("scalar", "batch"):
            environment = ChargingEnvironment(network, registry, seed=5)
            tables[scoring] = refine_pool(
                environment,
                trip,
                segments[0],
                pool,
                eta_h=9.2,
                now_h=9.0,
                k=4,
                weights=Weights.equal(),
                next_segment=segments[1],
                scoring=scoring,
            )
        self._assert_tables_bitequal([tables["scalar"]], [tables["batch"]])
