"""Public-API hygiene: exports resolve and everything public is documented.

The reproduction promises "doc comments on every public item"; this test
makes the promise executable — every name in every subpackage's
``__all__`` must exist, and every public class/function must carry a
docstring.
"""

import importlib
import inspect

import pytest

SUBPACKAGES = [
    "repro",
    "repro.chargers",
    "repro.core",
    "repro.estimation",
    "repro.experiments",
    "repro.io",
    "repro.network",
    "repro.server",
    "repro.simulation",
    "repro.spatial",
    "repro.trajectories",
    "repro.ui",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} exported but missing"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_all_is_sorted(module_name):
    module = importlib.import_module(module_name)
    exports = list(module.__all__)
    assert exports == sorted(exports), f"{module_name}.__all__ is not sorted"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"{module_name}: missing docstrings on {undocumented}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_public_classes_have_documented_public_methods(module_name):
    """Methods defined in this codebase (not inherited) must be documented."""
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if not inspect.isclass(obj) or not obj.__module__.startswith("repro"):
            continue
        for method_name, method in vars(obj).items():
            if method_name.startswith("_"):
                continue
            if inspect.isfunction(method) and not (method.__doc__ or "").strip():
                undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{module_name}: undocumented methods {undocumented}"


def test_version_exported():
    import repro

    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2
