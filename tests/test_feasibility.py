"""Vehicle feasibility filtering tests."""

import pytest

from repro.chargers.charger import Charger, PlugType, Vehicle
from repro.core.ecocharge import EcoChargeConfig, EcoChargeRanker
from repro.core.feasibility import (
    ROAD_DETOUR_FACTOR,
    VehicleConstraints,
    filter_feasible,
)
from repro.spatial.geometry import Point


def _charger(cid, x, plug=PlugType.AC_TYPE2, rate=11.0):
    return Charger(charger_id=cid, point=Point(x, 0.0), node_id=0, rate_kw=rate,
                   plug_type=plug)


def _constraints(soc=0.5, battery=60.0, **kw):
    return VehicleConstraints(
        vehicle=Vehicle(0, battery_kwh=battery, state_of_charge=soc), **kw
    )


class TestConstraints:
    def test_validation(self):
        with pytest.raises(ValueError):
            _constraints(allowed_plugs=frozenset())
        with pytest.raises(ValueError):
            _constraints(reserve_soc=1.0)
        with pytest.raises(ValueError):
            _constraints(min_deliverable_kw=-1.0)

    def test_usable_range_respects_reserve(self):
        with_reserve = _constraints(soc=0.5, reserve_soc=0.1)
        without = _constraints(soc=0.5, reserve_soc=0.0)
        assert with_reserve.usable_range_km < without.usable_range_km

    def test_empty_battery_reaches_nothing(self):
        constraints = _constraints(soc=0.05, reserve_soc=0.08)
        assert constraints.usable_range_km == 0.0
        assert not constraints.qualifies(_charger(0, 0.1), Point(0, 0))

    def test_reachability_boundary(self):
        constraints = _constraints(soc=0.5, battery=60.0, reserve_soc=0.0)
        # usable range = 60 * 0.5 / 0.18 ~ 166.7 km; max one-way crow
        # distance = range / (2 * factor).
        limit = constraints.usable_range_km / (2 * ROAD_DETOUR_FACTOR)
        assert constraints.qualifies(_charger(0, limit * 0.99), Point(0, 0))
        assert not constraints.qualifies(_charger(1, limit * 1.01), Point(0, 0))

    def test_plug_restriction(self):
        ac_only = _constraints(allowed_plugs=frozenset({PlugType.AC_TYPE2}))
        assert ac_only.qualifies(_charger(0, 1.0, PlugType.AC_TYPE2), Point(0, 0))
        assert not ac_only.qualifies(_charger(1, 1.0, PlugType.CCS, rate=50.0), Point(0, 0))

    def test_min_deliverable(self):
        fast_only = _constraints(min_deliverable_kw=20.0)
        # 11 kW AC charger delivers 11 kW < 20.
        assert not fast_only.qualifies(_charger(0, 1.0, rate=11.0), Point(0, 0))
        # 50 kW DC delivers min(50, vehicle 100) = 50 >= 20.
        assert fast_only.qualifies(_charger(1, 1.0, PlugType.CCS, rate=50.0), Point(0, 0))


class TestFilter:
    def test_preserves_order(self):
        pool = [_charger(i, float(i)) for i in range(5)]
        kept = filter_feasible(pool, _constraints(), Point(0, 0))
        assert [c.charger_id for c in kept] == sorted(c.charger_id for c in kept)

    def test_ranker_integration(self, small_environment, sample_trip):
        """A DC-only constraint yields tables containing only DC chargers."""
        constraints = VehicleConstraints(
            vehicle=Vehicle(0, state_of_charge=0.9),
            allowed_plugs=frozenset({PlugType.CCS, PlugType.CHADEMO}),
        )
        ranker = EcoChargeRanker(
            small_environment,
            EcoChargeConfig(k=2, radius_km=15.0),
            constraints=constraints,
        )
        segment = sample_trip.segments()[0]
        table = ranker.rank_segment(sample_trip, segment, eta_h=10.2, now_h=10.0)
        dc_exists = any(
            c.is_dc_fast for c in small_environment.registry.within_radius(
                segment.midpoint, 15.0
            )
        )
        if dc_exists:
            assert all(entry.charger.is_dc_fast for entry in table)

    def test_infeasible_everything_falls_back_to_nearest(
        self, small_environment, sample_trip
    ):
        """With zero usable range nothing qualifies; the ranker falls back
        to nearest-k rather than returning an empty offering."""
        constraints = VehicleConstraints(
            vehicle=Vehicle(0, state_of_charge=0.05), reserve_soc=0.05
        )
        ranker = EcoChargeRanker(
            small_environment,
            EcoChargeConfig(k=2, radius_km=15.0),
            constraints=constraints,
        )
        segment = sample_trip.segments()[0]
        table = ranker.rank_segment(sample_trip, segment, eta_h=10.2, now_h=10.0)
        assert len(table) == 2
