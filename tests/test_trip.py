"""Trip and segmentation tests (Step 1 of the EcoCharge pipeline)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.builders import build_grid_network
from repro.network.graph import EdgeWeight
from repro.network.path import Trip, resample_polyline
from repro.spatial.geometry import Point, polyline_length


@pytest.fixture(scope="module")
def long_trip(unit_grid):
    """Corner-to-corner trip on the 6x6 unit grid (10 km)."""
    return Trip.route(unit_grid, 0, 35, departure_time_h=9.0)


class TestTrip:
    def test_route_is_shortest(self, long_trip):
        assert long_trip.length_km == pytest.approx(10.0)

    def test_invalid_edge_rejected(self, unit_grid):
        with pytest.raises(ValueError):
            Trip(unit_grid, (0, 7))  # diagonal, no such edge

    def test_empty_trip_rejected(self, unit_grid):
        with pytest.raises(ValueError):
            Trip(unit_grid, ())

    def test_single_node_trip(self, unit_grid):
        trip = Trip(unit_grid, (4,))
        assert trip.length_km == 0.0
        assert len(trip.segments()) == 1

    def test_points_match_nodes(self, long_trip, unit_grid):
        assert long_trip.points[0] == unit_grid.node(0).point
        assert long_trip.points[-1] == unit_grid.node(35).point

    def test_travel_time(self, long_trip):
        # 10 km at 60 km/h.
        assert long_trip.travel_time_h() == pytest.approx(10.0 / 60.0)

    def test_route_by_travel_time(self, unit_grid):
        trip = Trip.route(unit_grid, 0, 35, weight=EdgeWeight.TRAVEL_TIME_H)
        assert trip.length_km == pytest.approx(10.0)  # uniform speeds: same path cost

    def test_eta_at_offset(self, long_trip):
        assert long_trip.eta_at_offset_h(0.0) == 9.0
        assert long_trip.eta_at_offset_h(20.0, average_speed_kmh=40.0) == pytest.approx(9.5)

    def test_eta_rejects_bad_speed(self, long_trip):
        with pytest.raises(ValueError):
            long_trip.eta_at_offset_h(1.0, average_speed_kmh=0.0)


class TestSegmentation:
    def test_segments_cover_whole_trip(self, long_trip):
        segments = long_trip.segments(3.0)
        assert segments[0].node_ids[0] == long_trip.source
        assert segments[-1].node_ids[-1] == long_trip.destination
        assert sum(s.length_km for s in segments) == pytest.approx(long_trip.length_km)

    def test_consecutive_segments_share_boundary(self, long_trip):
        segments = long_trip.segments(3.0)
        for a, b in zip(segments, segments[1:]):
            assert a.node_ids[-1] == b.node_ids[0]  # the split points SL

    def test_segment_lengths_near_target(self, long_trip):
        segments = long_trip.segments(3.0)
        # All but the last segment reach the target length (edges are 1 km).
        for segment in segments[:-1]:
            assert segment.length_km >= 3.0
            assert segment.length_km < 3.0 + 1.0 + 1e-9

    def test_offsets_are_cumulative(self, long_trip):
        segments = long_trip.segments(3.0)
        offset = 0.0
        for segment in segments:
            assert segment.start_offset_km == pytest.approx(offset)
            offset += segment.length_km
            assert segment.end_offset_km == pytest.approx(offset)

    def test_indexes_sequential(self, long_trip):
        segments = long_trip.segments(3.0)
        assert [s.index for s in segments] == list(range(len(segments)))

    def test_large_segment_km_yields_single_segment(self, long_trip):
        segments = long_trip.segments(1000.0)
        assert len(segments) == 1
        assert segments[0].length_km == pytest.approx(long_trip.length_km)

    def test_invalid_segment_km(self, long_trip):
        with pytest.raises(ValueError):
            long_trip.segments(0.0)

    def test_midpoint_lies_on_segment(self, long_trip):
        for segment in long_trip.segments(3.0):
            mid = segment.midpoint
            # Midpoint must be within the segment's bounding polyline.
            dmin = min(mid.distance_to(p) for p in segment.points)
            assert dmin <= segment.length_km / 2 + 1e-9

    def test_anchor_node_is_on_segment(self, long_trip):
        for segment in long_trip.segments(3.0):
            assert segment.anchor_node in segment.node_ids

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.5, max_value=20.0))
    def test_property_coverage_any_segment_length(self, segment_km):
        grid = build_grid_network(5, 5, block_km=1.3)
        trip = Trip.route(grid, 0, 24)
        segments = trip.segments(segment_km)
        assert sum(s.length_km for s in segments) == pytest.approx(trip.length_km)
        assert segments[-1].node_ids[-1] == trip.destination


class TestResamplePolyline:
    def test_endpoints_preserved(self):
        pts = [Point(0, 0), Point(4, 0), Point(4, 4)]
        out = resample_polyline(pts, 1.0)
        assert out[0] == pts[0] and out[-1] == pts[-1]

    def test_spacing_roughly_uniform(self):
        pts = [Point(0, 0), Point(10, 0)]
        out = resample_polyline(pts, 2.0)
        gaps = [a.distance_to(b) for a, b in zip(out, out[1:])]
        assert all(g == pytest.approx(2.0, abs=1e-6) for g in gaps)

    def test_degenerate_inputs(self):
        assert resample_polyline([], 1.0) == []
        assert resample_polyline([Point(1, 1)], 1.0) == [Point(1, 1)]
        assert resample_polyline([Point(1, 1), Point(1, 1)], 1.0) == [Point(1, 1)]

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            resample_polyline([Point(0, 0), Point(1, 0)], 0.0)

    def test_total_length_preserved(self):
        pts = [Point(0, 0), Point(3, 4), Point(6, 0)]
        out = resample_polyline(pts, 0.7)
        assert polyline_length(out) == pytest.approx(polyline_length(pts), rel=1e-6)
