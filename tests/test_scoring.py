"""Sustainability Score tests: weights, Eq. 4-6, top-k intersection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval
from repro.core.scoring import (
    ABLATION_CONFIGS,
    ComponentScores,
    ScScore,
    Weights,
    intersect_top_k,
    rank_by_midpoint,
    sc_exact,
    sc_score,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def component_scores(draw, charger_id=0):
    def iv():
        a, b = sorted((draw(unit), draw(unit)))
        return Interval(a, b)

    return ComponentScores(charger_id, iv(), iv(), iv())


class TestWeights:
    def test_equal(self):
        w = Weights.equal()
        assert w.sustainable == w.availability == w.derouting == pytest.approx(1 / 3)

    def test_must_sum_to_one(self):
        with pytest.raises(ValueError):
            Weights(0.5, 0.5, 0.5)

    def test_non_negative(self):
        with pytest.raises(ValueError):
            Weights(1.5, -0.5, 0.0)

    def test_ablation_configs_complete(self):
        assert set(ABLATION_CONFIGS) == {"AWE", "OSC", "OA", "ODC"}
        assert ABLATION_CONFIGS["OSC"].sustainable == 1.0
        assert ABLATION_CONFIGS["OA"].availability == 1.0
        assert ABLATION_CONFIGS["ODC"].derouting == 1.0


class TestScScore:
    def test_paper_equations(self):
        comp = ComponentScores(
            7,
            sustainable=Interval(0.2, 0.6),
            availability=Interval(0.5, 0.9),
            derouting=Interval(0.1, 0.3),
        )
        score = sc_score(comp, Weights.equal())
        # Eq. 4: lower estimates everywhere, derouting flipped.
        assert score.sc_min == pytest.approx((0.2 + 0.5 + 0.9) / 3)
        # Eq. 5: upper estimates everywhere.
        assert score.sc_max == pytest.approx((0.6 + 0.9 + 0.7) / 3)
        assert score.charger_id == 7

    def test_derouting_only_inverts(self):
        comp = ComponentScores(0, Interval.exact(0.0), Interval.exact(0.0),
                               Interval(0.2, 0.8))
        score = sc_score(comp, Weights.only_derouting())
        assert score.sc_min == pytest.approx(0.8)  # 1 - 0.2
        assert score.sc_max == pytest.approx(0.2)  # 1 - 0.8; min > max is legal

    def test_midpoint_and_pessimistic(self):
        score = ScScore(0, sc_min=0.8, sc_max=0.2)
        assert score.midpoint == pytest.approx(0.5)
        assert score.pessimistic == pytest.approx(0.2)

    def test_sc_exact(self):
        assert sc_exact(0.9, 0.6, 0.3, Weights.equal()) == pytest.approx(
            (0.9 + 0.6 + 0.7) / 3
        )

    def test_exact_components_make_scenarios_agree(self):
        comp = ComponentScores(
            0, Interval.exact(0.4), Interval.exact(0.7), Interval.exact(0.2)
        )
        score = sc_score(comp, Weights.equal())
        assert score.sc_min == pytest.approx(score.sc_max)

    @given(component_scores(), st.sampled_from(list(ABLATION_CONFIGS.values())))
    def test_scores_bounded(self, comp, weights):
        score = sc_score(comp, weights)
        assert -1e-9 <= score.sc_min <= 1.0 + 1e-9
        assert -1e-9 <= score.sc_max <= 1.0 + 1e-9

    def test_component_normalisation_enforced(self):
        with pytest.raises(ValueError):
            ComponentScores(0, Interval(0.0, 1.5), Interval.exact(0.5),
                            Interval.exact(0.5))


def _scores(*pairs):
    return [ScScore(i, lo, hi) for i, (lo, hi) in enumerate(pairs)]


class TestIntersectTopK:
    def test_agreeing_scenarios(self):
        scores = _scores((0.9, 0.95), (0.5, 0.6), (0.8, 0.85), (0.1, 0.2))
        chosen = intersect_top_k(scores, 2)
        assert [s.charger_id for s in chosen] == [0, 2]

    def test_sorted_by_sc_max_desc(self):
        scores = _scores((0.5, 0.7), (0.6, 0.9), (0.55, 0.8))
        chosen = intersect_top_k(scores, 3)
        sc_maxes = [s.sc_max for s in chosen]
        assert sc_maxes == sorted(sc_maxes, reverse=True)

    def test_disagreeing_scenarios_padded(self):
        # Charger 0 wins sc_min, charger 1 wins sc_max: intersection of the
        # top-1 sets is empty, so padding fills by midpoint.
        scores = _scores((0.9, 0.1), (0.1, 0.9))
        chosen = intersect_top_k(scores, 1, pad=True)
        assert len(chosen) == 1

    def test_disagreeing_scenarios_strict(self):
        scores = _scores((0.9, 0.1), (0.1, 0.9))
        chosen = intersect_top_k(scores, 1, pad=False)
        assert chosen == []

    def test_k_larger_than_pool(self):
        scores = _scores((0.5, 0.5), (0.6, 0.6))
        assert len(intersect_top_k(scores, 10)) == 2

    def test_k_validation(self):
        with pytest.raises(ValueError):
            intersect_top_k([], 0)

    def test_empty_input(self):
        assert intersect_top_k([], 3) == []

    def test_no_duplicates(self):
        scores = _scores(*[(0.5 + i * 0.01, 0.6 + i * 0.01) for i in range(20)])
        chosen = intersect_top_k(scores, 8)
        ids = [s.charger_id for s in chosen]
        assert len(ids) == len(set(ids)) == 8

    def test_deterministic_tiebreak(self):
        scores = _scores((0.5, 0.5), (0.5, 0.5), (0.5, 0.5))
        a = intersect_top_k(list(scores), 2)
        b = intersect_top_k(list(reversed(scores)), 2)
        assert [s.charger_id for s in a] == [s.charger_id for s in b]

    @settings(max_examples=50)
    @given(
        st.lists(st.tuples(unit, unit), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=10),
    )
    def test_property_result_size_and_membership(self, pairs, k):
        scores = _scores(*pairs)
        chosen = intersect_top_k(scores, k, pad=True)
        assert len(chosen) == min(k, len(scores))
        ids = {s.charger_id for s in scores}
        assert all(s.charger_id in ids for s in chosen)

    @settings(max_examples=50)
    @given(
        st.lists(st.tuples(unit, unit), min_size=2, max_size=30),
        st.integers(min_value=1, max_value=10),
    )
    def test_property_strict_subset_of_padded(self, pairs, k):
        scores = _scores(*pairs)
        strict = {s.charger_id for s in intersect_top_k(scores, k, pad=False)}
        padded = {s.charger_id for s in intersect_top_k(scores, k, pad=True)}
        assert strict <= padded


class TestRankByMidpoint:
    def test_orders_by_midpoint(self):
        scores = _scores((0.2, 0.4), (0.5, 0.9), (0.3, 0.3))
        ranked = rank_by_midpoint(scores, 3)
        assert [s.charger_id for s in ranked] == [1, 0, 2]

    def test_k_validation(self):
        with pytest.raises(ValueError):
            rank_by_midpoint([], 0)
