"""Uncertain-velocity moving-query tests (possible/certain kNN)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.moving import MovingQuery, knn_timeline, uncertain_knn
from repro.intervals import Interval
from repro.spatial.geometry import Point, Segment


@pytest.fixture()
def query():
    """10 km east-bound segment, speed between 30 and 50 km/h, departing
    at t = 8 h."""
    return MovingQuery(
        segment=Segment(Point(0, 0), Point(10, 0)),
        speed_kmh=Interval(30.0, 50.0),
        start_time_h=8.0,
    )


class TestMovingQuery:
    def test_offsets_grow_with_time(self, query):
        early = query.offset_interval_km(8.05)
        late = query.offset_interval_km(8.1)
        assert late.lo >= early.lo and late.hi >= early.hi

    def test_offsets_clamped_to_segment(self, query):
        offsets = query.offset_interval_km(10.0)  # 2 h: both bounds past the end
        assert offsets.lo == offsets.hi == 10.0

    def test_departure_position_exact(self, query):
        offsets = query.offset_interval_km(8.0)
        assert offsets.lo == offsets.hi == 0.0

    def test_uncertainty_region_on_segment(self, query):
        region = query.uncertainty_region(8.1)
        assert region.start.y == 0.0 and region.end.y == 0.0
        assert 0.0 <= region.start.x <= region.end.x <= 10.0
        assert region.start.x == pytest.approx(3.0)  # 30 km/h * 0.1 h
        assert region.end.x == pytest.approx(5.0)  # 50 km/h * 0.1 h

    def test_time_before_departure_rejected(self, query):
        with pytest.raises(ValueError):
            query.offset_interval_km(7.9)

    def test_zero_speed_rejected(self):
        with pytest.raises(ValueError):
            MovingQuery(Segment(Point(0, 0), Point(1, 0)), Interval(0.0, 10.0), 8.0)

    def test_arrival_interval(self, query):
        arrival = query.arrival_interval_h()
        assert arrival.lo == pytest.approx(8.0 + 10.0 / 50.0)
        assert arrival.hi == pytest.approx(8.0 + 10.0 / 30.0)

    def test_distance_interval_contains_all_realisations(self, query):
        """Any true speed inside the range yields a distance inside the
        interval."""
        site = Point(5.0, 2.0)
        t = 8.1
        interval = query.distance_interval(site, t)
        for speed in np.linspace(30.0, 50.0, 11):
            offset = min(10.0, speed * 0.1)
            position = Point(offset, 0.0)
            assert interval.lo - 1e-9 <= position.distance_to(site) <= interval.hi + 1e-9

    def test_distance_interval_min_on_perpendicular(self, query):
        # Site perpendicular to the middle of the uncertainty region at
        # t = 8.1 (region x in [3, 5]).
        site = Point(4.0, 3.0)
        interval = query.distance_interval(site, 8.1)
        assert interval.lo == pytest.approx(3.0)


class TestUncertainKnn:
    CANDIDATES = [
        (1, Point(1.0, 0.5)),
        (2, Point(5.0, 0.5)),
        (3, Point(9.0, 0.5)),
        (4, Point(5.0, 8.0)),
    ]

    def test_certain_subset_of_possible(self, query):
        result = uncertain_knn(query, self.CANDIDATES, 8.1, k=2)
        assert result.certain <= result.possible

    def test_at_departure_answer_is_crisp(self, query):
        """With zero positional uncertainty the two sets coincide with the
        ordinary kNN."""
        result = uncertain_knn(query, self.CANDIDATES, 8.0, k=2)
        ranked = sorted(
            self.CANDIDATES, key=lambda c: c[1].squared_distance_to(Point(0, 0))
        )
        want = {c[0] for c in ranked[:2]}
        assert result.certain == want
        assert result.possible == want

    def test_far_site_excluded_from_possible(self, query):
        result = uncertain_knn(query, self.CANDIDATES, 8.1, k=1)
        assert 4 not in result.possible

    def test_mid_route_ambiguity(self, query):
        """While the region spans [3, 5] km, both the behind and ahead
        sites are possible 1NN but neither is certain."""
        result = uncertain_knn(query, [(1, Point(3.0, 0.2)), (2, Point(5.2, 0.2))],
                               8.1, k=1)
        assert result.possible == {1, 2}
        assert result.certain == set()

    def test_k_covers_all_candidates(self, query):
        result = uncertain_knn(query, self.CANDIDATES, 8.1, k=10)
        all_ids = {c[0] for c in self.CANDIDATES}
        assert result.possible == all_ids
        assert result.certain == all_ids

    def test_validation(self, query):
        with pytest.raises(ValueError):
            uncertain_knn(query, self.CANDIDATES, 8.1, k=0)
        with pytest.raises(ValueError):
            uncertain_knn(query, [], 8.1, k=1)


class TestTimeline:
    def test_covers_whole_travel_window(self, query):
        timeline = knn_timeline(query, TestUncertainKnn.CANDIDATES, k=1, step_h=0.05)
        assert timeline[0].time_h == pytest.approx(8.0)
        assert timeline[-1].time_h >= query.arrival_interval_h().hi - 0.05

    def test_nn_progression_follows_route(self, query):
        """The certain 1NN progresses from the near-start site to the
        near-end site as travel completes."""
        timeline = knn_timeline(query, TestUncertainKnn.CANDIDATES, k=1, step_h=0.02)
        assert 1 in timeline[0].certain
        assert 3 in timeline[-1].certain

    def test_step_validation(self, query):
        with pytest.raises(ValueError):
            knn_timeline(query, TestUncertainKnn.CANDIDATES, k=1, step_h=0.0)

    @settings(max_examples=20, deadline=None)
    @given(
        st.floats(min_value=8.0, max_value=8.3),
        st.integers(min_value=1, max_value=4),
    )
    def test_property_certain_subset_possible(self, t, k):
        query = MovingQuery(
            Segment(Point(0, 0), Point(10, 0)), Interval(30.0, 50.0), 8.0
        )
        result = uncertain_knn(query, TestUncertainKnn.CANDIDATES, t, k)
        assert result.certain <= result.possible
        assert len(result.possible) >= min(k, len(TestUncertainKnn.CANDIDATES))
