"""Charger plug-occupancy tests (unit + fleet integration)."""

import pytest

from repro.chargers.charger import Charger, Vehicle
from repro.core.ecocharge import EcoChargeConfig
from repro.network.path import Trip
from repro.simulation.events import EventKind
from repro.simulation.fleet import FleetSimulation, SimulationConfig, VehiclePhase
from repro.simulation.occupancy import ChargerOccupancy
from repro.spatial.geometry import Point


def _charger(cid=0, plugs=1):
    return Charger(charger_id=cid, point=Point(0, 0), node_id=0, rate_kw=11.0,
                   plugs=plugs)


class TestChargerOccupancy:
    def test_plug_in_and_out(self):
        occupancy = ChargerOccupancy()
        charger = _charger(plugs=2)
        assert occupancy.try_plug_in(charger, 1)
        assert occupancy.try_plug_in(charger, 2)
        assert occupancy.occupancy(0) == 2
        assert not occupancy.has_free_plug(charger)
        occupancy.unplug(0, 1)
        assert occupancy.has_free_plug(charger)

    def test_full_site_rejects(self):
        occupancy = ChargerOccupancy()
        charger = _charger(plugs=1)
        assert occupancy.try_plug_in(charger, 1)
        assert not occupancy.try_plug_in(charger, 2)
        assert occupancy.stats.rejections == 1
        assert occupancy.stats.rejection_rate == pytest.approx(0.5)

    def test_double_plug_in_rejected(self):
        occupancy = ChargerOccupancy()
        charger = _charger(plugs=3)
        occupancy.try_plug_in(charger, 1)
        with pytest.raises(ValueError):
            occupancy.try_plug_in(charger, 1)

    def test_unplug_unknown_rejected(self):
        occupancy = ChargerOccupancy()
        with pytest.raises(ValueError):
            occupancy.unplug(0, 1)

    def test_total_occupied(self):
        occupancy = ChargerOccupancy()
        occupancy.try_plug_in(_charger(0, plugs=2), 1)
        occupancy.try_plug_in(_charger(1, plugs=2), 2)
        assert occupancy.total_occupied() == 2


class TestFleetQueueing:
    def test_contended_charger_queues_second_vehicle(self, small_environment):
        """Two low-battery vehicles on the same corridor at the same time:
        if they pick the same site and it has fewer plugs than vehicles,
        one of them must wait (or they split across sites) — either way
        the simulation stays consistent and everyone eventually arrives."""
        nodes = sorted(small_environment.network.node_ids())
        trips = [
            Trip.route(small_environment.network, nodes[0], nodes[-1], 10.0),
            Trip.route(small_environment.network, nodes[1], nodes[-2], 10.0),
            Trip.route(small_environment.network, nodes[2], nodes[-3], 10.0),
        ]
        config = SimulationConfig(ecocharge=EcoChargeConfig(k=3, radius_km=12.0))
        vehicles = [Vehicle(i, state_of_charge=0.35) for i in range(3)]
        sim = FleetSimulation(small_environment, trips, config, vehicles)
        report = sim.run()
        # Consistency: every charging start has a matching finish.
        starts = report.events.count(EventKind.CHARGING_STARTED)
        finishes = report.events.count(EventKind.CHARGING_FINISHED)
        assert starts == finishes
        # Nothing left plugged in at the end.
        assert sim.occupancy.total_occupied() == 0
        assert report.arrived == 3

    def test_queue_event_emitted_under_forced_contention(self, small_environment):
        """Force contention: both vehicles are steered to the same
        single-plug charger by a tiny radius around a shared corridor."""
        nodes = sorted(small_environment.network.node_ids())
        trip = Trip.route(small_environment.network, nodes[0], nodes[-1], 10.0)
        trips = [trip, Trip(trip.network, trip.node_ids, 10.0)]
        config = SimulationConfig(
            idle_duration_h=2.0,  # long sessions maximise overlap
            ecocharge=EcoChargeConfig(k=1, radius_km=3.0),
        )
        vehicles = [Vehicle(i, state_of_charge=0.35) for i in range(2)]
        sim = FleetSimulation(small_environment, trips, config, vehicles)
        report = sim.run()
        waits = report.events.count(EventKind.WAITING_FOR_PLUG)
        best_plugs = {
            e.detail["charger_id"]
            for e in report.events.of_kind(EventKind.CHARGING_STARTED)
        }
        # Identical trips with k=1 must pick the same charger; if it has
        # one plug, the second vehicle queued.
        if len(best_plugs) == 1:
            target = small_environment.registry.get(best_plugs.pop())
            if target.plugs == 1:
                assert waits >= 1
        # Regardless of contention outcome, the run stays consistent.
        assert sim.occupancy.total_occupied() == 0
        assert report.events.count(EventKind.CHARGING_STARTED) == report.events.count(
            EventKind.CHARGING_FINISHED
        )
