"""Time-of-use tariff tests (the smart-grid extension substrate)."""

import pytest

from repro.estimation.tariff import TariffBand, TariffEstimator, TimeOfUseTariff


class TestTimeOfUseTariff:
    TARIFF = TimeOfUseTariff()

    def test_weekday_bands(self):
        assert self.TARIFF.band_at(3.0) is TariffBand.OFF_PEAK  # Monday 03:00
        assert self.TARIFF.band_at(10.0) is TariffBand.SHOULDER
        assert self.TARIFF.band_at(18.0) is TariffBand.PEAK
        assert self.TARIFF.band_at(23.0) is TariffBand.OFF_PEAK

    def test_weekend_flattened(self):
        saturday_evening = 5 * 24 + 18.0
        assert self.TARIFF.band_at(saturday_evening) is TariffBand.SHOULDER

    def test_prices_match_bands(self):
        assert self.TARIFF.price_at(3.0) == self.TARIFF.off_peak_eur
        assert self.TARIFF.price_at(18.0) == self.TARIFF.peak_eur
        assert self.TARIFF.price_at(10.0) == self.TARIFF.shoulder_eur

    def test_weekly_wraparound(self):
        assert self.TARIFF.price_at(18.0) == self.TARIFF.price_at(7 * 24 + 18.0)

    def test_window_price_hull(self):
        # 16:00-18:00 spans shoulder into peak.
        envelope = self.TARIFF.window_price(16.0, 18.0)
        assert envelope.lo == self.TARIFF.shoulder_eur
        assert envelope.hi == self.TARIFF.peak_eur

    def test_window_validation(self):
        with pytest.raises(ValueError):
            self.TARIFF.window_price(10.0, 9.0)

    def test_price_ordering_enforced(self):
        with pytest.raises(ValueError):
            TimeOfUseTariff(off_peak_eur=0.5, shoulder_eur=0.3, peak_eur=0.4)


class TestTariffEstimator:
    def test_normalised_unit_range(self):
        estimator = TariffEstimator()
        for eta in (3.0, 10.0, 18.0, 23.0):
            interval = estimator.estimate(eta, now_h=2.0)
            assert 0.0 <= interval.lo <= interval.hi <= 1.0

    def test_peak_costs_more_than_off_peak(self):
        estimator = TariffEstimator()
        peak = estimator.estimate(18.0, now_h=17.5)
        off = estimator.estimate(3.0, now_h=2.5)
        assert peak.midpoint > off.midpoint

    def test_horizon_widens(self):
        estimator = TariffEstimator()
        near = estimator.estimate(18.0, now_h=17.0)
        far = estimator.estimate(18.0 + 96.0, now_h=17.0)
        assert far.width >= near.width

    def test_zero_horizon_tight(self):
        estimator = TariffEstimator()
        interval = estimator.estimate(10.0, now_h=10.0)
        # Shoulder only within the 1-hour window on a weekday morning.
        assert interval.is_exact

    def test_window_validation(self):
        with pytest.raises(ValueError):
            TariffEstimator().estimate(10.0, 9.0, window_h=0.0)
