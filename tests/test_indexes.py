"""Spatial index tests: quadtree, grid, and k-d tree against brute force.

The central invariant: every index answers kNN / radius / range queries
exactly like the exhaustive reference on the same data.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import Point
from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDTree
from repro.spatial.knn import brute_force_knn, brute_force_radius
from repro.spatial.quadtree import QuadTree, QuadTreeStats

BOUNDS = BoundingBox(0.0, 0.0, 100.0, 100.0)


def _random_entries(n: int, seed: int) -> list[tuple[Point, int]]:
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, 100.0, size=n)
    ys = rng.uniform(0.0, 100.0, size=n)
    return [(Point(float(x), float(y)), i) for i, (x, y) in enumerate(zip(xs, ys))]


def _build_quadtree(entries):
    tree: QuadTree[int] = QuadTree(BOUNDS, capacity=4)
    for point, item in entries:
        tree.insert(point, item)
    return tree


def _build_grid(entries):
    grid: GridIndex[int] = GridIndex(BOUNDS, cell_size_km=7.0)
    for point, item in entries:
        grid.insert(point, item)
    return grid


INDEX_BUILDERS = {
    "quadtree": _build_quadtree,
    "grid": _build_grid,
    "kdtree": lambda entries: KDTree(entries),
}


@pytest.fixture(scope="module")
def entries():
    return _random_entries(300, seed=1)


@pytest.mark.parametrize("kind", sorted(INDEX_BUILDERS))
class TestAgainstBruteForce:
    def test_knn_matches_reference(self, entries, kind):
        index = INDEX_BUILDERS[kind](entries)
        rng = np.random.default_rng(2)
        for __ in range(25):
            q = Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            k = int(rng.integers(1, 12))
            got = index.nearest(q, k)
            want = brute_force_knn(entries, q, k)
            assert [item for __, __, item in got] == [item for __, __, item in want]

    def test_knn_distances_sorted(self, entries, kind):
        index = INDEX_BUILDERS[kind](entries)
        result = index.nearest(Point(50, 50), 10)
        distances = [d for d, __, __ in result]
        assert distances == sorted(distances)

    def test_radius_matches_reference(self, entries, kind):
        index = INDEX_BUILDERS[kind](entries)
        rng = np.random.default_rng(3)
        for __ in range(25):
            q = Point(float(rng.uniform(0, 100)), float(rng.uniform(0, 100)))
            r = float(rng.uniform(0.5, 30.0))
            got = {item for __, item in index.query_radius(q, r)}
            want = {item for __, item in brute_force_radius(entries, q, r)}
            assert got == want

    def test_range_query(self, entries, kind):
        index = INDEX_BUILDERS[kind](entries)
        box = BoundingBox(20.0, 20.0, 60.0, 45.0)
        got = {item for __, item in index.query_range(box)}
        want = {item for point, item in entries if box.contains(point)}
        assert got == want

    def test_knn_k_larger_than_size(self, kind):
        small = _random_entries(5, seed=9)
        index = INDEX_BUILDERS[kind](small)
        assert len(index.nearest(Point(0, 0), 50)) == 5

    def test_zero_radius_hits_only_colocated(self, entries, kind):
        index = INDEX_BUILDERS[kind](entries)
        point = entries[0][0]
        hits = index.query_radius(point, 0.0)
        assert (point, entries[0][1]) in hits


class TestQuadTreeSpecifics:
    def test_len_and_iter(self, entries):
        tree = _build_quadtree(entries)
        assert len(tree) == len(entries)
        assert sorted(item for __, item in tree) == sorted(i for __, i in entries)

    def test_insert_out_of_bounds_raises(self):
        tree: QuadTree[int] = QuadTree(BOUNDS)
        with pytest.raises(ValueError):
            tree.insert(Point(101, 0), 0)

    def test_remove_existing(self, entries):
        tree = _build_quadtree(entries)
        point, item = entries[10]
        assert tree.remove(point, item)
        assert len(tree) == len(entries) - 1
        assert item not in {i for __, i in tree.query_radius(point, 0.01)}

    def test_remove_missing_returns_false(self):
        tree: QuadTree[int] = QuadTree(BOUNDS)
        tree.insert(Point(1, 1), 0)
        assert not tree.remove(Point(2, 2), 99)

    def test_colocated_points_respect_max_depth(self):
        tree: QuadTree[int] = QuadTree(BOUNDS, capacity=2, max_depth=5)
        for i in range(50):
            tree.insert(Point(10.0, 10.0), i)
        assert len(tree) == 50
        assert tree.depth() <= 5
        assert len(tree.query_radius(Point(10, 10), 0.1)) == 50

    def test_split_creates_children(self):
        tree: QuadTree[int] = QuadTree(BOUNDS, capacity=2)
        pts = [Point(10, 10), Point(90, 90), Point(10, 90), Point(90, 10)]
        for i, p in enumerate(pts):
            tree.insert(p, i)
        assert tree.node_count() > 1

    def test_stats(self, entries):
        tree = _build_quadtree(entries)
        stats = QuadTreeStats.of(tree)
        assert stats.size == len(entries)
        assert stats.nodes == tree.node_count()
        assert stats.capacity == 4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QuadTree(BOUNDS, capacity=0)
        with pytest.raises(ValueError):
            QuadTree(BOUNDS, max_depth=0)
        tree: QuadTree[int] = QuadTree(BOUNDS)
        with pytest.raises(ValueError):
            tree.nearest(Point(0, 0), k=0)
        with pytest.raises(ValueError):
            tree.query_radius(Point(0, 0), -1.0)


class TestGridSpecifics:
    def test_cell_size_validation(self):
        with pytest.raises(ValueError):
            GridIndex(BOUNDS, 0.0)

    def test_occupied_cells(self, entries):
        grid = _build_grid(entries)
        assert 0 < grid.occupied_cells() <= grid.cols * grid.rows

    def test_nearest_on_empty_grid(self):
        grid: GridIndex[int] = GridIndex(BOUNDS, 5.0)
        assert grid.nearest(Point(50, 50), 3) == []

    def test_remove(self):
        grid: GridIndex[int] = GridIndex(BOUNDS, 5.0)
        grid.insert(Point(1, 1), 7)
        assert grid.remove(Point(1, 1), 7)
        assert not grid.remove(Point(1, 1), 7)
        assert len(grid) == 0

    def test_boundary_point_insertable(self):
        grid: GridIndex[int] = GridIndex(BOUNDS, 7.0)
        grid.insert(Point(100.0, 100.0), 1)  # exactly on the max corner
        assert len(grid.query_radius(Point(100, 100), 0.1)) == 1


class TestKDTreeSpecifics:
    def test_empty_tree(self):
        tree: KDTree[int] = KDTree([])
        assert len(tree) == 0
        assert tree.nearest(Point(0, 0), 3) == []
        assert tree.query_radius(Point(0, 0), 10.0) == []

    def test_single_entry(self):
        tree = KDTree([(Point(5, 5), "only")])
        assert tree.nearest(Point(0, 0), 1)[0][2] == "only"

    def test_duplicate_points(self):
        tree = KDTree([(Point(1, 1), i) for i in range(4)])
        assert len(tree.nearest(Point(1, 1), 4)) == 4


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            st.floats(min_value=0, max_value=100, allow_nan=False),
        ),
        min_size=1,
        max_size=60,
    ),
    st.integers(min_value=1, max_value=8),
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    ),
)
def test_property_all_indexes_agree(raw_points, k, raw_query):
    """For arbitrary point sets, all three indexes return the same kNN
    distances as brute force (items may differ under exact distance ties,
    so the invariant is on the distance multiset)."""
    entries = [(Point(x, y), i) for i, (x, y) in enumerate(raw_points)]
    query = Point(*raw_query)
    want = [round(d, 9) for d, __, __ in brute_force_knn(entries, query, k)]
    for build in INDEX_BUILDERS.values():
        got = [round(d, 9) for d, __, __ in build(entries).nearest(query, k)]
        assert got == want
