"""Estimated Component tests: confidence model, weather, L, A, traffic, D, ETA.

The cross-cutting invariants: every EC is an interval containing its
ground truth, interval width grows with forecast horizon, and horizon
zero collapses to the exact value.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chargers.plugshare import CatalogSpec, generate_catalog
from repro.estimation.availability import (
    HOURS_PER_WEEK,
    AvailabilityEstimator,
    BusyTimetable,
)
from repro.estimation.component import DEFAULT_CONFIDENCE, ForecastConfidence
from repro.estimation.derouting import DeroutingEstimator
from repro.estimation.eta import EtaEstimator
from repro.estimation.sustainable import SustainableChargingEstimator
from repro.estimation.traffic import TrafficModel, TrafficParams
from repro.estimation.weather import ATTENUATION, SkyState, WeatherModel
from repro.network.path import Trip


class TestForecastConfidence:
    def test_near_horizon_accuracy(self):
        assert DEFAULT_CONFIDENCE.accuracy(1.0) == pytest.approx(0.955)
        assert DEFAULT_CONFIDENCE.accuracy(12.0) == pytest.approx(0.955)

    def test_three_day_accuracy(self):
        assert DEFAULT_CONFIDENCE.accuracy(72.0) == pytest.approx(0.90)

    def test_monotonically_non_increasing(self):
        horizons = [0, 6, 12, 24, 48, 72, 120, 240, 400]
        accs = [DEFAULT_CONFIDENCE.accuracy(h) for h in horizons]
        assert all(a >= b for a, b in zip(accs, accs[1:]))

    def test_floor_respected(self):
        assert DEFAULT_CONFIDENCE.accuracy(10_000.0) == pytest.approx(0.75)

    def test_interval_clamped(self):
        iv = DEFAULT_CONFIDENCE.interval_around(0.99, horizon_h=48.0)
        assert iv.hi <= 1.0 and iv.lo >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ForecastConfidence(near_accuracy=0.8, far_accuracy=0.9, floor_accuracy=0.7)
        with pytest.raises(ValueError):
            ForecastConfidence(near_accuracy=1.2)

    @given(st.floats(min_value=0.0, max_value=500.0))
    def test_half_width_in_unit_range(self, horizon):
        hw = DEFAULT_CONFIDENCE.half_width(horizon)
        assert 0.0 <= hw <= 0.25  # floor accuracy 0.75


class TestWeatherModel:
    def test_deterministic_given_seed(self):
        a = WeatherModel(seed=3)
        b = WeatherModel(seed=3)
        assert [a.state_at(h) for h in range(48)] == [b.state_at(h) for h in range(48)]

    def test_seeds_differ(self):
        a = WeatherModel(seed=3)
        b = WeatherModel(seed=4)
        assert [a.state_at(h) for h in range(72)] != [b.state_at(h) for h in range(72)]

    def test_random_access_matches_sequential(self):
        sequential = WeatherModel(seed=5)
        seq = [sequential.state_at(h) for h in range(96)]
        random_access = WeatherModel(seed=5)
        assert random_access.state_at(77.0) == seq[77]
        assert random_access.state_at(5.0) == seq[5]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            WeatherModel().state_at(-1.0)

    def test_attenuation_matches_state(self):
        model = WeatherModel(seed=1)
        for h in range(24):
            assert model.attenuation_at(h) == ATTENUATION[model.state_at(h)]

    def test_forecast_contains_truth(self):
        model = WeatherModel(seed=2)
        now = 8.0
        for target in (9.0, 14.0, 30.0, 60.0):
            forecast = model.forecast(target, now)
            assert model.attenuation_at(target) in forecast.attenuation

    def test_zero_horizon_is_exact(self):
        model = WeatherModel(seed=2)
        forecast = model.forecast(8.0, 8.0)
        assert forecast.attenuation.is_exact

    def test_width_grows_with_horizon(self):
        model = WeatherModel(seed=2)
        near = model.forecast(9.0, 8.0).attenuation
        far = model.forecast(56.0, 8.0).attenuation
        assert far.width >= near.width

    def test_window_attenuation_hulls_hours(self):
        model = WeatherModel(seed=6)
        window = model.window_attenuation(10.0, 14.0, now_h=8.0)
        for h in (10.5, 11.5, 12.5, 13.5):
            f = model.forecast(h, 8.0).attenuation
            assert window.lo <= f.lo and window.hi >= f.hi

    def test_window_rejects_reversed(self):
        with pytest.raises(ValueError):
            WeatherModel().window_attenuation(14.0, 10.0, 8.0)


class TestBusyTimetable:
    def test_length_enforced(self):
        with pytest.raises(ValueError):
            BusyTimetable(busyness=(0.5,) * 10)

    def test_range_enforced(self):
        with pytest.raises(ValueError):
            BusyTimetable(busyness=(1.5,) + (0.0,) * (HOURS_PER_WEEK - 1))

    def test_generate_deterministic(self):
        assert BusyTimetable.generate(9) == BusyTimetable.generate(9)

    def test_weekly_wraparound(self):
        table = BusyTimetable.generate(1)
        assert table.busy_at(3.0) == table.busy_at(3.0 + HOURS_PER_WEEK)

    def test_peaks_exceed_night(self):
        table = BusyTimetable.generate(2)
        # Tuesday 18:00 (hour 42) should beat Tuesday 03:00 (hour 27).
        assert table.busy_at(24 + 18.0) > table.busy_at(24 + 3.0)


class TestAvailabilityEstimator:
    @pytest.fixture(scope="class")
    def estimator(self, small_registry):
        return AvailabilityEstimator(small_registry, seed=3)

    def test_truth_in_unit_range(self, estimator, small_registry):
        for charger in small_registry:
            for t in (3.0, 8.0, 13.0, 18.0):
                assert 0.0 <= estimator.true_availability(charger, t) <= 1.0

    def test_more_plugs_more_available(self, estimator, small_registry):
        from dataclasses import replace

        charger = small_registry.all()[0]
        single = replace(charger, plugs=1)
        triple = replace(charger, plugs=3)
        t = 18.0  # evening peak
        assert estimator.true_availability(triple, t) >= estimator.true_availability(
            single, t
        )

    def test_estimate_contains_truth(self, estimator, small_registry):
        charger = small_registry.all()[0]
        truth = estimator.true_availability(charger, 14.0)
        interval = estimator.estimate(charger, eta_h=14.0, now_h=10.0)
        assert truth in interval

    def test_zero_horizon_exact(self, estimator, small_registry):
        charger = small_registry.all()[0]
        assert estimator.estimate(charger, 10.0, 10.0).is_exact

    def test_sites_differ(self, estimator, small_registry):
        chargers = small_registry.all()[:10]
        values = {round(estimator.true_availability(c, 13.0), 6) for c in chargers}
        assert len(values) > 1


class TestSustainableEstimator:
    @pytest.fixture(scope="class")
    def estimator(self, small_registry):
        return SustainableChargingEstimator(small_registry, WeatherModel(seed=1))

    def test_normalised_in_unit_range(self, estimator, small_registry):
        for charger in small_registry.all()[:20]:
            level = estimator.estimate(charger, eta_h=13.0, now_h=10.0)
            assert 0.0 <= level.normalised.lo <= level.normalised.hi <= 1.0

    def test_power_capped_by_rate(self, estimator, small_registry):
        for charger in small_registry.all()[:20]:
            level = estimator.estimate(charger, eta_h=13.0, now_h=10.0)
            assert level.power_kw.hi <= charger.rate_kw + 1e-9

    def test_night_is_zero(self, estimator, small_registry):
        charger = small_registry.all()[0]
        level = estimator.estimate(charger, eta_h=26.0, now_h=25.0)  # 2 am next day
        assert level.power_kw.hi == 0.0

    def test_truth_within_forecast_power(self, estimator, small_registry):
        for charger in small_registry.all()[:10]:
            interval = estimator.power_interval_kw(charger, eta_h=13.0, now_h=11.0)
            truth = estimator.true_power_kw(charger, 13.0)
            # Truth at window start must lie within the window's envelope.
            assert interval.lo - 1e-9 <= truth <= interval.hi + 1e-9

    def test_rejects_empty_window(self, estimator, small_registry):
        with pytest.raises(ValueError):
            estimator.power_interval_kw(small_registry.all()[0], 13.0, 11.0, window_h=0.0)

    def test_midday_beats_morning(self, estimator, small_registry):
        charger = max(small_registry.all(), key=lambda c: c.solar_capacity_kw)
        morning = estimator.true_power_kw(charger, 7.0)
        noon = estimator.true_power_kw(charger, 13.0)
        assert noon >= morning


class TestTrafficModel:
    def test_multiplier_at_least_one(self):
        model = TrafficModel(seed=1)
        from repro.network.graph import RoadEdge

        edge = RoadEdge(0, 1, 1.0, 50.0)
        for t in (3.0, 8.0, 13.0, 17.5, 23.0):
            assert model.multiplier(edge, t) >= 1.0

    def test_rush_hour_peaks(self):
        model = TrafficModel(seed=1)
        from repro.network.graph import RoadEdge

        edge = RoadEdge(0, 1, 1.0, 50.0)
        assert model.multiplier(edge, 8.0) > model.multiplier(edge, 3.0)
        assert model.multiplier(edge, 17.5) > model.multiplier(edge, 13.0)

    def test_weekend_lighter(self):
        model = TrafficModel(seed=1)
        from repro.network.graph import RoadEdge

        edge = RoadEdge(0, 1, 1.0, 50.0)
        weekday_rush = model.multiplier(edge, 8.0)  # day 0 = Monday
        weekend_rush = model.multiplier(edge, 5 * 24 + 8.0)  # Saturday
        assert weekend_rush < weekday_rush

    def test_interval_contains_truth(self):
        model = TrafficModel(seed=2)
        from repro.network.graph import RoadEdge

        edge = RoadEdge(0, 1, 1.0, 50.0)
        interval = model.multiplier_interval(edge, time_h=17.0, now_h=9.0)
        assert model.multiplier(edge, 17.0) in interval
        assert interval.lo >= 1.0

    def test_bounds_order(self, unit_grid):
        model = TrafficModel(seed=3)
        low, high = model.travel_time_bounds(time_h=17.0, now_h=9.0)
        for edge in unit_grid.edges():
            assert low(edge) <= high(edge)
            assert low(edge) > 0

    def test_energy_fn_congestion_penalty(self, unit_grid):
        model = TrafficModel(seed=3)
        edge = next(unit_grid.edges())
        quiet = model.energy_fn(3.0)(edge)
        rush = model.energy_fn(8.0)(edge)
        assert rush >= quiet

    def test_params_validation(self):
        with pytest.raises(ValueError):
            TrafficParams(peak_width_h=0.0)
        with pytest.raises(ValueError):
            TrafficParams(weekend_scale=2.0)


class TestDeroutingEstimator:
    @pytest.fixture(scope="class")
    def setup(self, small_environment, sample_trip):
        segments = sample_trip.segments()
        return small_environment, sample_trip, segments

    def test_batch_interval_contains_truth(self, setup):
        env, trip, segments = setup
        seg, nxt = segments[0], segments[1] if len(segments) > 1 else None
        pool = env.registry.all()[:15]
        batch = env.derouting.batch_estimate(seg, pool, time_h=10.5, now_h=10.0,
                                             next_segment=nxt)
        for charger in pool:
            truth = env.derouting.true_cost_h(seg, charger, 10.5, nxt)
            cost = batch[charger.charger_id]
            assert cost.hours.lo - 1e-6 <= truth <= cost.hours.hi + 1e-6

    def test_normalised_unit_range(self, setup):
        env, trip, segments = setup
        batch = env.derouting.batch_estimate(
            segments[0], env.registry.all(), time_h=10.5, now_h=10.0
        )
        for cost in batch.values():
            assert 0.0 <= cost.normalised.lo <= cost.normalised.hi <= 1.0

    def test_on_route_charger_cheapest(self, setup):
        """A charger at the segment anchor has near-zero derouting."""
        env, trip, segments = setup
        seg = segments[0]
        anchored = [c for c in env.registry.all() if c.node_id == seg.anchor_node]
        batch = env.derouting.batch_estimate(
            seg, env.registry.all(), time_h=10.5, now_h=10.0
        )
        if anchored:
            cheapest = min(batch.values(), key=lambda c: c.hours.lo)
            assert batch[anchored[0].charger_id].hours.lo <= cheapest.hours.lo * 1.5 + 0.05

    def test_empty_pool(self, setup):
        env, trip, segments = setup
        assert env.derouting.batch_estimate(segments[0], [], 10.5, 10.0) == {}

    def test_unreachable_saturates(self, small_environment, sample_trip):
        env = small_environment
        seg = sample_trip.segments()[0]
        batch = env.derouting.batch_estimate(
            seg, env.registry.all()[:5], time_h=10.5, now_h=10.0,
            search_budget_h=1e-9,  # nothing reachable
        )
        for cost in batch.values():
            assert cost.normalised.hi == 1.0

    def test_validation(self, small_environment):
        with pytest.raises(ValueError):
            DeroutingEstimator(small_environment.network, small_environment.traffic,
                               max_derouting_h=0.0)


class TestEtaEstimator:
    def test_etas_monotone(self, small_environment, sample_trip):
        etas = small_environment.eta.segment_etas(sample_trip)
        expected = [e.expected_h for e in etas]
        assert expected == sorted(expected)
        assert expected[0] == sample_trip.departure_time_h

    def test_interval_brackets_expected(self, small_environment, sample_trip):
        for eta in small_environment.eta.segment_etas(sample_trip):
            assert eta.interval.lo <= eta.expected_h + 1e-6
            # Pessimistic bound must not be below the optimistic one.
            assert eta.interval.lo <= eta.interval.hi

    def test_eta_at_segment(self, small_environment, sample_trip):
        segment = sample_trip.segments()[1]
        eta = small_environment.eta.eta_at_segment(sample_trip, segment)
        assert eta.segment_index == 1

    def test_eta_unknown_segment_raises(self, small_environment, sample_trip, unit_grid):
        other = Trip.route(unit_grid, 0, 35).segments()[0]
        from dataclasses import replace

        bogus = replace(other, index=999)
        with pytest.raises(ValueError):
            small_environment.eta.eta_at_segment(sample_trip, bogus)

    def test_traffic_slows_travel(self, small_environment, sample_trip):
        under_traffic = small_environment.eta.point_to_point_h(sample_trip)
        free_flow = sample_trip.travel_time_h()
        assert under_traffic >= free_flow
