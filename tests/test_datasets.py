"""Evaluation workload profile tests (Oldenburg/California/T-drive/Geolife)."""

import pytest

from repro.trajectories.datasets import (
    DATASET_ORDER,
    PROFILES,
    load_workload,
)


class TestProfiles:
    def test_all_four_present(self):
        assert set(DATASET_ORDER) == set(PROFILES)
        assert DATASET_ORDER == ("oldenburg", "california", "tdrive", "geolife")

    def test_sizes_increase_with_order(self):
        """The paper's runtime ordering relies on the datasets growing."""
        counts = [PROFILES[name].catalog.charger_count for name in DATASET_ORDER]
        assert counts == sorted(counts)
        objects = [PROFILES[name].generator.object_count for name in DATASET_ORDER]
        assert objects == sorted(objects)

    def test_gps_datasets_flagged(self):
        assert PROFILES["oldenburg"].gps_noise is None
        assert PROFILES["california"].gps_noise is None
        assert PROFILES["tdrive"].gps_noise is not None
        assert PROFILES["geolife"].gps_noise is not None


class TestLoadWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        return load_workload("oldenburg", scale=0.25)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_workload("beijing")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_workload("oldenburg", scale=0.0)

    def test_summary_fields(self, workload):
        summary = workload.summary()
        assert summary["name"] == "oldenburg"
        assert summary["nodes"] > 0 and summary["chargers"] > 0

    def test_scale_reduces_counts(self, workload):
        assert len(workload.registry) == 100  # 400 * 0.25

    def test_scale_preserves_network(self, workload):
        full = PROFILES["oldenburg"]
        assert workload.profile.network == full.network

    def test_trips_are_routable(self, workload):
        for trip in workload.trips:
            assert trip.length_km > 0
            for a, b in zip(trip.node_ids, trip.node_ids[1:]):
                assert workload.network.has_edge(a, b)

    def test_deterministic(self):
        a = load_workload("oldenburg", scale=0.1)
        b = load_workload("oldenburg", scale=0.1)
        assert [t.node_ids for t in a.trips] == [t.node_ids for t in b.trips]

    def test_gps_dataset_pipeline_produces_trips(self):
        workload = load_workload("tdrive", scale=0.05)
        assert len(workload.trips) >= 1
        # GPS-degraded trajectories must have been map-matched.
        for trajectory in workload.trajectories:
            if len(trajectory.node_path) >= 2:
                for a, b in zip(trajectory.node_path, trajectory.node_path[1:]):
                    assert workload.network.has_edge(a, b)
