"""The overload-safe serving tier: admission, queues, brownout, scheduler.

Three layers of evidence, all on deterministic clocks:

* hypothesis property/stateful tests of the admission arithmetic
  (token-bucket refill, deadline countdown) under ``SimulatedClock``;
* unit tests of the bounded queue's shed-exactly-one invariant and the
  brownout ladder's interval-soundness;
* a seeded 4x burst-overload chaos run asserting the tier's global
  contract: queues never exceed capacity, deadline-expired work is
  never served as fresh, every served Offering Table stays
  interval-sound (brownout widens, never lies), and the accounting
  reconciles exactly against the metrics registry.
"""

from __future__ import annotations

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.ecocharge import EcoChargeConfig
from repro.core.environment import ChargingEnvironment
from repro.observability.clock import SYSTEM_CLOCK, SimulatedClock
from repro.observability.deadline import NEVER_EXPIRES, Deadline, DeadlineExpired
from repro.observability.recorder import Telemetry
from repro.resilience import FaultInjector, OverloadChaos
from repro.server.cache import ResponseCache
from repro.server.scheduling import (
    AdmissionController,
    BoundedShardQueue,
    BrownoutController,
    BrownoutLevel,
    ConcurrencyLimiter,
    Outcome,
    Priority,
    RankRequest,
    SchedulerConfig,
    ShardedScheduler,
    TokenBucket,
    widen_table,
)
from repro.simulation.load import LoadProfile, percentile, run_load, run_load_threaded


def _clock() -> SimulatedClock:
    return SimulatedClock(start_s=0.0, tick_s=0.0)


def _request(
    clock,
    request_id: int = 1,
    priority: Priority = Priority.INTERACTIVE,
    budget_s: float = 60.0,
) -> RankRequest:
    """A queue-level request; the queue never dereferences the trip."""
    return RankRequest(
        request_id=request_id,
        tenant="t",
        trip=None,
        deadline=Deadline(clock, budget_s),
        priority=priority,
        submitted_s=clock.monotonic(),
    )


# ---------------------------------------------------------------------------
# token bucket — hypothesis properties + stateful machine
# ---------------------------------------------------------------------------


class TestTokenBucket:
    @given(
        rate=st.floats(0.1, 50.0),
        burst=st.floats(1.0, 20.0),
        gaps=st.lists(st.floats(0.0, 5.0), max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_burst_and_conserves_tokens(self, rate, burst, gaps):
        clock = _clock()
        bucket = TokenBucket(rate, burst, clock)
        granted = 0
        elapsed = 0.0
        for gap in gaps:
            clock.advance(gap)
            elapsed += gap
            assert bucket.available <= burst + 1e-9
            if bucket.try_acquire():
                granted += 1
        # Conservation: nothing granted beyond the initial burst plus
        # what the refill arithmetic could have accrued.
        assert granted <= burst + elapsed * rate + 1e-6

    @given(
        rate=st.floats(0.1, 50.0),
        burst=st.floats(1.0, 20.0),
        idle_s=st.floats(0.0, 100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_refill_is_proportional_to_elapsed_time(self, rate, burst, idle_s):
        clock = _clock()
        bucket = TokenBucket(rate, burst, clock)
        while bucket.try_acquire():
            pass
        leftover = bucket.available
        assert leftover < 1.0 + 1e-9
        clock.advance(idle_s)
        expected = min(burst, leftover + idle_s * rate)
        assert bucket.available == pytest.approx(expected, abs=1e-9)

    def test_starts_full_and_rejects_when_empty(self):
        clock = _clock()
        bucket = TokenBucket(rate_per_s=2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
        clock.advance(0.5)  # one token back at 2/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_validates_arguments(self):
        clock = _clock()
        with pytest.raises(ValueError):
            TokenBucket(0.0, 4.0, clock)
        with pytest.raises(ValueError):
            TokenBucket(1.0, 0.5, clock)
        with pytest.raises(ValueError):
            TokenBucket(1.0, 4.0, clock).try_acquire(0.0)


class TokenBucketMachine(RuleBasedStateMachine):
    """Random advance/acquire interleavings against the analytic bound."""

    RATE = 4.0
    BURST = 8.0

    def __init__(self):
        super().__init__()
        self.clock = _clock()
        self.bucket = TokenBucket(self.RATE, self.BURST, self.clock)
        self.granted = 0
        self.elapsed = 0.0

    @rule(gap=st.floats(0.0, 2.0))
    def advance(self, gap):
        self.clock.advance(gap)
        self.elapsed += gap

    @rule()
    def acquire(self):
        if self.bucket.try_acquire():
            self.granted += 1

    @invariant()
    def conservation(self):
        assert self.bucket.available <= self.BURST + 1e-9
        assert self.granted <= self.BURST + self.elapsed * self.RATE + 1e-6


TestTokenBucketMachine = TokenBucketMachine.TestCase
TestTokenBucketMachine.settings = settings(max_examples=25, deadline=None)


# ---------------------------------------------------------------------------
# deadline arithmetic
# ---------------------------------------------------------------------------


class TestDeadline:
    @given(
        budget_s=st.floats(0.001, 100.0),
        steps=st.lists(st.floats(0.0, 10.0), max_size=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_countdown_matches_advanced_time(self, budget_s, steps):
        clock = _clock()
        deadline = Deadline(clock, budget_s)
        spent = 0.0
        for step in steps:
            clock.advance(step)
            spent += step
            remaining = deadline.remaining_s()
            assert remaining == pytest.approx(budget_s - spent, abs=1e-9)
            assert deadline.expired == (remaining < 0.0)
            if deadline.expired:
                with pytest.raises(DeadlineExpired) as err:
                    deadline.checkpoint("test")
                assert err.value.where == "test"
                assert err.value.overrun_s == pytest.approx(-remaining, abs=1e-9)
            else:
                deadline.checkpoint("test")  # must not raise

    def test_infinite_budget_never_expires(self):
        clock = _clock()
        deadline = Deadline(clock, math.inf)
        clock.advance(1e9)
        assert deadline.remaining_s() == math.inf
        assert not deadline.expired
        deadline.checkpoint("forever")

    def test_never_expires_token_is_inert(self):
        NEVER_EXPIRES.checkpoint("anywhere")

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            Deadline(_clock(), 0.0)


# ---------------------------------------------------------------------------
# bounded queue — shed exactly one, never exceed capacity
# ---------------------------------------------------------------------------


class TestBoundedShardQueue:
    def test_depth_never_exceeds_capacity(self):
        clock = _clock()
        queue = BoundedShardQueue(capacity=3)
        shed = 0
        for i in range(10):
            if queue.offer(_request(clock, i, Priority.INTERACTIVE)) is not None:
                shed += 1
            assert len(queue) <= 3
        assert queue.peak_depth == 3
        assert shed == 7  # exactly one request leaves per overflowing offer

    def test_displaces_the_lowest_priority_latest_arrival(self):
        clock = _clock()
        queue = BoundedShardQueue(capacity=3)
        early_bg = _request(clock, 1, Priority.BACKGROUND)
        late_bg = _request(clock, 2, Priority.BACKGROUND)
        refresh = _request(clock, 3, Priority.REFRESH)
        for request in (early_bg, late_bg, refresh):
            assert queue.offer(request) is None
        newcomer = _request(clock, 4, Priority.INTERACTIVE)
        assert queue.offer(newcomer) is late_bg
        assert len(queue) == 3

    def test_refuses_newcomer_when_everything_outranks_it(self):
        clock = _clock()
        queue = BoundedShardQueue(capacity=2)
        queue.offer(_request(clock, 1, Priority.INTERACTIVE))
        queue.offer(_request(clock, 2, Priority.INTERACTIVE))
        loser = _request(clock, 3, Priority.BACKGROUND)
        assert queue.offer(loser) is loser
        # Equal priority: the resident incumbents win too (FIFO fairness).
        tie = _request(clock, 4, Priority.INTERACTIVE)
        assert queue.offer(tie) is tie

    def test_pop_orders_by_priority_then_deadline_then_fifo(self):
        clock = _clock()
        queue = BoundedShardQueue(capacity=8)
        relaxed = _request(clock, 1, Priority.INTERACTIVE, budget_s=60.0)
        urgent = _request(clock, 2, Priority.INTERACTIVE, budget_s=5.0)
        refresh_a = _request(clock, 3, Priority.REFRESH, budget_s=30.0)
        refresh_b = _request(clock, 4, Priority.REFRESH, budget_s=30.0)
        background = _request(clock, 5, Priority.BACKGROUND)
        for request in (relaxed, urgent, refresh_a, refresh_b, background):
            queue.offer(request)
        order = [queue.pop().request_id for _ in range(5)]
        assert order == [2, 1, 3, 4, 5]
        assert queue.pop() is None

    def test_poll_requires_a_positive_timeout(self):
        queue = BoundedShardQueue(capacity=1)
        with pytest.raises(ValueError):
            queue.poll(0.0)
        assert queue.poll(0.01) is None  # brief real wait, then gives up

    def test_drain_empties_best_first(self):
        clock = _clock()
        queue = BoundedShardQueue(capacity=4)
        queue.offer(_request(clock, 1, Priority.BACKGROUND))
        queue.offer(_request(clock, 2, Priority.INTERACTIVE))
        drained = queue.drain()
        assert [r.request_id for r in drained] == [2, 1]
        assert len(queue) == 0

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            BoundedShardQueue(0)


# ---------------------------------------------------------------------------
# admission controller
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_rate_is_checked_before_capacity(self):
        clock = _clock()
        admission = AdmissionController(
            clock, rate_per_s=1.0, burst=1.0, max_inflight=1
        )
        assert admission.try_admit("a") is None
        # a's bucket is empty: rejected on its own budget even though the
        # shared capacity is also exhausted.
        assert admission.try_admit("a") == "rate"
        # b still has tokens, so it reaches — and hits — the global cap.
        assert admission.try_admit("b") == "capacity"
        # A capacity rejection refunds b's token: the global overload must
        # not also drain the well-behaved tenant's rate budget.
        assert admission.bucket_for("b").available == pytest.approx(1.0)
        admission.release()
        assert admission.try_admit("b") is None
        admission.release()
        clock.advance(1.0)
        assert admission.try_admit("a") is None
        assert admission.tenants == ("a", "b")

    def test_limiter_tracks_peak_and_balances(self):
        limiter = ConcurrencyLimiter(max_inflight=2)
        assert limiter.try_enter() and limiter.try_enter()
        assert not limiter.try_enter()
        limiter.exit()
        assert limiter.try_enter()
        assert limiter.peak_inflight == 2
        limiter.exit()
        limiter.exit()
        with pytest.raises(RuntimeError):
            limiter.exit()


# ---------------------------------------------------------------------------
# brownout ladder
# ---------------------------------------------------------------------------


class TestBrownout:
    def test_level_thresholds(self):
        brownout = BrownoutController()  # 0.5 / 0.75 / 0.9
        levels = {
            0: BrownoutLevel.NORMAL,
            7: BrownoutLevel.NORMAL,
            8: BrownoutLevel.SERVE_STALE,
            11: BrownoutLevel.SERVE_STALE,
            12: BrownoutLevel.WIDEN,
            14: BrownoutLevel.WIDEN,
            15: BrownoutLevel.SHED_REFRESH,
            16: BrownoutLevel.SHED_REFRESH,
        }
        for depth, expected in levels.items():
            assert brownout.level_for(depth, 16) is expected

    def test_thresholds_must_be_ordered(self):
        with pytest.raises(ValueError):
            BrownoutController(serve_stale_at=0.8, widen_at=0.5)
        with pytest.raises(ValueError):
            BrownoutController(serve_stale_at=0.0)
        with pytest.raises(ValueError):
            BrownoutController().level_for(1, 0)


# ---------------------------------------------------------------------------
# scheduler — deterministic integration on the simulated clock
# ---------------------------------------------------------------------------


CHAOS = OverloadChaos(
    burst_multiplier=4.0,
    burst_start_s=0.2,
    burst_duration_s=5.0,
    slow_shard=1,
    slow_delay_s=0.2,
    stuck_shard=0,
    stuck_after=3,
)


def _scheduler(
    network,
    registry,
    config: SchedulerConfig,
    injector: FaultInjector | None = None,
    telemetry: Telemetry | None = None,
) -> ShardedScheduler:
    telemetry = (
        telemetry if telemetry is not None else Telemetry.simulated(tick_s=0.0)
    )

    def factory() -> ChargingEnvironment:
        return ChargingEnvironment(network, registry, seed=5)

    return ShardedScheduler(
        factory,
        config,
        EcoChargeConfig(k=3, segment_km=6.0),
        clock=telemetry.clock,
        telemetry=telemetry,
        injector=injector,
    )


@pytest.fixture(scope="module")
def trips(small_network):
    from repro.network.path import Trip

    nodes = sorted(small_network.node_ids())
    pairs = [
        (nodes[0], nodes[-1]),
        (nodes[1], nodes[-2]),
        (nodes[2], nodes[-3]),
        (nodes[len(nodes) // 2], nodes[-1]),
    ]
    return [
        Trip.route(small_network, a, b, departure_time_h=9.0 + i)
        for i, (a, b) in enumerate(pairs)
    ]


@pytest.fixture(scope="module")
def fresh_tables(small_network, small_registry, trips):
    """Unwidened ground truth: one completed ranking's Offering Tables."""
    scheduler = _scheduler(
        small_network, small_registry, SchedulerConfig(shards=1, queue_capacity=8)
    )
    scheduler.submit("tenant", trips[0])
    scheduler.drain()
    (response,) = scheduler.drain_responses()
    assert response.outcome is Outcome.COMPLETED
    assert response.tables
    return response.tables


def _assert_interval_sound(tables):
    for table in tables:
        for entry in table.entries:
            for component in (entry.sustainable, entry.availability, entry.derouting):
                assert component.within_bounds(0.0, 1.0, tol=1e-9)
        assert [e.rank for e in table.entries] == list(range(1, len(table) + 1))


class TestWidening:
    def test_widened_table_contains_the_original(self, fresh_tables):
        weights = EcoChargeConfig().weights
        for table in fresh_tables:
            widened = widen_table(table, factor=0.5, weights=weights)
            assert len(widened) == len(table)
            for original, wide in zip(table.entries, widened.entries):
                assert wide.charger_id == original.charger_id
                assert wide.eta_h == original.eta_h
                for before, after in (
                    (original.sustainable, wide.sustainable),
                    (original.availability, wide.availability),
                    (original.derouting, wide.derouting),
                ):
                    assert after.lo <= before.lo + 1e-12
                    assert after.hi >= before.hi - 1e-12
            _assert_interval_sound([widened])

    def test_zero_factor_is_identity_on_components(self, fresh_tables):
        weights = EcoChargeConfig().weights
        table = fresh_tables[0]
        widened = widen_table(table, factor=0.0, weights=weights)
        for original, wide in zip(table.entries, widened.entries):
            assert wide.sustainable == original.sustainable
            assert wide.availability == original.availability
            assert wide.derouting == original.derouting


class TestSchedulerPath:
    def test_happy_path_completes_with_exact_accounting(
        self, small_network, small_registry, trips
    ):
        scheduler = _scheduler(
            small_network, small_registry, SchedulerConfig(shards=2, queue_capacity=8)
        )
        for i, trip in enumerate(trips):
            scheduler.submit(f"tenant-{i}", trip)
        executed = scheduler.drain()
        responses = scheduler.drain_responses()
        assert executed == len(trips) == len(responses)
        assert all(r.outcome is Outcome.COMPLETED for r in responses)
        assert all(r.tables for r in responses)
        _assert_interval_sound([t for r in responses for t in r.tables])
        assert scheduler.accounting_ok()
        assert scheduler.stats.completed == len(trips)

    def test_rate_and_capacity_rejections(self, small_network, small_registry, trips):
        scheduler = _scheduler(
            small_network,
            small_registry,
            SchedulerConfig(
                shards=1,
                queue_capacity=8,
                max_inflight=2,
                tenant_rate_per_s=1.0,
                tenant_burst=1.0,
            ),
        )
        scheduler.submit("hammer", trips[0])
        scheduler.submit("hammer", trips[0])  # bucket empty -> rate
        scheduler.submit("other", trips[1])
        scheduler.submit("third", trips[2])  # inflight cap -> capacity
        outcomes = [r.outcome for r in scheduler.drain_responses()]
        assert outcomes == [Outcome.REJECTED_RATE, Outcome.REJECTED_CAPACITY]
        assert scheduler.stats.rejected_rate == 1
        assert scheduler.stats.rejected_capacity == 1

    def test_unexpected_error_resolves_as_failed(
        self, small_network, small_registry, trips, monkeypatch
    ):
        """A bug below the scheduler must not strand the request: it
        resolves as FAILED, releases the admission slot, and keeps the
        exact-accounting invariant (a worker thread would otherwise die
        silently and leak its inflight slot forever)."""
        scheduler = _scheduler(
            small_network, small_registry, SchedulerConfig(shards=1, queue_capacity=8)
        )

        def boom(shard, request):
            raise RuntimeError("ranker bug")

        monkeypatch.setattr(scheduler, "_execute", boom)
        scheduler.submit("tenant", trips[0])
        scheduler.drain()
        (response,) = scheduler.drain_responses()
        assert response.outcome is Outcome.FAILED
        assert "RuntimeError" in (response.detail or "")
        assert scheduler.stats.failed == 1
        assert scheduler.accounting_ok()
        assert scheduler.admission.limiter.inflight == 0
        scheduler.drain()
        assert scheduler.accounting_ok()

    def test_expired_request_is_shed_never_served_fresh(
        self, small_network, small_registry, trips
    ):
        scheduler = _scheduler(
            small_network, small_registry, SchedulerConfig(shards=1, queue_capacity=8)
        )
        scheduler.submit("tenant", trips[0], budget_s=0.5)
        scheduler.clock.advance(1.0)  # queued past its whole budget
        scheduler.drain()
        (response,) = scheduler.drain_responses()
        assert response.outcome is Outcome.SHED_DEADLINE
        assert response.tables == ()
        assert scheduler.stats.sheds_deadline == 1

    def test_brownout_serves_stale_then_widens_then_sheds_refresh(
        self, small_network, small_registry, trips
    ):
        scheduler = _scheduler(
            small_network, small_registry, SchedulerConfig(shards=1, queue_capacity=4)
        )
        # Prime the shard's response cache with a fresh answer.
        scheduler.submit("tenant", trips[0])
        scheduler.drain()
        (fresh,) = scheduler.drain_responses()
        assert fresh.outcome is Outcome.COMPLETED
        # Fill the queue to capacity: depth 4/4 puts admission at
        # SHED_REFRESH, so a REFRESH submission is dropped outright...
        for _ in range(4):
            scheduler.submit("tenant", trips[0])
        scheduler.submit("tenant", trips[0], priority=Priority.REFRESH)
        (browned,) = scheduler.drain_responses()
        assert browned.outcome is Outcome.SHED_BROWNOUT
        # ...and execution at depth 3/4 sits at WIDEN: the queued work is
        # answered stale-and-widened from the cache, marked, never lied.
        assert scheduler.run_one(0)
        (stale,) = scheduler.drain_responses()
        assert stale.outcome is Outcome.STALE
        assert stale.widened and stale.brownout >= int(BrownoutLevel.WIDEN)
        assert stale.stale_age_h is not None
        assert stale.stale_age_h <= scheduler.config.max_stale_h
        _assert_interval_sound(stale.tables)
        # The widened stale answer contains the fresh truth it came from.
        for fresh_table, stale_table in zip(fresh.tables, stale.tables):
            for original, wide in zip(fresh_table.entries, stale_table.entries):
                assert wide.sustainable.lo <= original.sustainable.lo + 1e-12
                assert wide.sustainable.hi >= original.sustainable.hi - 1e-12
        scheduler.drain()
        assert scheduler.accounting_ok()

    def test_full_queue_displaces_lower_priority_work(
        self, small_network, small_registry, trips
    ):
        scheduler = _scheduler(
            small_network,
            small_registry,
            SchedulerConfig(shards=1, queue_capacity=2, shed_refresh_at=1.0),
        )
        scheduler.submit("tenant", trips[0], priority=Priority.BACKGROUND)
        scheduler.submit("tenant", trips[0], priority=Priority.BACKGROUND)
        scheduler.submit("tenant", trips[0], priority=Priority.INTERACTIVE)
        (victim,) = scheduler.drain_responses()
        assert victim.outcome is Outcome.SHED_QUEUE
        assert victim.request.priority is Priority.BACKGROUND
        assert scheduler.pending == 2
        scheduler.drain()
        assert scheduler.accounting_ok()


# ---------------------------------------------------------------------------
# the burst-overload chaos run (acceptance: ISSUE.md)
# ---------------------------------------------------------------------------


def _chaos_run(small_network, small_registry, trips):
    telemetry = Telemetry.simulated(tick_s=0.0)
    scheduler = _scheduler(
        small_network,
        small_registry,
        SchedulerConfig(
            shards=2,
            queue_capacity=4,
            max_inflight=16,
            deadline_budget_s=2.0,
            tenant_rate_per_s=6.0,
            tenant_burst=8.0,
        ),
        injector=FaultInjector(seed=3, overload=CHAOS),
        telemetry=telemetry,
    )
    report = run_load(
        scheduler,
        trips,
        LoadProfile(requests=32, arrival_rate_per_s=24.0, seed=11),
    )
    return scheduler, report


class TestBurstOverloadChaos:
    def test_overload_contract_holds_under_seeded_burst(
        self, small_network, small_registry, trips
    ):
        scheduler, report = _chaos_run(small_network, small_registry, trips)
        budget_s = scheduler.config.deadline_budget_s
        # The burst actually fired and actually hurt.
        assert report.overload_events.get("burst", 0) > 0
        assert report.shed + report.outcomes.get("stale", 0) > 0
        # 1. No unbounded queue growth: bounded queues held their line.
        assert all(depth <= 4 for depth in report.peak_depths)
        assert report.peak_inflight <= 16
        # 2. Zero deadline-expired responses served as fresh: a COMPLETED
        #    response passed its serve-time checkpoint, so its latency
        #    cannot exceed the budget.
        for response in report.responses:
            if response.outcome is Outcome.COMPLETED:
                assert response.latency_s <= budget_s + 1e-9
            if response.outcome is Outcome.STALE:
                assert response.stale_age_h is not None
                assert response.stale_age_h <= scheduler.config.max_stale_h
        # 3. Every served Offering Table is interval-sound, widened or not.
        _assert_interval_sound(
            [t for r in report.responses if r.outcome.is_served for t in r.tables]
        )
        # 4. The accounting reconciles exactly: one response per request,
        #    stats == registry, native counters == response counts.
        assert report.accounting_exact
        assert report.reconciliation == ()
        assert len(report.responses) == report.requests == 32

    def test_chaos_run_replays_identically(self, small_network, small_registry, trips):
        _, first = _chaos_run(small_network, small_registry, trips)
        _, second = _chaos_run(small_network, small_registry, trips)
        assert first.outcomes == second.outcomes
        assert first.peak_depths == second.peak_depths
        assert first.overload_events == second.overload_events
        assert first.elapsed_s == second.elapsed_s
        assert [r.outcome for r in first.responses] == [
            r.outcome for r in second.responses
        ]


# ---------------------------------------------------------------------------
# threaded mode — liveness and exact accounting under real races
# ---------------------------------------------------------------------------


class TestThreadedMode:
    def test_threaded_run_resolves_everything_exactly_once(
        self, small_network, small_registry, trips
    ):
        scheduler = _scheduler(
            small_network,
            small_registry,
            SchedulerConfig(
                shards=2,
                queue_capacity=16,
                max_inflight=64,
                deadline_budget_s=300.0,
                tenant_rate_per_s=10_000.0,
                tenant_burst=64.0,
            ),
            telemetry=Telemetry(SYSTEM_CLOCK, enabled=False),
        )
        report = run_load_threaded(
            scheduler, trips, LoadProfile(requests=8, seed=0)
        )
        assert report.requests == 8
        assert len(report.responses) == 8
        assert report.accounting_exact
        assert report.reconciliation == ()
        assert scheduler.pending == 0

    def test_start_twice_is_an_error(self, small_network, small_registry):
        scheduler = _scheduler(
            small_network, small_registry, SchedulerConfig(shards=1, queue_capacity=2)
        )
        scheduler.start()
        try:
            with pytest.raises(RuntimeError):
                scheduler.start()
        finally:
            scheduler.stop()


# ---------------------------------------------------------------------------
# single-flight response cache under real contention
# ---------------------------------------------------------------------------


class TestSingleFlight:
    def test_concurrent_misses_coalesce_into_one_compute(self):
        cache = ResponseCache(ttl_h=1.0)
        computes = []
        gate = threading.Event()

        def compute():
            gate.wait(timeout=5.0)
            computes.append(1)
            return "tables"

        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    cache.get_or_compute("k", 10.0, compute)
                )
            )
            for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        gate.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert results == ["tables"] * 6
        assert len(computes) == 1
        # Followers either joined the in-flight computation (coalesced) or,
        # if scheduled after the leader landed, hit the cached value —
        # never a second compute either way.
        assert cache.stats.coalesced + cache.stats.hits == 5


# ---------------------------------------------------------------------------
# load-report arithmetic
# ---------------------------------------------------------------------------


class TestPercentile:
    def test_nearest_rank(self):
        values = [0.1, 0.2, 0.3, 0.4]
        assert percentile(values, 0.5) == 0.2
        assert percentile(values, 0.99) == 0.4
        assert percentile([], 0.5) == 0.0
        with pytest.raises(ValueError):
            percentile(values, 1.5)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            LoadProfile(requests=0)
        with pytest.raises(ValueError):
            LoadProfile(refresh_fraction=0.8, background_fraction=0.4)
