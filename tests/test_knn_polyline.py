"""Tests for the sampled polyline-kNN helper (the discretised CkNN view)."""

import numpy as np
import pytest

from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import Point
from repro.spatial.knn import brute_force_knn, knn_along_polyline
from repro.spatial.quadtree import QuadTree


@pytest.fixture(scope="module")
def index():
    tree: QuadTree[int] = QuadTree(BoundingBox(0, 0, 20, 20), capacity=4)
    rng = np.random.default_rng(21)
    for i in range(60):
        tree.insert(Point(float(rng.uniform(0, 20)), float(rng.uniform(0, 20))), i)
    return tree


class TestKnnAlongPolyline:
    def test_samples_cover_polyline(self, index):
        polyline = [Point(0, 0), Point(10, 0), Point(10, 10)]
        results = knn_along_polyline(index, polyline, k=2, step_km=1.0)
        assert results[0][0] == polyline[0]
        assert results[-1][0] == polyline[-1]
        # 20 km of polyline at 1 km steps: 21 samples (shared vertex deduped).
        assert len(results) == 21

    def test_each_sample_matches_pointwise_knn(self, index):
        polyline = [Point(2, 3), Point(15, 12)]
        entries = list(index)
        for sample, knn in knn_along_polyline(index, polyline, k=3, step_km=2.0):
            want = [i for __, __, i in brute_force_knn(entries, sample, 3)]
            got = [i for __, __, i in knn]
            assert got == want

    def test_shared_vertices_not_duplicated(self, index):
        polyline = [Point(0, 0), Point(4, 0), Point(8, 0)]
        results = knn_along_polyline(index, polyline, k=1, step_km=2.0)
        samples = [s.as_tuple() for s, __ in results]
        assert len(samples) == len(set(samples))

    def test_single_point_polyline(self, index):
        results = knn_along_polyline(index, [Point(5, 5)], k=2)
        assert len(results) == 1
        assert len(results[0][1]) == 2

    def test_empty_polyline(self, index):
        assert knn_along_polyline(index, [], k=1) == []
