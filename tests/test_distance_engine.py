"""DistanceEngine: backend equivalence, caching semantics, and the LRU.

The acceptance property of the whole hierarchical engine is here: on
seeded networks, the derouting intervals ``[D_min, D_max]`` produced with
``backend="ch"`` are *bitwise identical* to the Dijkstra backend's — the
quantisation contract (``DISTANCE_DECIMALS``) is what turns "equal up to
float noise" into ``==``.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.chargers.plugshare import CatalogSpec, generate_catalog
from repro.core.environment import ChargingEnvironment
from repro.estimation.derouting import DeroutingEstimator
from repro.estimation.traffic import TrafficModel
from repro.network.builders import (
    NetworkSpec,
    build_city_network,
    build_grid_network,
    build_radial_network,
)
from repro.network.distance_engine import (
    BACKENDS,
    DISTANCE_QUANTUM,
    DistanceEngine,
    WeightSpec,
)
from repro.network.graph import EdgeWeight
from repro.network.path import Trip


@pytest.fixture(scope="module")
def grid():
    return build_grid_network(7, 7, block_km=1.0, speed_kmh=60.0)


class TestWeightSpec:
    def test_of_passes_spec_through(self):
        spec = WeightSpec(key="k", fn=lambda e: 1.0)
        assert WeightSpec.of(spec) is spec

    def test_of_wraps_edge_weight(self):
        spec = WeightSpec.of(EdgeWeight.DISTANCE_KM)
        assert spec.key is EdgeWeight.DISTANCE_KM

    def test_of_rejects_raw_callable(self):
        with pytest.raises(TypeError, match="WeightSpec"):
            WeightSpec.of(lambda e: 1.0)


class TestEngineBasics:
    def test_rejects_unknown_backend(self, grid):
        with pytest.raises(ValueError, match="backend"):
            DistanceEngine(grid, backend="bfs")

    def test_one_to_many_matches_raw_dijkstra_quantised(self, grid):
        from repro.network.shortest_path import dijkstra_all

        engine = DistanceEngine(grid)
        targets = sorted(grid.node_ids())[::3]
        got = engine.one_to_many(0, targets, EdgeWeight.DISTANCE_KM, max_cost=6.0)
        ref = dijkstra_all(grid, 0, EdgeWeight.DISTANCE_KM, max_cost=6.0)
        assert got == {
            t: round(ref[t], 9) for t in targets if t in ref and round(ref[t], 9) <= 6.0
        }

    def test_cache_hit_on_repeat_query(self, grid):
        engine = DistanceEngine(grid)
        targets = [5, 12, 30]
        engine.one_to_many(0, targets, EdgeWeight.DISTANCE_KM, max_cost=5.0)
        misses = engine.stats.cache_misses
        engine.one_to_many(0, [30, 44], EdgeWeight.DISTANCE_KM, max_cost=5.0)
        assert engine.stats.cache_misses == misses
        assert engine.stats.cache_hits >= 1

    def test_budget_aware_reuse(self, grid):
        engine = DistanceEngine(grid)
        engine.one_to_many(0, [5], EdgeWeight.DISTANCE_KM, max_cost=8.0)
        searches = engine.stats.searches
        # A *smaller* budget is answerable from the cached wider ball...
        engine.one_to_many(0, [5], EdgeWeight.DISTANCE_KM, max_cost=3.0)
        assert engine.stats.searches == searches
        # ...a wider one forces a recompute.
        engine.one_to_many(0, [5], EdgeWeight.DISTANCE_KM, max_cost=10.0)
        assert engine.stats.searches == searches + 1

    def test_narrow_budget_filters_cached_wide_ball(self, grid):
        engine = DistanceEngine(grid)
        wide = engine.one_to_many(0, grid.node_ids(), EdgeWeight.DISTANCE_KM, max_cost=12.0)
        narrow = engine.one_to_many(0, grid.node_ids(), EdgeWeight.DISTANCE_KM, max_cost=3.0)
        assert narrow == {n: d for n, d in wide.items() if d <= 3.0}

    def test_set_backend_clears_caches(self, grid):
        engine = DistanceEngine(grid)
        engine.one_to_many(0, [5], EdgeWeight.DISTANCE_KM, max_cost=5.0)
        assert engine.cached_maps > 0
        engine.set_backend("ch")
        assert engine.cached_maps == 0
        assert engine.backend == "ch"

    def test_stats_hit_rate_zero_lookups(self):
        # Regression: a fresh engine must report 0.0, not divide by zero.
        engine = DistanceEngine(build_grid_network(2, 2))
        assert engine.stats.lookups == 0
        assert engine.stats.hit_rate == 0.0
        assert engine.stats.as_dict()["hit_rate"] == 0.0


class TestLRU:
    def test_capacity_bounds_cached_nodes(self, grid):
        # Each full ball on the 7x7 grid settles 49 nodes; cap at ~3 balls.
        engine = DistanceEngine(grid, capacity_nodes=150)
        for source in range(10):
            engine.one_to_many(source, [48], EdgeWeight.DISTANCE_KM, max_cost=20.0)
        assert engine.cached_nodes <= 150
        assert engine.stats.evictions >= 7

    def test_eviction_is_lru_ordered(self, grid):
        engine = DistanceEngine(grid, capacity_nodes=150)
        engine.one_to_many(0, [48], EdgeWeight.DISTANCE_KM, max_cost=20.0)
        engine.one_to_many(1, [48], EdgeWeight.DISTANCE_KM, max_cost=20.0)
        engine.one_to_many(2, [48], EdgeWeight.DISTANCE_KM, max_cost=20.0)
        # Touch source 0 so source 1 is the least recently used...
        engine.one_to_many(0, [24], EdgeWeight.DISTANCE_KM, max_cost=20.0)
        engine.one_to_many(3, [48], EdgeWeight.DISTANCE_KM, max_cost=20.0)
        searches = engine.stats.searches
        engine.one_to_many(0, [24], EdgeWeight.DISTANCE_KM, max_cost=20.0)
        assert engine.stats.searches == searches  # survivor: still cached
        engine.one_to_many(1, [24], EdgeWeight.DISTANCE_KM, max_cost=20.0)
        assert engine.stats.searches == searches + 1  # victim: recomputed

    def test_single_oversized_entry_is_kept(self, grid):
        # An entry larger than the whole capacity must still be served
        # (and be the only resident), not evicted out from under the call.
        engine = DistanceEngine(grid, capacity_nodes=10)
        out = engine.one_to_many(0, grid.node_ids(), EdgeWeight.DISTANCE_KM, max_cost=30.0)
        assert len(out) == 49
        assert engine.cached_maps == 1

    def test_customization_cache_bounded(self, grid):
        engine = DistanceEngine(grid, backend="ch", max_customizations=2)
        traffic = TrafficModel(seed=0)
        for hour in (8.0, 9.0, 10.0, 11.0):
            spec = traffic.travel_time_spec(hour)
            engine.one_to_many(0, [5], spec, max_cost=5.0)
        assert engine.stats.customisations == 4
        assert engine.stats.evictions >= 2


class TestStatsCounting:
    """The 0.5-hit-rate regression: stats must separate cold from warm.

    Every public query accounts *exactly one* settled-map lookup per
    participating (weight, node, direction) map on the Dijkstra backend
    (never two — an inflated denominator pins the aggregate hit rate at
    a meaningless constant), and the CH backend accounts exactly one
    pair probe per pool member.  A warm repeat of an identical workload
    must therefore be a 100 % hit phase, not drag the rate toward 0.5.
    """

    def test_dijkstra_one_lookup_per_query(self, grid):
        engine = DistanceEngine(grid)
        engine.one_to_many(0, [5, 12, 30], EdgeWeight.DISTANCE_KM, max_cost=5.0)
        assert engine.stats.lookups == 1  # one (weight, source, 'f') map
        assert engine.stats.cache_misses == 1
        engine.many_to_one([5, 12], 0, EdgeWeight.DISTANCE_KM, max_cost=5.0)
        assert engine.stats.lookups == 2  # one (weight, target, 'b') map
        engine.one_to_many(0, [12], EdgeWeight.DISTANCE_KM, max_cost=5.0)
        assert engine.stats.lookups == 3
        assert engine.stats.cache_hits == 1

    def test_dijkstra_warm_repeat_is_all_hits(self, grid):
        engine = DistanceEngine(grid)
        workload = [(src, [12, 30]) for src in range(4)]
        for src, targets in workload:
            engine.one_to_many(src, targets, EdgeWeight.DISTANCE_KM, max_cost=8.0)
        cold_hits = engine.stats.cache_hits
        cold_lookups = engine.stats.lookups
        assert cold_hits == 0
        for src, targets in workload:
            engine.one_to_many(src, targets, EdgeWeight.DISTANCE_KM, max_cost=8.0)
        warm_hits = engine.stats.cache_hits - cold_hits
        warm_lookups = engine.stats.lookups - cold_lookups
        # The warm *delta* is a 100% hit phase; the old single aggregate
        # read would have reported (0 + n) / 2n = 0.5 here.
        assert warm_lookups == len(workload)
        assert warm_hits == warm_lookups

    def test_ch_one_pair_probe_per_pool_member(self, grid):
        engine = DistanceEngine(grid, backend="ch")
        pool = [5, 12, 30]
        engine.one_to_many(0, pool, EdgeWeight.DISTANCE_KM, max_cost=8.0)
        cold_probes = engine.stats.pair_hits + engine.stats.pair_misses
        assert cold_probes == len(pool)
        assert engine.stats.pair_hits == 0
        engine.one_to_many(0, pool, EdgeWeight.DISTANCE_KM, max_cost=8.0)
        warm_hits = engine.stats.pair_hits
        warm_probes = engine.stats.pair_hits + engine.stats.pair_misses - cold_probes
        assert warm_probes == len(pool)
        assert warm_hits == warm_probes

    def test_per_phase_driver_stats_split_cold_and_warm(self, grid):
        from repro.experiments.perf_trajectory import _phase_stats
        from repro.network.distance_engine import EngineStats

        engine = DistanceEngine(grid)
        for src in range(3):
            engine.one_to_many(src, [12], EdgeWeight.DISTANCE_KM, max_cost=8.0)
        cold = {f: getattr(engine.stats, f) for f in EngineStats.COUNTER_FIELDS}
        for src in range(3):
            engine.one_to_many(src, [12], EdgeWeight.DISTANCE_KM, max_cost=8.0)
        warm = {
            f: getattr(engine.stats, f) - cold[f] for f in EngineStats.COUNTER_FIELDS
        }
        assert _phase_stats(cold)["hit_rate"] == 0.0
        assert _phase_stats(warm)["hit_rate"] == 1.0
        # ...while the aggregate (the old, buggy report) sits at 0.5.
        assert engine.stats.hit_rate == 0.5


class TestPrepare:
    """engine.prepare(): stacked customisation of several metrics at once."""

    def test_customises_all_specs_in_one_stacked_sweep(self, grid):
        engine = DistanceEngine(grid, backend="ch")
        traffic = TrafficModel(seed=6)
        lo, hi = traffic.travel_time_bound_specs(9.0, 8.0)
        # prepare() is deferred: no sweep happens until the first query...
        engine.prepare(lo, hi)
        assert engine.stats.customisations == 0
        # ...which then customises the whole announced group in one
        # stacked sweep, so the sibling spec is already resident.
        engine.one_to_many(0, [5, 30], lo, max_cost=5.0)
        assert engine.stats.customisations == 2
        engine.one_to_many(0, [5, 30], hi, max_cost=5.0)
        assert engine.stats.customisations == 2  # hi rode along with lo
        assert engine.stats.customisation_hits >= 2

    def test_prepared_results_match_unprepared(self, grid):
        traffic = TrafficModel(seed=6)
        lo, hi = traffic.travel_time_bound_specs(10.0, 9.5)
        prepared = DistanceEngine(grid, backend="ch")
        prepared.prepare(lo, hi)
        lazy = DistanceEngine(grid, backend="ch")
        for spec in (lo, hi):
            assert prepared.one_to_many(0, grid.node_ids(), spec, max_cost=2.0) == (
                lazy.one_to_many(0, grid.node_ids(), spec, max_cost=2.0)
            )

    def test_idempotent_and_deduplicating(self, grid):
        engine = DistanceEngine(grid, backend="ch")
        traffic = TrafficModel(seed=6)
        lo, hi = traffic.travel_time_bound_specs(9.0, 8.0)
        engine.prepare(lo, hi, lo)
        engine.prepare(lo, hi)
        engine.one_to_many(0, [5], lo, max_cost=5.0)
        assert engine.stats.customisations == 2
        # Re-announcing already-customised specs must not re-sweep them.
        engine.prepare(lo, hi)
        engine.one_to_many(1, [5], hi, max_cost=5.0)
        assert engine.stats.customisations == 2

    def test_noop_on_dijkstra_backend(self, grid):
        engine = DistanceEngine(grid)
        traffic = TrafficModel(seed=6)
        engine.prepare(*traffic.travel_time_bound_specs(9.0, 8.0))
        assert engine.stats.customisations == 0
        assert engine.cached_maps == 0


class TestBackendEquality:
    """CH and Dijkstra return identical (quantised) maps — bitwise."""

    @pytest.mark.parametrize("seed", [2, 11, 29])
    def test_city_networks_random_queries(self, seed):
        net = build_city_network(
            NetworkSpec(width_km=8.0, height_km=6.0, block_km=1.2, seed=seed)
        )
        traffic = TrafficModel(seed=seed)
        spec_lo, spec_hi = traffic.travel_time_bound_specs(9.0, 8.0)
        engines = {b: DistanceEngine(net, backend=b) for b in BACKENDS}
        rng = random.Random(seed)
        nodes = sorted(net.node_ids())
        for _ in range(5):
            anchor = rng.choice(nodes)
            pool = rng.sample(nodes, 10)
            budget = rng.uniform(0.05, 0.6)
            for spec in (spec_lo, spec_hi):
                o2m = {
                    b: e.one_to_many(anchor, pool, spec, max_cost=budget)
                    for b, e in engines.items()
                }
                assert o2m["dijkstra"] == o2m["ch"]
                m2o = {
                    b: e.many_to_one(pool, anchor, spec, max_cost=budget)
                    for b, e in engines.items()
                }
                assert m2o["dijkstra"] == m2o["ch"]

    def test_radial_network(self):
        net = build_radial_network(rings=4, spokes=6)
        nodes = sorted(net.node_ids())
        engines = {b: DistanceEngine(net, backend=b) for b in BACKENDS}
        got = {
            b: e.many_to_many(nodes[:5], nodes[-5:], EdgeWeight.TRAVEL_TIME_H, max_cost=1.0)
            for b, e in engines.items()
        }
        assert got["dijkstra"] == got["ch"]

    def test_batch_evaluator_bitwise_matches_scalar(self, grid):
        """The vectorised customisation input equals the scalar cost fn
        element-for-element — the precondition for backend bit-equality."""
        from repro.network.contraction import ContractionHierarchy

        ch = ContractionHierarchy.build(grid)
        traffic = TrafficModel(seed=4)
        for spec in (
            traffic.travel_time_spec(8.5),
            *traffic.travel_time_bound_specs(9.5, 8.0),
        ):
            batch = spec.batch(ch.original_edges)
            for arc, edge in enumerate(ch.original_edges):
                if edge is None:
                    assert math.isinf(batch[arc])
                else:
                    assert batch[arc] == spec.fn(edge)  # bitwise, not approx


class TestDeroutingIntervalEquality:
    """Acceptance: identical D intervals across backends on seeded worlds."""

    @pytest.mark.parametrize("seed", [5, 13])
    def test_batch_estimate_identical(self, seed):
        net = build_city_network(
            NetworkSpec(width_km=10.0, height_km=8.0, block_km=1.3, seed=seed)
        )
        registry = generate_catalog(net, CatalogSpec(charger_count=25, seed=seed))
        traffic = TrafficModel(seed=seed)
        chargers = registry.all()
        nodes = sorted(net.node_ids())
        trip = Trip.route(net, nodes[0], nodes[-1], departure_time_h=8.0)
        segment = trip.segments(segment_km=2.0)[0]
        results = {}
        for backend in BACKENDS:
            estimator = DeroutingEstimator(
                net, traffic, engine=DistanceEngine(net, backend=backend)
            )
            results[backend] = estimator.batch_estimate(
                segment, chargers, time_h=8.4, now_h=8.0
            )
        assert set(results["dijkstra"]) == set(results["ch"])
        for cid, cost_d in results["dijkstra"].items():
            cost_c = results["ch"][cid]
            # Bitwise equality of the interval endpoints, not approx.
            assert cost_d.hours.lo == cost_c.hours.lo
            assert cost_d.hours.hi == cost_c.hours.hi
            assert cost_d.normalised == cost_c.normalised

    def test_full_environment_true_components_identical(self):
        net = build_city_network(
            NetworkSpec(width_km=8.0, height_km=8.0, block_km=1.5, seed=3)
        )
        registry = generate_catalog(net, CatalogSpec(charger_count=15, seed=3))
        pools = {}
        for backend in BACKENDS:
            env = ChargingEnvironment(net, registry, seed=3, engine=backend)
            nodes = sorted(net.node_ids())
            trip = Trip.route(net, nodes[0], nodes[-1], departure_time_h=9.0)
            segment = trip.segments(segment_km=2.0)[0]
            pools[backend] = env.true_components_pool(segment, registry.all(), 9.2)
        assert pools["dijkstra"] == pools["ch"]


class TestEnvironmentWiring:
    def test_environment_shares_one_engine(self, grid):
        registry = generate_catalog(grid, CatalogSpec(charger_count=5, seed=1))
        env = ChargingEnvironment(grid, registry, seed=1)
        assert env.derouting.engine is env.engine
        env.set_engine_backend("ch")
        assert env.engine.backend == "ch"

    def test_quantum_is_sane(self):
        assert DISTANCE_QUANTUM == pytest.approx(1e-9)
