"""Unit tests for the road network graph."""

import pytest

from repro.network.builders import (
    NetworkSpec,
    build_city_network,
    build_grid_network,
    build_radial_network,
)
from repro.network.graph import (
    DEFAULT_CO2_KG_PER_KWH,
    DEFAULT_KWH_PER_KM,
    EdgeWeight,
    RoadEdge,
    RoadNetwork,
)
from repro.spatial.geometry import Point


class TestConstruction:
    def test_add_node_and_edge(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(3, 4))
        edge = net.add_edge(0, 1)
        assert edge.length_km == pytest.approx(5.0)  # defaults to Euclidean
        assert net.node_count == 2 and net.edge_count == 1

    def test_duplicate_node_rejected(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        with pytest.raises(ValueError):
            net.add_node(0, Point(1, 1))

    def test_duplicate_edge_rejected(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 0))
        net.add_edge(0, 1)
        with pytest.raises(ValueError):
            net.add_edge(0, 1)

    def test_edge_requires_existing_endpoints(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        with pytest.raises(KeyError):
            net.add_edge(0, 99)

    def test_add_road_is_bidirectional(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 0))
        net.add_road(0, 1)
        assert net.has_edge(0, 1) and net.has_edge(1, 0)

    def test_explicit_length_kept(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 0))
        edge = net.add_edge(0, 1, length_km=2.5)  # curvy road, longer than crow flies
        assert edge.length_km == 2.5


class TestEdgeWeights:
    EDGE = RoadEdge(0, 1, length_km=10.0, speed_kmh=50.0, kwh_per_km=0.2)

    def test_distance(self):
        assert self.EDGE.weight(EdgeWeight.DISTANCE_KM) == 10.0

    def test_travel_time(self):
        assert self.EDGE.weight(EdgeWeight.TRAVEL_TIME_H) == pytest.approx(0.2)

    def test_energy(self):
        assert self.EDGE.weight(EdgeWeight.ENERGY_KWH) == pytest.approx(2.0)

    def test_co2_proportional_to_energy(self):
        assert self.EDGE.weight(EdgeWeight.CO2_KG) == pytest.approx(
            2.0 * DEFAULT_CO2_KG_PER_KWH
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RoadEdge(0, 1, length_km=-1.0)
        with pytest.raises(ValueError):
            RoadEdge(0, 1, length_km=1.0, speed_kmh=0.0)
        with pytest.raises(ValueError):
            RoadEdge(0, 1, length_km=1.0, kwh_per_km=-0.1)


class TestTopology:
    def test_degree_and_neighbours(self, unit_grid):
        corner = 0
        assert unit_grid.degree(corner) == 2
        assert set(unit_grid.neighbours(corner)) == {1, 6}

    def test_in_and_out_edges_mirror_for_roads(self, unit_grid):
        outs = {(e.source, e.target) for e in unit_grid.out_edges(7)}
        ins = {(e.target, e.source) for e in unit_grid.in_edges(7)}
        assert outs == ins  # every road is a directed pair

    def test_grid_is_strongly_connected(self, unit_grid):
        assert unit_grid.is_strongly_connected()

    def test_one_way_graph_not_strongly_connected(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 0))
        net.add_edge(0, 1)
        assert not net.is_strongly_connected()

    def test_largest_scc(self):
        net = RoadNetwork()
        for i in range(4):
            net.add_node(i, Point(i, 0))
        net.add_road(0, 1)
        net.add_road(1, 2)
        net.add_edge(2, 3)  # 3 is a sink
        assert net.largest_strongly_connected_component() == {0, 1, 2}

    def test_subgraph(self, unit_grid):
        sub = unit_grid.subgraph({0, 1, 2})
        assert sub.node_count == 3
        assert sub.has_edge(0, 1) and sub.has_edge(1, 2)
        assert not sub.has_node(6)

    def test_nearest_node(self, unit_grid):
        node = unit_grid.nearest_node(Point(2.2, 3.1))
        assert node.point == Point(2.0, 3.0)

    def test_nearest_node_empty_raises(self):
        with pytest.raises(ValueError):
            RoadNetwork().nearest_node(Point(0, 0))

    def test_node_index_matches_nearest(self, unit_grid):
        index = unit_grid.node_index()
        probe = Point(4.4, 0.3)
        __, __, via_index = index.nearest(probe, 1)[0]
        assert via_index == unit_grid.nearest_node(probe).node_id

    def test_bounds(self, unit_grid):
        box = unit_grid.bounds()
        assert (box.min_x, box.min_y) == (0.0, 0.0)
        assert (box.max_x, box.max_y) == (5.0, 5.0)


class TestBuilders:
    def test_grid_builder_counts(self):
        net = build_grid_network(4, 3)
        assert net.node_count == 12
        # 3 horizontal roads x 3 rows + 4 columns x 2 vertical = 17 roads = 34 edges
        assert net.edge_count == 2 * (3 * 3 + 4 * 2)

    def test_grid_builder_validation(self):
        with pytest.raises(ValueError):
            build_grid_network(0, 3)

    def test_city_builder_deterministic(self):
        spec = NetworkSpec(width_km=10, height_km=8, seed=3)
        a = build_city_network(spec)
        b = build_city_network(spec)
        assert a.node_count == b.node_count and a.edge_count == b.edge_count
        assert [n.point for n in a.nodes()] == [n.point for n in b.nodes()]

    def test_city_builder_strongly_connected(self):
        net = build_city_network(NetworkSpec(width_km=12, height_km=10, seed=9))
        assert net.is_strongly_connected()

    def test_city_builder_has_speed_classes(self):
        net = build_city_network(NetworkSpec(width_km=15, height_km=15, seed=1))
        speeds = {e.speed_kmh for e in net.edges()}
        assert len(speeds) >= 2  # arterials and local roads coexist

    def test_city_spec_validation(self):
        with pytest.raises(ValueError):
            NetworkSpec(width_km=-5, height_km=5)
        with pytest.raises(ValueError):
            NetworkSpec(width_km=5, height_km=5, removal_rate=0.9)

    def test_radial_builder(self):
        net = build_radial_network(rings=2, spokes=6)
        assert net.node_count == 1 + 2 * 6
        assert net.is_strongly_connected()

    def test_radial_builder_validation(self):
        with pytest.raises(ValueError):
            build_radial_network(rings=0, spokes=6)
        with pytest.raises(ValueError):
            build_radial_network(rings=2, spokes=2)
