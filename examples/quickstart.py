"""Quickstart: plan sustainable charging along one trip.

Builds a small synthetic city, a PlugShare-style charger catalog, wires up
the Estimated Component services, and runs EcoCharge over a scheduled trip
— printing one Offering Table per path segment and writing an HTML map.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

from repro import (
    CatalogSpec,
    ChargingEnvironment,
    EcoCharge,
    EcoChargeConfig,
    NetworkSpec,
    Trip,
    Weights,
    build_city_network,
    generate_catalog,
)
from repro.ui import render_run_summary, render_offering_table, write_offering_map


def main() -> None:
    # 1. The world: a 20x15 km city with 150 solar-backed chargers.
    network = build_city_network(
        NetworkSpec(width_km=20.0, height_km=15.0, block_km=1.2, seed=4)
    )
    registry = generate_catalog(
        network, CatalogSpec(charger_count=150, hotspots=4, seed=9)
    )
    environment = ChargingEnvironment(network, registry, seed=1)
    print(
        f"Built city: {network.node_count} intersections, "
        f"{network.edge_count} road edges, {len(registry)} chargers."
    )

    # 2. A scheduled trip across town, departing 10:30 on a weekday.
    nodes = sorted(network.node_ids())
    trip = Trip.route(network, nodes[0], nodes[-1], departure_time_h=10.5)
    print(f"Trip: {trip.length_km:.1f} km, {len(trip.segments())} segments.\n")

    # 3. EcoCharge with the paper's best configuration (R=50, Q=5) scaled
    #    to this city, equal objective weights, top-3 tables.
    framework = EcoCharge(
        environment,
        EcoChargeConfig(k=3, radius_km=12.0, range_km=5.0, weights=Weights.equal()),
    )
    run = framework.plan(trip)

    # 4. Show the driver what they would see.
    print(render_run_summary(run.tables))
    print()
    print(render_offering_table(run.tables[0], title="First segment in detail"))
    stats = framework.cache_stats
    print(
        f"\nDynamic caching: {stats.hits} adapted, {stats.misses} recomputed "
        f"(hit rate {stats.hit_rate:.0%})."
    )

    # 5. Write the map (open in any browser — no external assets).
    out = Path(__file__).parent / "quickstart_map.html"
    write_offering_map(out, network, trip, run.tables, title="EcoCharge quickstart")
    print(f"Map written to {out}")


if __name__ == "__main__":
    main()
