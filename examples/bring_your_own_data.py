"""Bring your own data: run EcoCharge on externally supplied files.

Demonstrates the full I/O pipeline a downstream user needs to swap the
synthetic substrates for real downloads:

1. a road network in the California ``cnode``/``cedge`` format,
2. a charger catalog as a PlugShare-style CSV,
3. trajectories in the Brinkhoff generator's line format,
4. solar production in CDGS-style 15-minute CSV.

Since this repo ships no real downloads, the script first *writes* the
files from synthetic data — so it doubles as a format reference — then
reloads everything from disk and runs the ranking on the loaded world.

Run:  python examples/bring_your_own_data.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    CatalogSpec,
    ChargingEnvironment,
    EcoCharge,
    EcoChargeConfig,
    NetworkSpec,
    Trip,
    build_city_network,
    generate_catalog,
)
from repro.chargers.solar import SolarProfile, generate_solar_series
from repro.io import (
    read_brinkhoff,
    read_chargers_csv,
    read_cnode_cedge,
    read_solar_csv,
    write_brinkhoff,
    write_chargers_csv,
    write_cnode_cedge,
    write_solar_csv,
)
from repro.trajectories.brinkhoff import GeneratorSpec, generate_dataset
from repro.trajectories.gps import MapMatcher


def export_sample_files(directory: Path) -> None:
    """Write every supported external format once (format reference)."""
    network = build_city_network(
        NetworkSpec(width_km=14.0, height_km=10.0, block_km=1.2, seed=50)
    )
    registry = generate_catalog(network, CatalogSpec(charger_count=60, seed=51))
    traces = generate_dataset(network, GeneratorSpec(object_count=6, seed=52))
    solar = {
        c.charger_id: generate_solar_series(
            SolarProfile(c.solar_capacity_kw), seed=c.charger_id
        )
        for c in registry.all()[:5]
    }
    write_cnode_cedge(network, directory / "city.cnode", directory / "city.cedge")
    write_chargers_csv(registry, directory / "chargers.csv")
    write_brinkhoff(traces, directory / "moving_objects.dat")
    write_solar_csv(solar, directory / "solar_15min.csv")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        export_sample_files(directory)
        print("Exported sample files:")
        for path in sorted(directory.iterdir()):
            print(f"  {path.name:22s} {path.stat().st_size:>8,} bytes")

        # --- the part a real user runs on their own downloads ---
        network = read_cnode_cedge(
            directory / "city.cnode", directory / "city.cedge", speed_kmh=50.0
        )
        registry = read_chargers_csv(directory / "chargers.csv", network)
        traces = read_brinkhoff(directory / "moving_objects.dat")
        solar = read_solar_csv(directory / "solar_15min.csv")
        print(
            f"\nLoaded: {network.node_count} nodes, {len(registry)} chargers, "
            f"{len(traces)} trajectories, {len(solar)} solar series."
        )

        # Map-match the first trajectory back to a routable trip and rank.
        matcher = MapMatcher(network)
        node_path = matcher.match_to_path(traces.trajectories[0])
        trip = Trip(network, node_path, traces.trajectories[0].start_time_h)
        environment = ChargingEnvironment(network, registry, seed=2)
        framework = EcoCharge(environment, EcoChargeConfig(k=3, radius_km=8.0))
        run = framework.plan(trip)
        best = run.tables[0].best
        print(
            f"\nPlanned {trip.length_km:.1f} km trip from loaded data: "
            f"{len(run.tables)} Offering Tables; first-segment top charger is "
            f"b{best.charger_id} (rate {best.charger.rate_kw:g} kW)."
        )


if __name__ == "__main__":
    main()
