"""Fleet-scale congestion redirection (the paper's future work, built).

Section VII: "we plan to investigate the balance of the produced traffic
to chargers by the suggested Offering Tables, and monitor the congestion
to redirect drivers to alternative EV charging stations."  This example
sends a fleet of vehicles through the same corridor at the same hour and
compares plain EcoCharge (every vehicle gets the same best charger — a
stampede) against the load-balanced ranker, which damps crowded sites'
availability and spreads the fleet.

Run:  python examples/fleet_balancing.py
"""

from __future__ import annotations

from collections import Counter

from repro import (
    CatalogSpec,
    ChargingEnvironment,
    EcoChargeConfig,
    NetworkSpec,
    Trip,
    build_city_network,
    generate_catalog,
)
from repro.core.ecocharge import EcoChargeRanker
from repro.core.extensions import BalancedEcoChargeRanker, ChargerLoadBalancer

FLEET = 10


def assign_fleet(environment, trips, make_ranker) -> Counter:
    picks: Counter = Counter()
    for trip in trips:
        ranker = make_ranker()
        segment = trip.segments()[0]
        eta = environment.eta.eta_at_segment(trip, segment).expected_h
        table = ranker.rank_segment(trip, segment, eta_h=eta, now_h=trip.departure_time_h)
        if table.best is not None:
            picks[table.best.charger_id] += 1
    return picks


def main() -> None:
    network = build_city_network(
        NetworkSpec(width_km=16.0, height_km=12.0, block_km=1.2, seed=33)
    )
    registry = generate_catalog(network, CatalogSpec(charger_count=90, seed=34))
    environment = ChargingEnvironment(network, registry, seed=6)

    # Ten vehicles entering the same corridor within minutes of each other.
    nodes = sorted(network.node_ids())
    trips = [
        Trip.route(network, nodes[i], nodes[-1 - i], departure_time_h=10.0 + i * 0.05)
        for i in range(FLEET)
    ]
    config = EcoChargeConfig(k=5, radius_km=8.0, range_km=5.0)

    naive = assign_fleet(
        environment, trips, lambda: EcoChargeRanker(environment, config)
    )
    balancer = ChargerLoadBalancer(slot_h=1.0, penalty_per_vehicle=0.4)
    balanced = assign_fleet(
        environment,
        trips,
        lambda: BalancedEcoChargeRanker(environment, balancer, config),
    )

    def describe(label: str, picks: Counter) -> None:
        spread = len(picks)
        worst = picks.most_common(1)[0]
        print(f"{label:22s} {spread} distinct chargers; busiest b{worst[0]} "
              f"serves {worst[1]}/{FLEET} vehicles")
        for charger_id, count in picks.most_common():
            print(f"    b{charger_id:<4d} {'#' * count}")

    describe("plain EcoCharge", naive)
    print()
    describe("load-balanced", balanced)
    print(
        "\nThe balancer registers every recommendation and damps crowded "
        "sites' availability, so later vehicles are redirected to "
        "alternatives — queueing at the 'best' charger disappears."
    )


if __name__ == "__main__":
    main()
