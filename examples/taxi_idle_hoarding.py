"""Electric-taxi renewable hoarding (the paper's motivating scenario i).

A fleet of electric taxis on a T-drive-style metropolitan workload hoards
renewable energy during idle windows between fares.  For each taxi we plan
its next trip with EcoCharge, pick the best offering, and simulate the
charging session against the ground-truth solar production — reporting how
much clean energy the fleet hoarded and how much derouting it cost,
compared with a random-charger policy.

Run:  python examples/taxi_idle_hoarding.py
"""

from __future__ import annotations

from repro import EcoChargeConfig, Vehicle, Weights
from repro.core.baselines import RandomRanker
from repro.core.ecocharge import EcoChargeRanker
from repro.core.ranking import run_over_trip
from repro.trajectories.datasets import load_workload

IDLE_WINDOW_H = 1.0  # taxis wait about an hour between fare clusters
FLEET_SIZE = 6


def simulate_policy(workload, ranker_factory, label: str) -> None:
    environment = workload.environment
    hoarded_kwh = 0.0
    derouted_h = 0.0
    sessions = 0
    for trip in workload.trips[:FLEET_SIZE]:
        ranker = ranker_factory(environment)
        run = run_over_trip(ranker, environment, trip)
        # The taxi charges once per trip, at the best offer of the middle
        # segment (where the idle window falls).
        table = run.tables[len(run.tables) // 2]
        best = table.best
        if best is None:
            continue
        segments = trip.segments()
        segment = segments[table.segment_index]
        nxt = (
            segments[table.segment_index + 1]
            if table.segment_index + 1 < len(segments)
            else None
        )
        # Ground truth: what the charger actually delivers during the window.
        taxi = Vehicle(vehicle_id=0, max_ac_kw=11.0, max_dc_kw=100.0)
        power = environment.sustainable.true_power_kw(best.charger, best.eta_h)
        deliverable = min(
            power, best.charger.deliverable_kw(taxi.max_ac_kw, taxi.max_dc_kw)
        )
        hoarded_kwh += deliverable * IDLE_WINDOW_H
        derouted_h += environment.derouting.true_cost_h(
            segment, best.charger, best.eta_h, nxt
        )
        sessions += 1
    print(
        f"{label:22s} {sessions} sessions | clean energy hoarded "
        f"{hoarded_kwh:6.1f} kWh | total derouting {derouted_h * 60:6.1f} min"
    )


def main() -> None:
    print("Loading T-drive-style metropolitan workload ...")
    workload = load_workload("tdrive", scale=0.4)
    print(f"Workload: {workload.summary()}\n")

    simulate_policy(
        workload,
        lambda env: EcoChargeRanker(
            env,
            EcoChargeConfig(
                k=3, radius_km=15.0, range_km=5.0, weights=Weights.equal()
            ),
        ),
        "EcoCharge policy",
    )
    simulate_policy(
        workload,
        lambda env: RandomRanker(env, k=3, radius_km=15.0, seed=2),
        "Random-charger policy",
    )
    print(
        "\nEcoCharge hoards more solar excess per deroute minute — the gap is "
        "the renewable-hoarding benefit of CkNN-EC ranking."
    )


if __name__ == "__main__":
    main()
