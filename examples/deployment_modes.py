"""Deployment mode comparison (Section IV): embedded vs server vs edge.

Runs the same EcoCharge session through the three architecture modes the
paper describes — Mode 1 (vehicle-embedded OS), Mode 2 (central EIS
computation) and Mode 3 (phone edge device) — and reports the simulated
per-segment latency budget of each, plus what the EIS-side response cache
saves when a second vehicle drives the same corridor.

Run:  python examples/deployment_modes.py
"""

from __future__ import annotations

from repro import EcoChargeConfig
from repro.server import (
    EcoChargeClient,
    EcoChargeInformationServer,
    compare_modes,
)
from repro.trajectories.datasets import load_workload


def main() -> None:
    workload = load_workload("oldenburg", scale=0.5)
    environment = workload.environment
    trip = workload.trips[0]
    config = EcoChargeConfig(k=3, radius_km=20.0, range_km=5.0)

    print(f"Trip of {trip.length_km:.1f} km, {len(trip.segments())} segments.\n")
    print(f"{'mode':18s} {'compute':>10s} {'network':>10s} {'per segment':>12s}")
    print("-" * 54)
    for mode, report in compare_modes(environment, trip, config).items():
        print(
            f"{mode.value:18s} {report.compute_ms:8.1f}ms {report.network_ms:8.1f}ms "
            f"{report.per_segment_ms:10.1f}ms"
        )

    # The EIS response cache: a second vehicle on the same corridor.
    print("\nEIS response cache across two vehicles on the same corridor:")
    server = EcoChargeInformationServer(environment)
    for vehicle in (1, 2):
        client = EcoChargeClient(server, config)
        client.plan_trip(trip)
        print(
            f"  vehicle {vehicle}: {client.stats.snapshots_fetched} snapshots, "
            f"{client.stats.payload_kb:.0f} kB transferred; upstream API calls so "
            f"far {server.usage.total} (cache saved {server.upstream_calls_saved()})"
        )
    print(
        "\nThe second vehicle triggers almost no new upstream API calls — the "
        "paper's server-side smart caching at work."
    )


if __name__ == "__main__":
    main()
