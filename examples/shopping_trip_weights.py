"""Shopping-trip what-if: how objective weights change the offering.

The paper's scenario (iii): an EV user drives to the shops and wants to
charge during the errand.  We plan the same trip under the four weight
configurations of the Figure-9 ablation (AWE/OSC/OA/ODC) plus a custom
"hurried shopper" mix, and show how the recommended charger shifts — the
solar gem far away under OSC, the quiet site under OA, the closest plug
under ODC.

Run:  python examples/shopping_trip_weights.py
"""

from __future__ import annotations

from repro import (
    ABLATION_CONFIGS,
    CatalogSpec,
    ChargingEnvironment,
    EcoCharge,
    EcoChargeConfig,
    NetworkSpec,
    Trip,
    Weights,
    build_city_network,
    generate_catalog,
)


def main() -> None:
    network = build_city_network(
        NetworkSpec(width_km=18.0, height_km=14.0, block_km=1.3, seed=21)
    )
    registry = generate_catalog(
        network, CatalogSpec(charger_count=120, hotspots=3, seed=22)
    )
    environment = ChargingEnvironment(network, registry, seed=3)

    nodes = sorted(network.node_ids())
    # Saturday 11:00 errand across town.
    saturday_11 = 5 * 24 + 11.0
    trip = Trip.route(network, nodes[2], nodes[-3], departure_time_h=saturday_11)
    segment = trip.segments()[1]  # the stretch with the shopping centre

    configs: dict[str, Weights] = dict(ABLATION_CONFIGS)
    configs["hurried (70% derouting)"] = Weights(0.15, 0.15, 0.70)

    print(f"Trip: {trip.length_km:.1f} km, ranking segment {segment.index}\n")
    header = f"{'configuration':26s} {'top charger':12s} {'rate':>6s} {'L':>12s} {'A':>12s} {'D':>12s}"
    print(header)
    print("-" * len(header))
    for label, weights in configs.items():
        framework = EcoCharge(
            environment,
            EcoChargeConfig(k=3, radius_km=10.0, range_km=5.0, weights=weights),
        )
        table = framework.offering_for(trip, segment)
        best = table.best
        assert best is not None
        print(
            f"{label:26s} b{best.charger_id:<11d} {best.charger.rate_kw:>4.1f}kW "
            f"[{best.sustainable.lo:.2f},{best.sustainable.hi:.2f}] "
            f"[{best.availability.lo:.2f},{best.availability.hi:.2f}] "
            f"[{best.derouting.lo:.2f},{best.derouting.hi:.2f}]"
        )

    print(
        "\nEach single-objective configuration drags the pick toward its own "
        "component; the equal-weight default balances all three (Figure 9)."
    )


if __name__ == "__main__":
    main()
