"""Ranking-rule ablation — Eq. 6 top-k intersection vs midpoint ranking.

DESIGN.md calls out the two-scenario intersection (Eq. 6) as a design
choice: it needs two sorts plus a set intersection where a naive midpoint
ranking needs one partial sort.  This bench quantifies that overhead at
realistic pool sizes so the quality benefit (tested in
tests/test_scoring.py) can be priced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scoring import ScScore, intersect_top_k, rank_by_midpoint

POOL_SIZES = (100, 1000, 5000)
K = 5


def _scores(n: int):
    rng = np.random.default_rng(31)
    lows = rng.uniform(0.0, 1.0, n)
    highs = rng.uniform(0.0, 1.0, n)
    return [ScScore(i, float(lo), float(hi)) for i, (lo, hi) in enumerate(zip(lows, highs))]


@pytest.mark.parametrize("pool_size", POOL_SIZES)
def test_intersection_ranking(benchmark, pool_size):
    scores = _scores(pool_size)
    benchmark.pedantic(
        lambda: intersect_top_k(scores, K), rounds=5, iterations=20
    )
    benchmark.extra_info["rule"] = "eq6-intersection"
    benchmark.extra_info["pool"] = pool_size


@pytest.mark.parametrize("pool_size", POOL_SIZES)
def test_midpoint_ranking(benchmark, pool_size):
    scores = _scores(pool_size)
    benchmark.pedantic(
        lambda: rank_by_midpoint(scores, K), rounds=5, iterations=20
    )
    benchmark.extra_info["rule"] = "midpoint"
    benchmark.extra_info["pool"] = pool_size
