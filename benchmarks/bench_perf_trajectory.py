"""Engine backend benchmarks — the serving workload behind BENCH_perf.json.

Times the same cold EcoCharge serving pass as
``python -m repro.experiments perf``, per backend, on the smoke-sized
scenario so the suite stays fast; the committed full-scale numbers live
in BENCH_perf.json at the repo root.  The customisation-only benchmark
isolates the stacked triangle sweep that dominates CH per-segment cost.
"""

from __future__ import annotations

import pytest

from repro.chargers.plugshare import CatalogSpec, generate_catalog
from repro.core.environment import ChargingEnvironment
from repro.estimation.traffic import TrafficModel
from repro.experiments.perf_trajectory import _serve, _trips, smoke_scenarios
from repro.network.contraction import ContractionHierarchy
from repro.network.distance_engine import BACKENDS, DistanceEngine

SCENARIO = smoke_scenarios()[0]
NETWORK = SCENARIO.build()
REGISTRY = generate_catalog(
    NETWORK, CatalogSpec(charger_count=SCENARIO.charger_count, seed=7)
)
TRIPS = _trips(NETWORK, SCENARIO.trip_count, SCENARIO.segment_km)
HIERARCHY = ContractionHierarchy.build(NETWORK)


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_cold_serving_pass(benchmark, backend):
    def run():
        engine = DistanceEngine(NETWORK, backend=backend, hierarchy=HIERARCHY)
        environment = ChargingEnvironment(NETWORK, REGISTRY, seed=0, engine=engine)
        return _serve(environment, TRIPS, SCENARIO)

    segments = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["nodes"] = NETWORK.node_count
    benchmark.extra_info["segments"] = segments


def test_stacked_customisation(benchmark):
    traffic = TrafficModel(seed=0)
    lo, hi = traffic.travel_time_bound_specs(9.0, 8.0)
    rows = [spec.batch(HIERARCHY.original_edges) for spec in (lo, hi)]
    HIERARCHY.customize_many(rows)  # materialise the sweep plan once

    benchmark.pedantic(lambda: HIERARCHY.customize_many(rows), rounds=5, iterations=2)
    benchmark.extra_info["triangles"] = HIERARCHY.stats.triangles
    benchmark.extra_info["metrics_per_sweep"] = len(rows)
