"""Segmentation ablation — the paper's "approximately 3-5 km" segments.

Shorter segments mean more tables per trip (finer continuous answer, more
ranking calls); longer segments mean coarser answers computed less often.
This bench prices the whole admissible range plus the extremes, with the
table count in ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro.core.ecocharge import EcoChargeConfig, EcoChargeRanker
from repro.core.ranking import run_over_trip

SEGMENT_LENGTHS_KM = (2.0, 3.0, 4.0, 5.0, 8.0)


@pytest.mark.parametrize("segment_km", SEGMENT_LENGTHS_KM)
def test_segment_length(benchmark, oldenburg, segment_km):
    environment = oldenburg.environment
    trip = oldenburg.trips[0]
    ranker = EcoChargeRanker(
        environment,
        EcoChargeConfig(k=5, radius_km=50.0, range_km=5.0, segment_km=segment_km),
    )
    result = benchmark.pedantic(
        lambda: run_over_trip(ranker, environment, trip, segment_km=segment_km),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["segment_km"] = segment_km
    benchmark.extra_info["tables"] = len(result.tables)
