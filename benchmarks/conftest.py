"""Shared benchmark fixtures.

Workloads are materialised once per session at a reduced scale so the full
bench suite finishes in minutes; `python -m repro.experiments all` runs
the figure drivers at full scale and is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import pytest

from repro.trajectories.datasets import DATASET_ORDER, load_workload

#: Scale per dataset — the large GPS workloads are trimmed harder.
BENCH_SCALES = {
    "oldenburg": 0.5,
    "california": 0.4,
    "tdrive": 0.3,
    "geolife": 0.25,
}


@pytest.fixture(scope="session")
def workloads():
    return {
        name: load_workload(name, scale=BENCH_SCALES[name]) for name in DATASET_ORDER
    }


@pytest.fixture(scope="session", params=DATASET_ORDER)
def workload(request, workloads):
    return workloads[request.param]


@pytest.fixture(scope="session")
def oldenburg(workloads):
    return workloads["oldenburg"]
