"""Routing ablation — Dijkstra vs A* vs bidirectional vs ALT.

Derouting cost estimation is where EcoCharge's CPU time goes; this bench
prices the point-to-point routing alternatives on a city network so the
choice of algorithm in the derouting estimator (batched Dijkstra, see
DESIGN.md) can be defended with numbers, and shows what ALT preprocessing
buys for the repeated-query workload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.builders import NetworkSpec, build_city_network
from repro.network.landmarks import alt_astar, select_landmarks
from repro.network.shortest_path import astar, bidirectional_dijkstra, dijkstra

N_QUERIES = 40


def _setup():
    network = build_city_network(NetworkSpec(width_km=40, height_km=35, block_km=1.0, seed=88))
    rng = np.random.default_rng(89)
    nodes = list(network.node_ids())
    pairs = [
        tuple(int(x) for x in rng.choice(nodes, size=2, replace=False))
        for __ in range(N_QUERIES)
    ]
    return network, pairs


NETWORK, PAIRS = _setup()
LANDMARKS = select_landmarks(NETWORK, count=6)

ALGORITHMS = {
    "dijkstra": lambda s, t: dijkstra(NETWORK, s, t),
    "astar-euclid": lambda s, t: astar(NETWORK, s, t),
    "bidirectional": lambda s, t: bidirectional_dijkstra(NETWORK, s, t),
    "alt-6-landmarks": lambda s, t: alt_astar(NETWORK, s, t, LANDMARKS),
}


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_point_to_point_routing(benchmark, algorithm):
    run_query = ALGORITHMS[algorithm]

    def run():
        for s, t in PAIRS:
            run_query(s, t)

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["algorithm"] = algorithm
    benchmark.extra_info["nodes"] = NETWORK.node_count
    benchmark.extra_info["queries"] = N_QUERIES
