"""Index ablation — quadtree node capacity and index-structure choice.

DESIGN.md calls out the quadtree leaf capacity as a tunable: small leaves
mean deeper trees (more pointer chasing per query), large leaves mean more
linear scanning per leaf.  The second sweep compares the three index
structures on the registry's actual query mix (radius search dominates
EcoCharge's filtering phase).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import Point
from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDTree
from repro.spatial.quadtree import QuadTree

BOUNDS = BoundingBox(0.0, 0.0, 100.0, 100.0)
N_POINTS = 2000
N_QUERIES = 200


def _entries():
    rng = np.random.default_rng(12)
    return [
        (Point(float(x), float(y)), i)
        for i, (x, y) in enumerate(
            zip(rng.uniform(0, 100, N_POINTS), rng.uniform(0, 100, N_POINTS))
        )
    ]


def _queries():
    rng = np.random.default_rng(13)
    return [
        Point(float(x), float(y))
        for x, y in zip(rng.uniform(0, 100, N_QUERIES), rng.uniform(0, 100, N_QUERIES))
    ]


@pytest.mark.parametrize("capacity", [2, 8, 32, 128])
def test_quadtree_capacity_knn(benchmark, capacity):
    entries = _entries()
    queries = _queries()
    tree: QuadTree[int] = QuadTree(BOUNDS, capacity=capacity)
    for point, item in entries:
        tree.insert(point, item)

    def run():
        for q in queries:
            tree.nearest(q, 5)

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["capacity"] = capacity
    benchmark.extra_info["depth"] = tree.depth()
    benchmark.extra_info["nodes"] = tree.node_count()


def _build_quadtree(entries):
    tree: QuadTree[int] = QuadTree(BOUNDS, capacity=8)
    for point, item in entries:
        tree.insert(point, item)
    return tree


def _build_grid(entries):
    grid: GridIndex[int] = GridIndex(BOUNDS, cell_size_km=5.0)
    for point, item in entries:
        grid.insert(point, item)
    return grid


STRUCTURES = {
    "quadtree": _build_quadtree,
    "grid": _build_grid,
    "kdtree": KDTree,
}


@pytest.mark.parametrize("structure", sorted(STRUCTURES))
def test_index_structure_radius_queries(benchmark, structure):
    entries = _entries()
    queries = _queries()
    index = STRUCTURES[structure](entries)

    def run():
        for q in queries:
            index.query_radius(q, 10.0)

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["structure"] = structure
