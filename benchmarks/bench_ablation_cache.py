"""Cache-policy ablation — R/Q reuse vs always-recompute vs never-expire.

DESIGN.md calls out the dynamic-cache policy as the design choice behind
EcoCharge's speedup.  Three policies over the same trip:

* ``rq-cache``     — the paper's policy (Q = 5 km, TTL = 1 h);
* ``no-cache``     — Q effectively zero: every segment recomputes (this is
  the upper cost bound, EcoCharge degenerating to radius-bounded brute
  force);
* ``never-expire`` — Q and TTL effectively infinite: everything after the
  first segment adapts (lower cost bound, maximal drift).
"""

from __future__ import annotations

import pytest

from repro.core.ecocharge import EcoChargeConfig, EcoChargeRanker
from repro.core.ranking import run_over_trip

POLICIES = {
    "rq-cache": dict(range_km=5.0, cache_ttl_h=1.0),
    "no-cache": dict(range_km=1e-6, cache_ttl_h=1.0),
    "never-expire": dict(range_km=1e6, cache_ttl_h=1e6),
    "rq-pool-limit": dict(range_km=5.0, cache_ttl_h=1.0, cache_pool_limit=40),
}


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_cache_policy(benchmark, oldenburg, policy):
    environment = oldenburg.environment
    trip = oldenburg.trips[0]
    ranker = EcoChargeRanker(
        environment,
        EcoChargeConfig(k=5, radius_km=50.0, **POLICIES[policy]),
    )
    result = benchmark.pedantic(
        lambda: run_over_trip(ranker, environment, trip), rounds=3, iterations=1
    )
    benchmark.extra_info["policy"] = policy
    benchmark.extra_info["adapted"] = result.adapted_count
    benchmark.extra_info["segments"] = len(result.tables)
